//! Multi-hop dissemination over a dense sensor grid with bursty RF
//! noise — the paper's Table II/III setting, scaled to a quick demo.
//!
//! The base station sits at a grid corner; the image propagates hop by
//! hop, with intermediate nodes decoding pages, re-encoding them and
//! serving their own neighbors.
//!
//! ```text
//! cargo run --release --example multihop_grid
//! ```

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_deluge::engine::Scheme as _;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, PacketKind};
use lrs_netsim::noise::{BurstyNoise, NoiseModel};
use lrs_netsim::sim::SimConfig;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

fn main() {
    let image: Vec<u8> = (0..6 * 1024u32).map(|i| (i * 131 % 250) as u8).collect();
    let params = LrSelugeParams {
        image_len: image.len(),
        ..LrSelugeParams::default()
    };
    let deployment = Deployment::new(&image, params, b"grid demo keys");

    // An 8x8 grid at tight spacing under heavy bursty noise (the stand-in
    // for the meyer-heavy interference trace).
    let side = 8usize;
    let topo = Topology::grid(side, 8.0, 7);
    println!(
        "{}x{side} grid, mean degree {:.1}, connected: {}",
        side,
        topo.mean_degree(),
        topo.is_connected()
    );
    let config = SimConfig {
        medium: MediumConfig {
            noise: NoiseModel::Bursty(BurstyNoise::heavy()),
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(topo, 99, |id| deployment.node(id, NodeId(0)))
        .config(config)
        .build();
    let report = sim.run(Duration::from_secs(40_000));
    assert!(report.all_complete, "dissemination stalled");

    // Per-hop completion wavefront: nodes farther from the corner finish
    // later.
    println!("\ncompletion wave (seconds, by grid row):");
    for row in 0..side {
        let times: Vec<String> = (0..side)
            .map(|col| {
                let id = NodeId((row * side + col) as u32);
                let t = sim.metrics().completion_of(id).expect("complete");
                format!("{:6.1}", t.as_secs_f64())
            })
            .collect();
        println!("  {}", times.join(" "));
    }

    // Every node decoded the exact image; relays re-encoded to serve.
    let mut total_encodes = 0u64;
    for i in 0..(side * side) as u32 {
        let node = sim.node(NodeId(i));
        assert_eq!(node.scheme().image().expect("complete"), image);
        total_encodes += node.scheme().cost().encodes;
    }
    let m = sim.metrics();
    println!(
        "\n{} nodes verified; {} page re-encodings by relays; \
         {} data pkts, {} snacks, {} advs, {:.1} KiB total, latency {:.1} s",
        side * side,
        total_encodes,
        m.tx_packets(PacketKind::Data),
        m.tx_packets(PacketKind::Snack),
        m.tx_packets(PacketKind::Adv),
        m.total_tx_bytes() as f64 / 1024.0,
        report.latency.expect("complete").as_secs_f64()
    );
}

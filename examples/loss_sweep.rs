//! Loss-resilience sweep: LR-Seluge vs Seluge total communication cost
//! and latency as the packet-loss rate grows — a miniature of the
//! paper's Figure 4 (one-hop, same image, same on-air packet sizes).
//!
//! ```text
//! cargo run --release --example loss_sweep
//! ```

use lr_seluge::LrSelugeParams;
use lrs_bench::{average, matched_seluge_params, run_lr, run_seluge, RunSpec};

fn main() {
    let lr = LrSelugeParams {
        image_len: 8 * 1024,
        ..LrSelugeParams::default()
    };
    let seluge = matched_seluge_params(&lr);
    let n_receivers = 10;
    let seeds = 3;

    println!(
        "one-hop, N = {n_receivers}, image {} KiB, {} seeds per point",
        lr.image_len / 1024,
        seeds
    );
    println!(
        "{:>5} {:>14} {:>14} {:>10} | {:>12} {:>12} {:>10}",
        "p", "LR bytes", "Seluge bytes", "saving", "LR latency", "Sel latency", "saving"
    );
    for p in [0.0, 0.05, 0.1, 0.2, 0.3, 0.4] {
        let spec = RunSpec::one_hop(n_receivers, p);
        let m_lr = average(seeds, |seed| run_lr(&spec, lr, seed));
        let m_s = average(seeds, |seed| run_seluge(&spec, seluge, seed));
        println!(
            "{:>5.2} {:>13.1}K {:>13.1}K {:>9.1}% | {:>11.1}s {:>11.1}s {:>9.1}%",
            p,
            m_lr.total_bytes / 1024.0,
            m_s.total_bytes / 1024.0,
            100.0 * (1.0 - m_lr.total_bytes / m_s.total_bytes),
            m_lr.latency_s,
            m_s.latency_s,
            100.0 * (1.0 - m_lr.latency_s / m_s.latency_s),
        );
    }
    println!("\npositive savings = LR-Seluge wins; the margin should grow with p.");
}

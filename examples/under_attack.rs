//! Attack resilience demo: the same bogus-data flood is launched against
//! plain Deluge and against LR-Seluge.
//!
//! Deluge stores whatever fits the packet layout, so the flood corrupts
//! node images; LR-Seluge authenticates every packet on arrival, rejects
//! the forgeries without buffering them, and still completes.
//!
//! ```text
//! cargo run --release --example under_attack
//! ```

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_crypto::cluster::ClusterKey;
use lrs_deluge::attack::{AttackKind, Attacker, MaybeAdversary};
use lrs_deluge::engine::{DisseminationNode, EngineConfig};
use lrs_deluge::image::{DelugeImage, DelugeScheme, ImageParams};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::node::NodeId;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

const N: usize = 6; // honest receivers
const IMAGE_LEN: usize = 4 * 1024;

fn image() -> Vec<u8> {
    (0..IMAGE_LEN as u32)
        .map(|i| (i * 17 % 253) as u8)
        .collect()
}

fn main() {
    let attacker_id = NodeId((N + 1) as u32);
    let flood = Duration::from_millis(250);

    // --- Plain Deluge under the flood --------------------------------
    let ip = ImageParams {
        version: 1,
        image_len: IMAGE_LEN,
        packets_per_page: 32,
        payload_len: 72,
    };
    let dimage = DelugeImage::new(image(), ip);
    let key = ClusterKey::derive(b"demo", 0);
    let engine = EngineConfig {
        authenticate_control: false,
        ..EngineConfig::default()
    };
    let mut deluge_sim = SimBuilder::new(Topology::star(N + 2), 5, |id| {
        if id == attacker_id {
            MaybeAdversary::Attacker(Attacker::outsider(
                AttackKind::BogusData {
                    payload_len: ip.payload_len,
                    index_space: ip.packets_per_page,
                },
                flood,
                1,
            ))
        } else {
            let scheme = if id == NodeId(0) {
                DelugeScheme::base(&dimage)
            } else {
                DelugeScheme::receiver(ip)
            };
            MaybeAdversary::Honest(DisseminationNode::new(
                scheme,
                UnionPolicy::new(),
                key.clone(),
                engine,
            ))
        }
    })
    .build();
    let _ = deluge_sim.run(Duration::from_secs(40_000));
    let corrupted = (1..=N as u32)
        .filter(|&i| {
            let node = deluge_sim.node(NodeId(i)).honest().expect("honest");
            node.scheme()
                .image()
                .map(|got| got != image())
                .unwrap_or(true)
        })
        .count();
    println!("Deluge under bogus-data flood: {corrupted}/{N} nodes corrupted or stalled");

    // --- LR-Seluge under the same flood ------------------------------
    let params = LrSelugeParams {
        image_len: IMAGE_LEN,
        puzzle_strength: 8,
        ..LrSelugeParams::default()
    };
    let deployment = Deployment::new(&image(), params, b"demo");
    let mut lr_sim = SimBuilder::new(Topology::star(N + 2), 5, |id| {
        if id == attacker_id {
            MaybeAdversary::Attacker(Attacker::outsider(
                AttackKind::BogusData {
                    payload_len: params.payload_len,
                    index_space: params.n,
                },
                flood,
                1,
            ))
        } else {
            MaybeAdversary::Honest(deployment.node(id, NodeId(0)))
        }
    })
    .build();
    let report = lr_sim.run(Duration::from_secs(40_000));
    let mut rejects = 0u64;
    for i in 1..=N as u32 {
        let node = lr_sim.node(NodeId(i)).honest().expect("honest");
        assert_eq!(
            node.scheme().image().expect("complete"),
            image(),
            "LR-Seluge node {i} must hold the authentic image"
        );
        let st = node.stats();
        rejects += st.auth_rejects + st.out_of_order_drops;
    }
    let injected = lr_sim
        .node(attacker_id)
        .attacker()
        .expect("attacker")
        .injected;
    println!(
        "LR-Seluge under the same flood: 0/{N} corrupted, complete = {}, \
         {injected} forgeries injected, {rejects} rejected/dropped unbuffered",
        report.all_complete
    );
}

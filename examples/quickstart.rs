//! Quickstart: disseminate a code image to a one-hop cluster with
//! LR-Seluge and verify every node reconstructed it bit-exactly.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, PacketKind};
use lrs_netsim::sim::SimConfig;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

fn main() {
    // 1. The new code image the base station wants to push (8 KiB of
    //    stand-in firmware bytes).
    let image: Vec<u8> = (0..8 * 1024u32).map(|i| (i * 31 % 251) as u8).collect();

    // 2. Deployment-time configuration: the paper's defaults — pages of
    //    k = 32 blocks erasure-coded into n = 48 packets (any 32
    //    recover the page), 72-byte payloads.
    let params = LrSelugeParams {
        image_len: image.len(),
        ..LrSelugeParams::default()
    };
    println!(
        "image: {} bytes -> {} pages of {} packets (k={}, n={}, rate {:.2})",
        image.len(),
        params.pages(),
        params.n,
        params.k,
        params.n,
        params.n as f64 / params.k as f64
    );

    // 3. Preprocess: chained hashes, erasure-coded hash page, Merkle
    //    tree, signed root, puzzle. Keys are derived from seed material.
    let deployment = Deployment::new(&image, params, b"quickstart deployment keys");

    // 4. A lossy one-hop cluster: base station + 8 sensor nodes, each
    //    dropping 20 % of received packets (the paper's loss model).
    let config = SimConfig {
        medium: MediumConfig {
            app_loss: 0.20,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(Topology::star(9), 42, |id| deployment.node(id, NodeId(0)))
        .config(config)
        .build();

    // 5. Run until every node holds the verified image.
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete, "dissemination stalled");
    for i in 1..9u32 {
        let node = sim.node(NodeId(i));
        assert_eq!(
            node.scheme().image().expect("complete"),
            image,
            "node {i} image mismatch"
        );
    }

    let m = sim.metrics();
    println!("all 8 nodes verified the image under 20 % loss");
    println!(
        "cost: {} data + {} hash-page + {} snack + {} adv packets, {:.1} KiB on air",
        m.tx_packets(PacketKind::Data),
        m.tx_packets(PacketKind::HashPage),
        m.tx_packets(PacketKind::Snack),
        m.tx_packets(PacketKind::Adv),
        m.total_tx_bytes() as f64 / 1024.0
    );
    println!(
        "latency: {:.1} s of virtual time; {} signature verification per node",
        report.latency.expect("complete").as_secs_f64(),
        1
    );
}

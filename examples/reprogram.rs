//! Over-the-air reprogramming: the actual use case of code
//! dissemination. A network finishes disseminating firmware v1; the base
//! station is then loaded with v2 and every node upgrades — discarding
//! v1 transfer state and authenticating the new image from its own
//! signed root.
//!
//! ```text
//! cargo run --release --example reprogram
//! ```

use lr_seluge::upgrade::VersionedNode;
use lr_seluge::{Deployment, LrSelugeParams};
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::SimConfig;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

fn firmware(version: u16, len: usize) -> Vec<u8> {
    (0..len as u32)
        .map(|i| ((i * 37) as u16 ^ (version * 1031)) as u8)
        .collect()
}

fn main() {
    let params = |version| LrSelugeParams {
        version,
        image_len: 4 * 1024,
        ..LrSelugeParams::default()
    };
    let v1 = Deployment::new(&firmware(1, 4 * 1024), params(1), b"reprogram demo");
    let v2 = Deployment::new(&firmware(2, 4 * 1024), params(2), b"reprogram demo");

    // Sensor nodes start on v1; the base station is flashed with v2.
    // Its first advertisement (higher version, valid cluster MAC)
    // triggers the upgrade network-wide.
    let base = NodeId(0);
    let n = 8usize;
    let mut sim = SimBuilder::new(Topology::star(n + 1), 11, |id| {
        if id == base {
            VersionedNode::new(&v2, id, base)
        } else {
            VersionedNode::new(&v1, id, base).with_upgrade(v2.clone())
        }
    })
    .config(SimConfig {
        medium: MediumConfig {
            app_loss: 0.15,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    })
    .build();
    let report = sim.run(Duration::from_secs(36_000));
    assert!(report.all_complete, "upgrade stalled");

    for i in 1..=n as u32 {
        let node = sim.node(NodeId(i));
        assert_eq!(node.version(), 2);
        assert_eq!(node.image().expect("complete"), firmware(2, 4 * 1024));
    }
    println!(
        "all {n} nodes reprogrammed to v2 under 15 % loss in {:.1} s of virtual time \
         ({} upgrades applied, image verified bit-exact on every node)",
        report.latency.expect("complete").as_secs_f64(),
        n
    );
}

//! One LR-Seluge/Seluge node as a real OS process.
//!
//! Wraps the exact `Protocol` state machine the simulator drives in a
//! real-time [`Host`](lrs_host::Host) clocked by the OS monotonic
//! clock, speaking length-framed `Message` bytes inside the transport
//! envelope over UDP. All data traffic goes to one peer — the swarm
//! proxy — which applies the loss model and fans out to the rest of the
//! swarm.
//!
//! The process reconstructs its entire world (keys, artifacts, image)
//! from the [`SwarmScenario`] flags, so the harness never ships key
//! material or images across process boundaries; every node derives the
//! same world the way capsule replays do.
//!
//! Control protocol (UDP, line-oriented text):
//! * the node sends a `lrs-swarm report ...` line to `--control` every
//!   few hundred milliseconds (and on exit);
//! * the harness sends `lrs-swarm quit` back to stop it.
//!
//! A node that completes keeps running until told to quit: a finished
//! node is a seeder, and its advertisements are what finish the
//! stragglers.

use lr_seluge_repro::swarm::{NodeReport, SwarmNode, SwarmScenario, CONTROL_QUIT};
use lrs_bench::Cli;
use lrs_host::{Host, HostConfig, NodeId, UdpTransport};
use std::net::{SocketAddr, UdpSocket};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const FLAGS: &[lrs_bench::cli::Flag] = &[
    lrs_bench::cli::valued("--id", "this node's id (0 = base station)"),
    lrs_bench::cli::valued("--proxy", "data address of the swarm proxy"),
    lrs_bench::cli::valued("--control", "control address of the swarm harness"),
    lrs_bench::cli::valued("--scheme", "lr-seluge or seluge"),
    lrs_bench::cli::valued("--profile", "parameter profile (default campaign)"),
    lrs_bench::cli::valued("--image-bytes", "image size (default 2048)"),
    lrs_bench::cli::valued(
        "--key-context",
        "key-derivation context (default \"swarm keys\")",
    ),
    lrs_bench::cli::valued("--seed", "scenario seed (default 7)"),
    lrs_bench::cli::valued("--time-scale", "virtual us per wall us (default 10)"),
    lrs_bench::cli::valued(
        "--deadline-s",
        "wall-clock deadline in seconds (default 120)",
    ),
];

/// How often the node pushes a status line to the harness.
const REPORT_EVERY: Duration = Duration::from_millis(250);

fn required<'a>(cli: &'a Cli, flag: &str) -> Result<&'a str, String> {
    cli.value(flag)
        .ok_or_else(|| format!("{flag} is required\n{}", cli.usage()))
}

fn run() -> Result<(), String> {
    let cli = Cli::parse("node", FLAGS).map_err(|e| e.to_string())?;
    let id = NodeId(
        required(&cli, "--id")?
            .parse()
            .map_err(|e| format!("bad --id: {e}"))?,
    );
    let proxy: SocketAddr = required(&cli, "--proxy")?
        .parse()
        .map_err(|e| format!("bad --proxy: {e}"))?;
    let control_addr: SocketAddr = required(&cli, "--control")?
        .parse()
        .map_err(|e| format!("bad --control: {e}"))?;
    let scenario = SwarmScenario {
        scheme: lr_seluge_repro::swarm::SchemeKind::parse(required(&cli, "--scheme")?)
            .ok_or_else(|| "bad --scheme; use lr-seluge or seluge".to_string())?,
        profile: cli.value("--profile").unwrap_or("campaign").to_string(),
        image_len: cli
            .parsed_or::<usize>("--image-bytes", 2048)
            .map_err(|e| e.to_string())?,
        key_context: cli
            .value("--key-context")
            .unwrap_or("swarm keys")
            .to_string(),
        seed: cli
            .parsed_or::<u64>("--seed", 7)
            .map_err(|e| e.to_string())?,
    };
    let cfg = HostConfig {
        time_scale: cli
            .parsed_or::<u64>("--time-scale", 10)
            .map_err(|e| e.to_string())?,
        ..HostConfig::default()
    };
    let deadline = Duration::from_secs(
        cli.parsed_or::<u64>("--deadline-s", 120)
            .map_err(|e| e.to_string())?,
    );

    let image = scenario.image()?;
    let protocol: SwarmNode = scenario.build_node(id)?;

    let any_port: SocketAddr = "127.0.0.1:0"
        .parse()
        .map_err(|e| format!("loopback bind address: {e}"))?;
    let mut transport = UdpTransport::bind(any_port, vec![proxy])
        .map_err(|e| format!("binding data socket: {e}"))?;
    // Register with the proxy before any data flows so packets can
    // reach us from the first exchange; the proxy also refreshes its
    // map from every data frame's envelope, so one lost hello only
    // delays, never prevents, registration.
    {
        use lrs_host::Transport;
        let hello = format!("lrs-swarm hello {}", id.0);
        for _ in 0..3 {
            transport
                .send(hello.as_bytes())
                .map_err(|e| format!("hello: {e}"))?;
        }
    }

    let control = UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("control socket: {e}"))?;
    control
        .set_nonblocking(true)
        .map_err(|e| format!("control socket: {e}"))?;

    let mut host = Host::new(id, protocol, transport, scenario.seed, cfg);
    host.init().map_err(|e| format!("init: {e}"))?;

    let start = Instant::now();
    let mut last_report = Instant::now() - REPORT_EVERY;
    let mut quit = false;
    while !quit && start.elapsed() < deadline {
        host.step().map_err(|e| format!("step: {e}"))?;
        if last_report.elapsed() >= REPORT_EVERY {
            send_report(&control, control_addr, &host, &image);
            last_report = Instant::now();
        }
        let mut buf = [0u8; 256];
        while let Ok((n, _src)) = control.recv_from(&mut buf) {
            if &buf[..n] == CONTROL_QUIT {
                quit = true;
            }
        }
    }
    // Final report, repeated: the control channel is UDP too.
    for _ in 0..3 {
        send_report(&control, control_addr, &host, &image);
    }
    Ok(())
}

fn send_report(
    control: &UdpSocket,
    to: SocketAddr,
    host: &Host<SwarmNode, UdpTransport>,
    image: &[u8],
) {
    let status = host.protocol().status(image);
    let counters = host.report();
    let line = NodeReport {
        id: host.id().0,
        complete: status.complete,
        invariants_ok: status.invariants_ok,
        digest: status.digest,
        tx_frames: counters.tx_frames,
        rx_frames: counters.rx_frames,
        rx_rejected: counters.rx_rejected,
    }
    .encode();
    // Best-effort: a lost status line is replaced by the next tick.
    let _ = control.send_to(line.as_bytes(), to);
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("node: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Swarm harness: the paper's experiment over real OS processes.
//!
//! Spawns N `node` processes on localhost, each a real-time host around
//! the same `Protocol` state machine the simulator drives, and routes
//! every data frame through a seeded lossy UDP proxy (uniform
//! drop/duplicate/reorder ppm composed with per-directed-link asymmetry
//! in the simulator's `FaultPlan` vocabulary). Nodes stream status
//! lines to a control socket; the run ends when every node reports
//! completion with the sim checker's invariants intact, and the harness
//! asserts all reassembled image digests equal the scenario's expected
//! digest — the swarm analog of the simulator's end-of-run checks.
//!
//! ```text
//! swarm [--nodes N] [--scheme lr-seluge|seluge|both] [--smoke]
//!       [--drop-ppm P] [--dup-ppm P] [--reorder-ppm P]
//!       [--asym-frac-ppm P] [--asym-keep-ppm P]
//!       [--profile <name>] [--image-bytes N] [--seed S]
//!       [--time-scale K] [--deadline-s T]
//! ```
//!
//! `--smoke` is the CI gate: 16 nodes per scheme at 5% uniform loss.
//! Writes `results/swarm.json`.

use lr_seluge_repro::swarm::{
    asymmetry_plan, LossyLinks, NodeReport, ReorderRelay, SchemeKind, SwarmScenario, CONTROL_QUIT,
};
use lrs_bench::{write_json, Cli, Json};
use lrs_host::{decode_frame, NodeId, SimTime};
use lrs_netsim::fault::PPM_ONE;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FLAGS: &[lrs_bench::cli::Flag] = &[
    lrs_bench::cli::flag("--smoke", "CI gate: 16 nodes per scheme at 5% uniform loss"),
    lrs_bench::cli::valued(
        "--nodes",
        "node processes per scheme (default 64; smoke 16)",
    ),
    lrs_bench::cli::valued("--scheme", "lr-seluge, seluge, or both (default both)"),
    lrs_bench::cli::valued(
        "--drop-ppm",
        "uniform drop probability in ppm (default 50000)",
    ),
    lrs_bench::cli::valued(
        "--dup-ppm",
        "duplication probability in ppm (default 10000)",
    ),
    lrs_bench::cli::valued(
        "--reorder-ppm",
        "reorder probability in ppm (default 20000)",
    ),
    lrs_bench::cli::valued(
        "--asym-frac-ppm",
        "fraction of directed links degraded (default 100000)",
    ),
    lrs_bench::cli::valued(
        "--asym-keep-ppm",
        "delivery scale on degraded links (default 700000)",
    ),
    lrs_bench::cli::valued("--profile", "parameter profile (default campaign)"),
    lrs_bench::cli::valued("--image-bytes", "image size (default 2048)"),
    lrs_bench::cli::valued("--seed", "scenario seed (default 7)"),
    lrs_bench::cli::valued("--time-scale", "virtual us per wall us (default 10)"),
    lrs_bench::cli::valued(
        "--deadline-s",
        "per-scheme wall deadline in seconds (default 180)",
    ),
];

/// Everything one scheme's run needs, parsed once.
struct SwarmConfig {
    nodes: u32,
    drop_ppm: u32,
    dup_ppm: u32,
    reorder_ppm: u32,
    asym_frac_ppm: u32,
    asym_keep_ppm: u32,
    time_scale: u64,
    deadline: Duration,
}

/// Outcome of one scheme's swarm run.
struct SwarmRun {
    scheme: SchemeKind,
    wall_s: f64,
    reports: Vec<NodeReport>,
}

/// The lossy proxy: receives every node's frames on one socket, applies
/// the per-link loss model, and fans each frame out to every other
/// registered node. Node addresses are learned from `hello` datagrams
/// and refreshed from the envelope `from` field of data frames, so the
/// map heals even if every hello is lost. Per-destination reordering
/// (and the delivery of every granted copy, duplicate-of-a-reordered-
/// frame included) is [`ReorderRelay`]'s job, unit-tested in the lib.
///
/// The socket's read timeout is configured by the caller before this
/// thread starts, so the loop body has no panicking paths.
fn proxy_loop(socket: UdpSocket, mut links: LossyLinks, time_scale: u64, stop: Arc<AtomicBool>) {
    let epoch = Instant::now();
    let mut addrs: HashMap<u32, SocketAddr> = HashMap::new();
    let mut relay = ReorderRelay::new();
    let mut buf = [0u8; 2048];
    while !stop.load(Ordering::Relaxed) {
        let (n, src) = match socket.recv_from(&mut buf) {
            Ok(pair) => pair,
            Err(_) => {
                // Idle tick: release anything held so reordering can
                // only delay a frame briefly, never strand it.
                relay.flush(|dest, frame| {
                    if let Some(addr) = addrs.get(&dest) {
                        let _ = socket.send_to(frame, addr);
                    }
                });
                continue;
            }
        };
        let datagram = &buf[..n];
        if let Some(rest) = datagram.strip_prefix(b"lrs-swarm hello ") {
            if let Some(id) = std::str::from_utf8(rest).ok().and_then(|s| s.parse().ok()) {
                addrs.insert(id, src);
            }
            continue;
        }
        let Some(frame) = decode_frame(datagram) else {
            continue;
        };
        let from = frame.from;
        addrs.insert(from.0, src);
        links.advance(SimTime(epoch.elapsed().as_micros() as u64 * time_scale));
        let targets: Vec<(u32, SocketAddr)> = addrs
            .iter()
            .filter(|(id, _)| **id != from.0)
            .map(|(id, addr)| (*id, *addr))
            .collect();
        for (dest, addr) in targets {
            let verdict = links.verdict(from, NodeId(dest));
            relay.apply(dest, datagram, verdict, |f| {
                let _ = socket.send_to(f, addr);
            });
        }
    }
}

fn spawn_node(
    node_bin: &std::path::Path,
    id: u32,
    proxy: SocketAddr,
    control: SocketAddr,
    scenario: &SwarmScenario,
    cfg: &SwarmConfig,
) -> Result<Child, String> {
    Command::new(node_bin)
        .args([
            "--id",
            &id.to_string(),
            "--proxy",
            &proxy.to_string(),
            "--control",
            &control.to_string(),
            "--scheme",
            scenario.scheme.label(),
            "--profile",
            &scenario.profile,
            "--image-bytes",
            &scenario.image_len.to_string(),
            "--key-context",
            &scenario.key_context,
            "--seed",
            &scenario.seed.to_string(),
            "--time-scale",
            &cfg.time_scale.to_string(),
            "--deadline-s",
            &cfg.deadline.as_secs().to_string(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", node_bin.display()))
}

/// Runs one scheme's swarm end-to-end and verifies every node against
/// the scenario's expected digest.
fn run_swarm(scenario: &SwarmScenario, cfg: &SwarmConfig) -> Result<SwarmRun, String> {
    let expected_digest = scenario.expected_digest()?;
    let node_bin = std::env::current_exe()
        .map_err(|e| format!("current_exe: {e}"))?
        .parent()
        .ok_or("current_exe has no parent")?
        .join("node");
    if !node_bin.exists() {
        return Err(format!(
            "{} not found; build it with `cargo build --release --bin node`",
            node_bin.display()
        ));
    }

    let control = UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("control socket: {e}"))?;
    control
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("control socket: {e}"))?;
    let control_addr = control.local_addr().map_err(|e| e.to_string())?;

    let proxy = UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("proxy socket: {e}"))?;
    proxy
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| format!("proxy socket: {e}"))?;
    let proxy_addr = proxy.local_addr().map_err(|e| e.to_string())?;
    let plan = asymmetry_plan(
        cfg.nodes,
        cfg.asym_frac_ppm,
        cfg.asym_keep_ppm,
        scenario.seed,
    );
    let links = LossyLinks::new(
        cfg.drop_ppm,
        cfg.dup_ppm,
        cfg.reorder_ppm,
        &plan,
        scenario.seed,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let proxy_thread = {
        let stop = Arc::clone(&stop);
        let time_scale = cfg.time_scale;
        std::thread::spawn(move || proxy_loop(proxy, links, time_scale, stop))
    };

    println!(
        "[{}] spawning {} node processes (proxy {}, control {}, {} degraded links)",
        scenario.scheme.label(),
        cfg.nodes,
        proxy_addr,
        control_addr,
        plan.events().len(),
    );
    let start = Instant::now();
    let mut children: Vec<Child> = Vec::new();
    for id in 0..cfg.nodes {
        children.push(spawn_node(
            &node_bin,
            id,
            proxy_addr,
            control_addr,
            scenario,
            cfg,
        )?);
    }

    // Collect status lines until every node reports done (or deadline).
    let mut latest: HashMap<u32, (NodeReport, SocketAddr)> = HashMap::new();
    let mut buf = [0u8; 1024];
    let mut last_progress = Instant::now();
    let all_done = loop {
        if let Ok((n, src)) = control.recv_from(&mut buf) {
            if let Some(report) = std::str::from_utf8(&buf[..n])
                .ok()
                .and_then(NodeReport::parse)
            {
                latest.insert(report.id, (report, src));
            }
        }
        let complete = latest.values().filter(|(r, _)| r.complete).count() as u32;
        if complete == cfg.nodes && latest.values().all(|(r, _)| r.invariants_ok) {
            break true;
        }
        if last_progress.elapsed() >= Duration::from_secs(2) {
            println!(
                "[{}] t={:.1}s: {}/{} complete, {} reporting",
                scenario.scheme.label(),
                start.elapsed().as_secs_f64(),
                complete,
                cfg.nodes,
                latest.len(),
            );
            last_progress = Instant::now();
        }
        if start.elapsed() > cfg.deadline {
            break false;
        }
    };
    let wall_s = start.elapsed().as_secs_f64();

    // Stop everything: repeated quits (control is UDP too), then reap
    // with a kill fallback for anything that missed all of them.
    for _ in 0..3 {
        for (_, addr) in latest.values() {
            let _ = control.send_to(CONTROL_QUIT, addr);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let grace = Instant::now();
    for child in &mut children {
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if grace.elapsed() > Duration::from_secs(5) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    proxy_thread.join().map_err(|_| "proxy thread panicked")?;

    if !all_done {
        let missing: Vec<u32> = (0..cfg.nodes)
            .filter(|id| !latest.get(id).map(|(r, _)| r.complete).unwrap_or(false))
            .collect();
        return Err(format!(
            "[{}] deadline ({:?}) exceeded with {}/{} complete; incomplete nodes: {:?}",
            scenario.scheme.label(),
            cfg.deadline,
            cfg.nodes - missing.len() as u32,
            cfg.nodes,
            missing,
        ));
    }
    // The sim checker's end-of-run assertions, over real processes:
    // every node completed with invariants intact and reassembled the
    // exact image the base station disseminated.
    for (report, _) in latest.values() {
        if !report.invariants_ok {
            return Err(format!("node {} violated invariants", report.id));
        }
        match &report.digest {
            Some(d) if *d == expected_digest => {}
            other => {
                return Err(format!(
                    "node {} image digest {:?} != expected {}",
                    report.id, other, expected_digest
                ))
            }
        }
    }
    let mut reports: Vec<NodeReport> = latest.into_values().map(|(r, _)| r).collect();
    reports.sort_by_key(|r| r.id);
    println!(
        "[{}] {} nodes complete in {:.1} s wall; all digests match {}",
        scenario.scheme.label(),
        cfg.nodes,
        wall_s,
        &expected_digest[..16],
    );
    Ok(SwarmRun {
        scheme: scenario.scheme,
        wall_s,
        reports,
    })
}

fn run() -> Result<(), String> {
    let cli = Cli::parse("swarm", FLAGS).map_err(|e| e.to_string())?;
    let smoke = cli.smoke();
    let cfg = SwarmConfig {
        nodes: cli
            .parsed_or::<u32>("--nodes", if smoke { 16 } else { 64 })
            .map_err(|e| e.to_string())?,
        drop_ppm: cli
            .parsed_or::<u32>("--drop-ppm", 50_000)
            .map_err(|e| e.to_string())?,
        dup_ppm: cli
            .parsed_or::<u32>("--dup-ppm", 10_000)
            .map_err(|e| e.to_string())?,
        reorder_ppm: cli
            .parsed_or::<u32>("--reorder-ppm", 20_000)
            .map_err(|e| e.to_string())?,
        asym_frac_ppm: cli
            .parsed_or::<u32>("--asym-frac-ppm", 100_000)
            .map_err(|e| e.to_string())?,
        asym_keep_ppm: cli
            .parsed_or::<u32>("--asym-keep-ppm", 700_000)
            .map_err(|e| e.to_string())?,
        time_scale: cli
            .parsed_or::<u64>("--time-scale", 10)
            .map_err(|e| e.to_string())?,
        deadline: Duration::from_secs(
            cli.parsed_or::<u64>("--deadline-s", 180)
                .map_err(|e| e.to_string())?,
        ),
    };
    if cfg.nodes < 2 {
        return Err("need at least 2 nodes".to_string());
    }
    // LossyLinks asserts this; fail as a CLI error instead of a panic.
    if cfg.drop_ppm >= PPM_ONE {
        return Err(format!(
            "--drop-ppm {} would drop everything; need < {PPM_ONE}",
            cfg.drop_ppm
        ));
    }
    for (name, ppm) in [
        ("--dup-ppm", cfg.dup_ppm),
        ("--reorder-ppm", cfg.reorder_ppm),
        ("--asym-frac-ppm", cfg.asym_frac_ppm),
        ("--asym-keep-ppm", cfg.asym_keep_ppm),
    ] {
        if ppm > PPM_ONE {
            return Err(format!("{name} {ppm} exceeds {PPM_ONE} (= certainty)"));
        }
    }
    let schemes: Vec<SchemeKind> = match cli.value("--scheme").unwrap_or("both") {
        "both" => vec![SchemeKind::LrSeluge, SchemeKind::Seluge],
        name => vec![SchemeKind::parse(name)
            .ok_or_else(|| format!("bad --scheme {name:?}; use lr-seluge, seluge, or both"))?],
    };
    let image_len = cli
        .parsed_or::<usize>("--image-bytes", 2048)
        .map_err(|e| e.to_string())?;
    let seed = cli
        .parsed_or::<u64>("--seed", 7)
        .map_err(|e| e.to_string())?;
    let profile = cli.value("--profile").unwrap_or("campaign").to_string();

    let mut runs = Vec::new();
    for scheme in schemes {
        let scenario = SwarmScenario {
            scheme,
            profile: profile.clone(),
            image_len,
            key_context: "swarm keys".to_string(),
            seed,
        };
        runs.push(run_swarm(&scenario, &cfg)?);
    }

    let rows: Vec<Json> = runs
        .iter()
        .map(|run| {
            let tx: u64 = run.reports.iter().map(|r| r.tx_frames).sum();
            let rx: u64 = run.reports.iter().map(|r| r.rx_frames).sum();
            let rejected: u64 = run.reports.iter().map(|r| r.rx_rejected).sum();
            Json::Obj(vec![
                ("scheme".into(), Json::str(run.scheme.label())),
                ("nodes".into(), Json::num(run.reports.len() as u32)),
                ("wall_s".into(), Json::num(run.wall_s)),
                ("tx_frames".into(), Json::num(tx as f64)),
                ("rx_frames".into(), Json::num(rx as f64)),
                ("rx_rejected".into(), Json::num(rejected as f64)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("experiment".into(), Json::str("swarm")),
        (
            "mode".into(),
            Json::str(if smoke { "smoke" } else { "full" }),
        ),
        ("nodes_per_scheme".into(), Json::num(cfg.nodes)),
        ("drop_ppm".into(), Json::num(cfg.drop_ppm)),
        ("dup_ppm".into(), Json::num(cfg.dup_ppm)),
        ("reorder_ppm".into(), Json::num(cfg.reorder_ppm)),
        ("asym_frac_ppm".into(), Json::num(cfg.asym_frac_ppm)),
        ("asym_keep_ppm".into(), Json::num(cfg.asym_keep_ppm)),
        ("time_scale".into(), Json::num(cfg.time_scale as u32)),
        ("image_bytes".into(), Json::num(image_len as u32)),
        ("seed".into(), Json::num(seed as u32)),
        ("runs".into(), Json::Arr(rows)),
    ]);
    println!("wrote {}", write_json("swarm", &doc));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("swarm: {e}");
            ExitCode::FAILURE
        }
    }
}

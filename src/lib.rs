//! Umbrella crate for the LR-Seluge reproduction workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`), and re-exports the member crates so a
//! downstream experiment can depend on a single package:
//!
//! * [`lr_seluge`] — the LR-Seluge protocol itself.
//! * [`lrs_seluge`] / [`lrs_deluge`] — the Seluge and Deluge baselines
//!   plus the shared dissemination engine and attacker nodes.
//! * [`lrs_netsim`] — the discrete-event lossy wireless simulator.
//! * [`lrs_erasure`] / [`lrs_crypto`] — the erasure-coding and
//!   cryptographic substrates.
//! * [`lrs_analysis`] — the paper's §V analytical models.
//! * [`lrs_bench`] — experiment runners behind every figure and table.

pub mod swarm;

pub use lr_seluge;
pub use lrs_analysis;
pub use lrs_bench;
pub use lrs_crypto;
pub use lrs_deluge;
pub use lrs_erasure;
pub use lrs_host;
pub use lrs_netsim;
pub use lrs_seluge;

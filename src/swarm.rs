//! Shared plumbing for the `node` and `swarm` binaries and the
//! loopback host tests.
//!
//! A swarm run is "the paper's experiment, but real": dozens–hundreds
//! of OS processes, each wrapping the identical `Protocol` state
//! machine the simulator drives, exchanging enveloped `Message` bytes
//! over localhost UDP through a seeded lossy proxy. This module holds
//! everything both sides must agree on:
//!
//! * [`SwarmScenario`] — the deterministic recipe (scheme, parameter
//!   profile, image length, key context, seed) from which every process
//!   independently reconstructs the same keys, artifacts, and expected
//!   image, exactly as the capsule registry does for sim replays.
//! * [`SwarmNode`] — a scheme-erased protocol node plus the artifacts
//!   needed to self-check the sim's invariants (final image identity,
//!   authenticated-only buffering) at the end of a run.
//! * [`NodeReport`] / [`CONTROL_QUIT`] — the line-oriented control
//!   protocol between node processes and the swarm harness.
//! * [`LossyLinks`] — the proxy's seeded loss model: uniform
//!   drop/duplicate/reorder ppm composed with per-directed-link
//!   asymmetry expressed in the simulator's `FaultPlan` vocabulary
//!   (`Degrade`/`LinkDown`/`LinkUp`).

use lr_seluge::deployment::{Deployment, LrNode};
use lr_seluge::LrSelugeParams;
use lrs_bench::capsules::{
    attack_params, campaign_params, chaos_params, scale_image, scale_params,
};
use lrs_bench::runner::{matched_seluge_params, test_image};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_crypto::sha256::sha256;
use lrs_deluge::engine::{DisseminationNode, EngineConfig};
use lrs_deluge::policy::UnionPolicy;
use lrs_host::node::{Context, NodeId, Protocol, TimerId};
use lrs_host::time::SimTime;
use lrs_netsim::fault::{FaultEvent, FaultPlan, PPM_ONE};
use lrs_rng::DetRng;
use lrs_seluge::{SelugeArtifacts, SelugeScheme};
use std::collections::HashMap;

/// Which dissemination scheme a swarm runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchemeKind {
    /// The paper's protocol.
    LrSeluge,
    /// The fixed-packet baseline.
    Seluge,
}

impl SchemeKind {
    /// Parses a scheme name as used on the command line.
    pub fn parse(s: &str) -> Option<SchemeKind> {
        match s {
            "lr-seluge" | "lr" => Some(SchemeKind::LrSeluge),
            "seluge" => Some(SchemeKind::Seluge),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::LrSeluge => "lr-seluge",
            SchemeKind::Seluge => "seluge",
        }
    }
}

/// The deterministic recipe every process reconstructs its world from.
///
/// Mirrors the capsule registry's scenario tags: the same (profile,
/// image_len, key_context) triple produces bit-identical keys,
/// artifacts, and images here and in sim replays.
#[derive(Clone, Debug)]
pub struct SwarmScenario {
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Parameter profile from the capsule registry ("chaos", "scale",
    /// "campaign", "attack").
    pub profile: String,
    /// Image length in bytes.
    pub image_len: usize,
    /// Key-derivation context string.
    pub key_context: String,
    /// Seed for host RNG streams and the proxy loss model.
    pub seed: u64,
}

impl SwarmScenario {
    /// The LR-Seluge parameter set for this profile.
    pub fn params(&self) -> Result<LrSelugeParams, String> {
        match self.profile.as_str() {
            "chaos" => Ok(chaos_params(self.image_len)),
            "scale" => Ok(scale_params(self.image_len)),
            "campaign" => Ok(campaign_params(self.image_len)),
            "attack" => Ok(attack_params(self.image_len)),
            other => Err(format!(
                "unknown parameter profile {other:?}; known: chaos, scale, campaign, attack"
            )),
        }
    }

    /// The image being disseminated.
    pub fn image(&self) -> Result<Vec<u8>, String> {
        match self.profile.as_str() {
            "chaos" | "campaign" | "attack" => Ok(test_image(self.image_len)),
            "scale" => Ok(scale_image(self.image_len)),
            other => Err(format!("unknown parameter profile {other:?}")),
        }
    }

    /// Hex SHA-256 of the image — what every completed node must hold.
    pub fn expected_digest(&self) -> Result<String, String> {
        Ok(sha256(&self.image()?).to_hex())
    }

    /// Builds the protocol node for `id` (node 0 is the base station).
    pub fn build_node(&self, id: NodeId) -> Result<SwarmNode, String> {
        let params = self.params()?;
        let image = self.image()?;
        let context = self.key_context.as_bytes();
        match self.scheme {
            SchemeKind::LrSeluge => {
                let deployment = Deployment::try_new(&image, params, context)
                    .map_err(|e| format!("deployment: {e}"))?;
                let node = deployment.node(id, NodeId(0));
                Ok(SwarmNode::Lr { node, deployment })
            }
            SchemeKind::Seluge => {
                let sp = matched_seluge_params(&params);
                let kp = Keypair::from_seed(context);
                let chain = PuzzleKeyChain::generate(context, sp.version as u32 + 4);
                let artifacts = SelugeArtifacts::build(&image, sp, &kp, &chain);
                let puzzle = Puzzle::new(chain.anchor(), sp.puzzle_strength);
                let key = ClusterKey::derive(context, 0);
                let scheme = if id == NodeId(0) {
                    SelugeScheme::base(&artifacts, kp.public(), puzzle)
                } else {
                    SelugeScheme::receiver(sp, kp.public(), puzzle)
                };
                let node = DisseminationNode::new(
                    scheme,
                    UnionPolicy::new(),
                    key,
                    EngineConfig::default(),
                );
                Ok(SwarmNode::Seluge { node, artifacts })
            }
        }
    }
}

/// A scheme-erased protocol node bundled with the artifacts needed to
/// re-run the sim checker's invariants locally.
// One SwarmNode exists per process (or per loopback host thread), so
// the variant size gap is irrelevant; boxing would only add noise.
#[allow(clippy::large_enum_variant)]
pub enum SwarmNode {
    /// LR-Seluge node plus its deployment (source of `LrArtifacts`).
    Lr {
        /// The protocol state machine.
        node: LrNode,
        /// Deployment artifacts for invariant checking.
        deployment: Deployment,
    },
    /// Seluge node plus its build artifacts.
    Seluge {
        /// The protocol state machine.
        node: DisseminationNode<SelugeScheme, UnionPolicy>,
        /// Build artifacts for invariant checking.
        artifacts: SelugeArtifacts,
    },
}

impl SwarmNode {
    /// Self-check: completion, the sim checker's per-node invariants
    /// (buffered content must be authenticated content), and the hex
    /// digest of the reassembled image when complete.
    pub fn status(&self, expected_image: &[u8]) -> NodeStatus {
        let (complete, invariants_ok, image) = match self {
            SwarmNode::Lr { node, deployment } => (
                node.is_complete(),
                node.scheme()
                    .verify_invariants(deployment.artifacts(), expected_image)
                    .is_ok(),
                node.scheme().image(),
            ),
            SwarmNode::Seluge { node, artifacts } => (
                node.is_complete(),
                node.scheme()
                    .verify_invariants(artifacts, expected_image)
                    .is_ok(),
                node.scheme().image(),
            ),
        };
        NodeStatus {
            complete,
            invariants_ok,
            digest: image.map(|img| sha256(&img).to_hex()),
        }
    }
}

impl Protocol for SwarmNode {
    fn on_init(&mut self, ctx: &mut Context<'_>) {
        match self {
            SwarmNode::Lr { node, .. } => node.on_init(ctx),
            SwarmNode::Seluge { node, .. } => node.on_init(ctx),
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, from: NodeId, data: &[u8]) {
        match self {
            SwarmNode::Lr { node, .. } => node.on_packet(ctx, from, data),
            SwarmNode::Seluge { node, .. } => node.on_packet(ctx, from, data),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
        match self {
            SwarmNode::Lr { node, .. } => node.on_timer(ctx, timer),
            SwarmNode::Seluge { node, .. } => node.on_timer(ctx, timer),
        }
    }

    fn is_complete(&self) -> bool {
        match self {
            SwarmNode::Lr { node, .. } => node.is_complete(),
            SwarmNode::Seluge { node, .. } => node.is_complete(),
        }
    }

    fn on_reboot(&mut self, ctx: &mut Context<'_>) {
        match self {
            SwarmNode::Lr { node, .. } => node.on_reboot(ctx),
            SwarmNode::Seluge { node, .. } => node.on_reboot(ctx),
        }
    }

    fn progress(&self) -> u64 {
        match self {
            SwarmNode::Lr { node, .. } => node.progress(),
            SwarmNode::Seluge { node, .. } => node.progress(),
        }
    }

    fn diagnostic(&self) -> String {
        match self {
            SwarmNode::Lr { node, .. } => node.diagnostic(),
            SwarmNode::Seluge { node, .. } => node.diagnostic(),
        }
    }
}

/// Result of a node's self-check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeStatus {
    /// Whether dissemination finished.
    pub complete: bool,
    /// Whether the sim checker's invariants hold.
    pub invariants_ok: bool,
    /// Hex SHA-256 of the reassembled image, once complete.
    pub digest: Option<String>,
}

/// Datagram the harness sends to stop a node process.
pub const CONTROL_QUIT: &[u8] = b"lrs-swarm quit";

/// One status line a node process reports to the harness's control
/// socket. Line-oriented `key=value` text so a torn or foreign datagram
/// parses to `None` rather than corrupting the harness state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeReport {
    /// Reporting node.
    pub id: u32,
    /// Whether dissemination finished.
    pub complete: bool,
    /// Whether the sim checker's invariants hold.
    pub invariants_ok: bool,
    /// Hex image digest when complete.
    pub digest: Option<String>,
    /// Frames handed to the transport.
    pub tx_frames: u64,
    /// Frames delivered to the protocol.
    pub rx_frames: u64,
    /// Datagrams rejected at the envelope.
    pub rx_rejected: u64,
}

impl NodeReport {
    /// Serializes to one control-protocol line.
    pub fn encode(&self) -> String {
        format!(
            "lrs-swarm report id={} complete={} invariants={} digest={} tx={} rx={} rejected={}",
            self.id,
            u8::from(self.complete),
            u8::from(self.invariants_ok),
            self.digest.as_deref().unwrap_or("-"),
            self.tx_frames,
            self.rx_frames,
            self.rx_rejected,
        )
    }

    /// Parses a control-protocol line; `None` for anything malformed.
    ///
    /// Strict by design — this reads datagrams off an open UDP socket:
    /// duplicate keys are rejected (a line that says `complete=1
    /// complete=0` is corrupt, not "last wins"), and a non-`-` digest
    /// must be exactly the 64 lowercase hex characters `sha256::to_hex`
    /// emits.
    pub fn parse(line: &str) -> Option<NodeReport> {
        let rest = line.strip_prefix("lrs-swarm report ")?;
        let mut fields = HashMap::new();
        for part in rest.split_whitespace() {
            let (k, v) = part.split_once('=')?;
            if fields.insert(k, v).is_some() {
                return None;
            }
        }
        let flag = |k: &str| -> Option<bool> {
            match *fields.get(k)? {
                "0" => Some(false),
                "1" => Some(true),
                _ => None,
            }
        };
        Some(NodeReport {
            id: fields.get("id")?.parse().ok()?,
            complete: flag("complete")?,
            invariants_ok: flag("invariants")?,
            digest: match *fields.get("digest")? {
                "-" => None,
                hex if hex.len() == 64
                    && hex
                        .bytes()
                        .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) =>
                {
                    Some(hex.to_string())
                }
                _ => return None,
            },
            tx_frames: fields.get("tx")?.parse().ok()?,
            rx_frames: fields.get("rx")?.parse().ok()?,
            rx_rejected: fields.get("rejected")?.parse().ok()?,
        })
    }
}

/// What the proxy does with one packet on one directed link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Copies to forward (0 = dropped, 2 = duplicated).
    pub copies: u8,
    /// Whether to hold this packet briefly so it overtakes nothing —
    /// i.e., deliver it out of order.
    pub reorder: bool,
}

/// The proxy's frame-forwarding discipline: applies a [`Delivery`]
/// verdict to one datagram toward one destination, implementing
/// reordering as "hold at most one frame per destination until a later
/// frame passes it".
///
/// Extracted from the `swarm` binary's socket loop so the delivery
/// arithmetic is unit-testable. The invariant the proxy must keep is
/// **conservation**: every copy the verdict grants is eventually put on
/// the wire (possibly out of order), none invented, none discarded. In
/// particular a frame that rolls duplicate *and* reorder holds one copy
/// back and forwards the other immediately — the pair itself arrives
/// out of order, which is exactly what that verdict means.
#[derive(Default)]
pub struct ReorderRelay {
    /// At most one held-back frame per destination.
    held: HashMap<u32, Vec<u8>>,
}

impl ReorderRelay {
    /// An empty relay (nothing held).
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies `delivery` to `datagram`, invoking `send` once per frame
    /// to put on the wire now, in wire order. Returns how many frames
    /// were sent immediately (held frames are sent by a later `apply`
    /// or by [`flush`](ReorderRelay::flush)).
    pub fn apply(
        &mut self,
        dest: u32,
        datagram: &[u8],
        delivery: Delivery,
        mut send: impl FnMut(&[u8]),
    ) -> u32 {
        let Delivery { copies, reorder } = delivery;
        if copies == 0 {
            return 0;
        }
        let mut now = u32::from(copies);
        let holds = reorder && !self.held.contains_key(&dest);
        if holds {
            // Hold one copy back; any remaining copies (a duplicate
            // that also rolled reorder) still go out immediately.
            self.held.insert(dest, datagram.to_vec());
            now -= 1;
        }
        for _ in 0..now {
            send(datagram);
        }
        // A frame just passed this destination: release any earlier
        // frame held for it, now out of order. If this call held (the
        // slot was empty before), there is nothing earlier to release —
        // that copy waits for the *next* passer or the idle flush.
        if now > 0 && !holds {
            if let Some(earlier) = self.held.remove(&dest) {
                send(&earlier);
                return now + 1;
            }
        }
        now
    }

    /// Releases every held frame (the proxy's idle tick), so reordering
    /// can only delay a frame briefly, never strand it. Returns the
    /// number of frames released.
    pub fn flush(&mut self, mut send: impl FnMut(u32, &[u8])) -> u32 {
        let mut released = 0;
        for (dest, frame) in self.held.drain() {
            send(dest, &frame);
            released += 1;
        }
        released
    }

    /// Number of destinations with a frame currently held back.
    pub fn held_frames(&self) -> usize {
        self.held.len()
    }
}

/// The proxy's seeded loss model.
///
/// Composes three processes per directed link, mirroring the
/// simulator's vocabulary:
///
/// 1. uniform i.i.d. drop/duplicate/reorder ppm (the paper's `p` knob),
/// 2. `FaultPlan::degrade(from, to, ppm, at)` — from `at` onward the
///    link keeps only `ppm`/1e6 of deliveries (one direction only ⇒
///    asymmetric link),
/// 3. `FaultPlan::link_down` / `link_up` outages.
///
/// Node-side events in the plan (crash, reboot, clock drift) are not a
/// proxy concern and are ignored.
pub struct LossyLinks {
    drop_ppm: u32,
    dup_ppm: u32,
    reorder_ppm: u32,
    /// Remaining plan events, soonest last (popped as time passes).
    pending: Vec<FaultEvent>,
    /// Per-directed-link delivery scale (absent = [`PPM_ONE`]).
    degrade: HashMap<(u32, u32), u32>,
    /// Per-directed-link outage flag.
    down: HashMap<(u32, u32), bool>,
    rng: DetRng,
}

impl LossyLinks {
    /// Builds the model. `plan` events are applied as [`advance`]
    /// passes their timestamps (virtual time, like the simulator).
    ///
    /// [`advance`]: LossyLinks::advance
    pub fn new(drop_ppm: u32, dup_ppm: u32, reorder_ppm: u32, plan: &FaultPlan, seed: u64) -> Self {
        assert!(drop_ppm < PPM_ONE, "drop_ppm must leave some deliveries");
        let mut pending = plan.events().to_vec();
        // events() is sorted soonest-first; pop from the back.
        pending.reverse();
        LossyLinks {
            drop_ppm,
            dup_ppm,
            reorder_ppm,
            pending,
            degrade: HashMap::new(),
            down: HashMap::new(),
            rng: DetRng::seed_from_u64(seed ^ 0x4C52_5357_4C4F_5353),
        }
    }

    /// Applies every plan event with timestamp ≤ `now`.
    pub fn advance(&mut self, now: SimTime) {
        while self.pending.last().is_some_and(|event| event.at() <= now) {
            let Some(event) = self.pending.pop() else {
                break;
            };
            match event {
                FaultEvent::LinkDown { from, to, .. } => {
                    self.down.insert((from.0, to.0), true);
                }
                FaultEvent::LinkUp { from, to, .. } => {
                    self.down.insert((from.0, to.0), false);
                }
                FaultEvent::Degrade { from, to, ppm, .. } => {
                    self.degrade.insert((from.0, to.0), ppm);
                }
                // Node-side faults are not the proxy's job.
                FaultEvent::Crash { .. }
                | FaultEvent::Reboot { .. }
                | FaultEvent::ClockDrift { .. } => {}
            }
        }
    }

    /// Rolls the dice for one packet on the directed link `from → to`.
    pub fn verdict(&mut self, from: NodeId, to: NodeId) -> Delivery {
        if self.down.get(&(from.0, to.0)).copied().unwrap_or(false) {
            return Delivery {
                copies: 0,
                reorder: false,
            };
        }
        let scale = self
            .degrade
            .get(&(from.0, to.0))
            .copied()
            .unwrap_or(PPM_ONE);
        // Survive the uniform drop AND the link's degradation scale.
        let keep_ppm = ((PPM_ONE - self.drop_ppm) as u64 * scale as u64 / PPM_ONE as u64) as u32;
        if self.rng.gen_range(0..u64::from(PPM_ONE)) >= u64::from(keep_ppm) {
            return Delivery {
                copies: 0,
                reorder: false,
            };
        }
        let copies = if self.rng.gen_range(0..u64::from(PPM_ONE)) < u64::from(self.dup_ppm) {
            2
        } else {
            1
        };
        let reorder = self.rng.gen_range(0..u64::from(PPM_ONE)) < u64::from(self.reorder_ppm);
        Delivery { copies, reorder }
    }
}

/// A seeded plan degrading a fraction of directed links from time zero
/// — the swarm's default per-link asymmetry. Each ordered pair `(i, j)`
/// is independently selected with probability `link_frac_ppm`/1e6 and,
/// if selected, keeps only `keep_ppm`/1e6 of its deliveries; the
/// reverse direction is rolled separately, so most degraded links are
/// asymmetric, exactly like the simulator's degrade vocabulary.
pub fn asymmetry_plan(nodes: u32, link_frac_ppm: u32, keep_ppm: u32, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let mut rng = DetRng::seed_from_u64(seed ^ 0x4153_594D_504C_414E);
    for i in 0..nodes {
        for j in 0..nodes {
            if i != j && rng.gen_range(0..u64::from(PPM_ONE)) < u64::from(link_frac_ppm) {
                plan.degrade(NodeId(i), NodeId(j), keep_ppm, SimTime::ZERO);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips() {
        let digest = sha256(b"image").to_hex();
        for digest in [None, Some(digest)] {
            let report = NodeReport {
                id: 17,
                complete: digest.is_some(),
                invariants_ok: true,
                digest: digest.clone(),
                tx_frames: 40,
                rx_frames: 40,
                rx_rejected: 2,
            };
            assert_eq!(NodeReport::parse(&report.encode()), Some(report));
        }
        assert_eq!(NodeReport::parse("lrs-swarm quit"), None);
        assert_eq!(NodeReport::parse("garbage"), None);
        assert_eq!(NodeReport::parse("lrs-swarm report id=x"), None);
    }

    #[test]
    fn report_parse_rejects_duplicate_keys_and_bad_digests() {
        let digest = sha256(b"image").to_hex();
        let line = |d: &str| {
            format!("lrs-swarm report id=1 complete=1 invariants=1 digest={d} tx=4 rx=4 rejected=0")
        };
        assert!(NodeReport::parse(&line(&digest)).is_some());
        // Malformed digests: wrong length, non-hex, uppercase.
        for bad in ["ab12", "zz", &digest[..63], &digest.to_uppercase()] {
            assert_eq!(NodeReport::parse(&line(bad)), None, "digest {bad:?}");
        }
        // Duplicate keys are corruption, not last-wins.
        let dup = format!("{} complete=0", line("-"));
        assert_eq!(NodeReport::parse(&dup), None);
        // A benign line with every key exactly once still parses.
        assert!(NodeReport::parse(&line("-")).is_some());
    }

    #[test]
    fn relay_delivers_the_duplicate_of_a_reordered_frame() {
        // The regression this pins: copies == 2 AND reorder on the same
        // frame used to discard the duplicate (the held-frame branch
        // returned before the copies loop ran). One copy must go out
        // immediately, the second when the next frame passes.
        let mut relay = ReorderRelay::new();
        let mut wire: Vec<Vec<u8>> = Vec::new();
        let sent = relay.apply(
            5,
            b"first",
            Delivery {
                copies: 2,
                reorder: true,
            },
            |f| wire.push(f.to_vec()),
        );
        assert_eq!(sent, 1, "one copy forwarded immediately");
        assert_eq!(relay.held_frames(), 1, "the other copy is held");
        assert_eq!(wire, vec![b"first".to_vec()]);
        // A later frame passes: it goes first, then the held copy.
        relay.apply(
            5,
            b"second",
            Delivery {
                copies: 1,
                reorder: false,
            },
            |f| wire.push(f.to_vec()),
        );
        assert_eq!(
            wire,
            vec![b"first".to_vec(), b"second".to_vec(), b"first".to_vec()],
            "duplicate delivered out of order, not discarded"
        );
        assert_eq!(relay.held_frames(), 0);
    }

    #[test]
    fn relay_conserves_frames_under_a_seeded_dup_reorder_storm() {
        // Conservation over the real verdict stream: every copy the
        // loss model grants reaches the wire, none invented. Rates are
        // cranked so dup+reorder coincidences are common.
        let mut links = LossyLinks::new(100_000, 300_000, 300_000, &FaultPlan::new(), 42);
        let mut relay = ReorderRelay::new();
        let mut granted: u64 = 0;
        let mut sent: u64 = 0;
        let mut dup_reorder = 0u64;
        for i in 0u32..10_000 {
            let verdict = links.verdict(NodeId(0), NodeId(1));
            if verdict.copies == 2 && verdict.reorder {
                dup_reorder += 1;
            }
            granted += u64::from(verdict.copies);
            sent += u64::from(relay.apply(1, &i.to_le_bytes(), verdict, |_| {}));
        }
        sent += u64::from(relay.flush(|_, _| {}));
        assert_eq!(sent, granted, "wire count must equal granted copies");
        // Pin the seeded stream so the scenario can't silently vanish:
        // seed 42 at these rates produces exactly these counts.
        assert_eq!(granted, 11_594);
        assert_eq!(dup_reorder, 759, "dup+reorder coincidences exercised");
    }

    #[test]
    fn lossy_links_honor_down_and_degrade() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent::LinkDown {
            from: NodeId(0),
            to: NodeId(1),
            at: SimTime(5),
        });
        plan.degrade(NodeId(2), NodeId(3), 0, SimTime::ZERO);
        let mut links = LossyLinks::new(0, 0, 0, &plan, 1);
        links.advance(SimTime::ZERO);
        // Degraded-to-zero link never delivers; the down event is still
        // in the future, so 0→1 delivers.
        assert_eq!(links.verdict(NodeId(2), NodeId(3)).copies, 0);
        assert_eq!(links.verdict(NodeId(0), NodeId(1)).copies, 1);
        links.advance(SimTime(5));
        assert_eq!(links.verdict(NodeId(0), NodeId(1)).copies, 0);
        // Asymmetric: the reverse direction is untouched.
        assert_eq!(links.verdict(NodeId(1), NodeId(0)).copies, 1);
    }

    #[test]
    fn lossy_links_drop_rate_is_plausible() {
        let mut links = LossyLinks::new(100_000, 0, 0, &FaultPlan::new(), 7);
        let delivered = (0..10_000)
            .filter(|_| links.verdict(NodeId(0), NodeId(1)).copies > 0)
            .count();
        // 10% drop ±2% over 10k rolls.
        assert!((8_800..=9_200).contains(&delivered), "{delivered}");
    }

    #[test]
    fn scenario_is_deterministic_across_reconstructions() {
        let scenario = SwarmScenario {
            scheme: SchemeKind::LrSeluge,
            profile: "campaign".into(),
            image_len: 512,
            key_context: "swarm test".into(),
            seed: 9,
        };
        let a = scenario.expected_digest().expect("digest");
        let b = scenario.expected_digest().expect("digest");
        assert_eq!(a, b);
        // Both schemes construct nodes for the same scenario.
        assert!(scenario.build_node(NodeId(0)).is_ok());
        let seluge = SwarmScenario {
            scheme: SchemeKind::Seluge,
            ..scenario
        };
        assert!(seluge.build_node(NodeId(1)).is_ok());
    }

    #[test]
    fn asymmetry_plan_is_seeded_and_directional() {
        let a = asymmetry_plan(16, 100_000, 500_000, 3);
        let b = asymmetry_plan(16, 100_000, 500_000, 3);
        assert_eq!(a.events().len(), b.events().len());
        assert!(!a.events().is_empty(), "some links degraded");
        // Expect roughly 10% of 240 directed links.
        assert!(a.events().len() < 60);
    }
}

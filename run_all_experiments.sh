#!/bin/bash
# Regenerates every figure/table at paper scale, then runs the
# robustness suites (chaos sweep, shard-scaling sweep, flight-recorder
# and campaign gates). Run from the repo root; extra args are forwarded
# to the figure/table bins (e.g. --quick).
set -e
cd "$(dirname "$0")"
mkdir -p results

echo "=== build ==="
cargo build --workspace --release

# Record the compute configuration: which GF(256) and SHA-256 kernels
# this CPU supports and which ones runtime dispatch selected. Results
# are bit-identical across kernels, but throughput/runtime comparisons
# between recorded runs need to know the ISA they measured on.
echo "=== kernels ==="
./target/release/probe --kernels | tee results/kernels.txt

for bin in fig3 fig4 fig5 fig6 imgsize ablation overhead table2_3; do
  echo "=== $bin ==="
  ./target/release/$bin "$@" | tee results/$bin.txt
done

# Attack-resilience suite; --capsule arms the flight recorder on the
# LR-Seluge flood runs, whose plan-driven adversaries come from the
# shared capsule registry.
echo "=== attack ==="
./target/release/attack --capsule results/capsules "$@" | tee results/attack.txt

# Fault-intensity sweep with invariant checking and the stall watchdog;
# --capsule arms the flight recorder so any stall or invariant
# violation dumps a replayable capsule into results/capsules.
echo "=== chaos ==="
./target/release/chaos --capsule results/capsules "$@" | tee results/chaos.txt

# Shard-scaling sweep; asserts sharded metrics are shard-count
# invariant and writes results/scale.json.
echo "=== scale ==="
./target/release/scale --capsule results/capsules "$@" | tee results/scale.txt

# Flight-recorder gate: capture both schemes, replay across engines and
# shard counts, verify digest bit-identity.
echo "=== replay ==="
./target/release/replay --smoke | tee results/replay.txt

# Campaign gate: the built-in 24-job checkpointed Monte-Carlo grid,
# including a kill + resume cycle to exercise crash recovery. The final
# report must match the committed golden byte-for-byte.
echo "=== campaign ==="
rm -rf results/campaign-smoke
./target/release/campaign --smoke --kill-after 6 | tee results/campaign.txt
./target/release/campaign --resume results/campaign-smoke | tee -a results/campaign.txt
diff results/campaign-smoke/report.json results/campaign_smoke_golden.json \
  && echo "campaign report matches the committed golden"

# Adversary-campaign gate: plan-driven attackers crossed with
# crash/reboot faults on both schemes; attacked cells report the
# graceful-degradation axes (completion_frac, verify_inflation,
# energy_j) and the report must match its committed golden.
echo "=== attack campaign ==="
rm -rf results/campaign-attack-mini
./target/release/campaign --spec examples/campaign/attack-mini.toml \
  --out results/campaign-attack-mini | tee results/campaign_attack.txt
diff results/campaign-attack-mini/report.json results/campaign_attack_golden.json \
  && echo "attack campaign report matches the committed golden"

# Statistical diff gate: the regenerated smoke report self-diffed
# against the committed golden must show zero significant differences
# (they are byte-identical, so this also smoke-tests campdiff itself),
# and an injected perturbation must be flagged with exit code 2.
echo "=== campdiff ==="
./target/release/campdiff --a results/campaign_smoke_golden.json \
  --b results/campaign-smoke/report.json \
  --out results/campdiff-self.json | tee results/campdiff.txt
set +e
./target/release/campdiff --a results/campaign_smoke_golden.json \
  --b results/campaign-smoke/report.json \
  --inject verify_inflation=1.25 \
  --out results/campdiff-injected.json | tee -a results/campdiff.txt
campdiff_code=$?
set -e
if [ "$campdiff_code" -ne 2 ]; then
  echo "campdiff missed the injected regression (exit $campdiff_code)" >&2
  exit 1
fi
echo "campdiff gates passed: clean self-diff, injected regression flagged"

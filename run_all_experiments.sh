#!/bin/bash
# Regenerates every figure/table at paper scale. Run from the repo root.
set -e
cd "$(dirname "$0")"
mkdir -p results
for bin in fig3 fig4 fig5 fig6 imgsize ablation overhead attack table2_3; do
  echo "=== $bin ==="
  ./target/release/$bin "$@" | tee results/$bin.txt
done

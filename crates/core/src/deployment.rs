//! A convenience facade bundling key material, preprocessing and node
//! construction for a whole deployment.

use crate::params::{LrSelugeParams, ParamError};
use crate::preprocess::LrArtifacts;
use crate::scheduler::GreedyRoundRobinPolicy;
use crate::scheme::{LrScheme, PacketDigestCache};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::leap::LeapKeyring;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::{Keypair, PublicKey};
use lrs_deluge::engine::{DisseminationNode, EngineConfig};
use lrs_deluge::policy::TxPolicy;
use lrs_netsim::node::NodeId;

/// An LR-Seluge protocol node, ready for the simulator.
pub type LrNode = DisseminationNode<LrScheme, GreedyRoundRobinPolicy>;

/// A prepared deployment: one image, one base-station keypair, one
/// cluster key, preprocessed artifacts.
#[derive(Clone)]
pub struct Deployment {
    artifacts: LrArtifacts,
    pubkey: PublicKey,
    puzzle: Puzzle,
    cluster_key: ClusterKey,
    engine: EngineConfig,
    /// Initial network key for LEAP bootstrap, when enabled.
    leap_seed: Option<Vec<u8>>,
}

impl Deployment {
    /// Preprocesses `image` with keys derived from `seed_material`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent or the image length does
    /// not match `params.image_len`; use [`try_new`](Self::try_new) to
    /// get a typed error instead.
    pub fn new(image: &[u8], params: LrSelugeParams, seed_material: &[u8]) -> Self {
        match Self::try_new(image, params, seed_material) {
            Ok(deployment) => deployment,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`new`](Self::new): rejects inconsistent parameters or
    /// a mismatched image with a [`ParamError`] instead of panicking —
    /// the entry point when the configuration comes from user input.
    pub fn try_new(
        image: &[u8],
        params: LrSelugeParams,
        seed_material: &[u8],
    ) -> Result<Self, ParamError> {
        let keypair = Keypair::from_seed(seed_material);
        let chain = PuzzleKeyChain::generate(seed_material, params.version as u32 + 4);
        let artifacts = LrArtifacts::try_build(image, params, &keypair, &chain)?;
        Ok(Deployment {
            artifacts,
            pubkey: keypair.public(),
            puzzle: Puzzle::new(chain.anchor(), params.puzzle_strength),
            cluster_key: ClusterKey::derive(seed_material, 0),
            engine: EngineConfig::default(),
            leap_seed: None,
        })
    }

    /// Enables LEAP pairwise source authentication of SNACK packets (the
    /// paper's §IV-E proposal, required for a spoof-proof
    /// denial-of-receipt budget).
    pub fn with_leap(mut self, initial_network_key: &[u8]) -> Self {
        self.leap_seed = Some(initial_network_key.to_vec());
        self
    }

    /// Overrides the engine configuration (timers, retry limits,
    /// denial-of-receipt budget).
    pub fn with_engine_config(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// The preprocessed artifacts.
    pub fn artifacts(&self) -> &LrArtifacts {
        &self.artifacts
    }

    /// The deployment-wide cluster key.
    pub fn cluster_key(&self) -> &ClusterKey {
        &self.cluster_key
    }

    /// Layout parameters.
    pub fn params(&self) -> LrSelugeParams {
        self.artifacts.params()
    }

    /// Builds a node with a custom TX policy (used by the scheduler
    /// ablation, which runs LR-Seluge with the Deluge/Seluge union rule
    /// instead of the greedy round-robin scheduler).
    pub fn node_with_policy<P: TxPolicy>(
        &self,
        id: NodeId,
        base_id: NodeId,
        policy: P,
    ) -> DisseminationNode<LrScheme, P> {
        let scheme = if id == base_id {
            LrScheme::base(&self.artifacts, self.pubkey, self.puzzle)
        } else {
            LrScheme::receiver(self.params(), self.pubkey, self.puzzle)
        };
        let node = DisseminationNode::new(scheme, policy, self.cluster_key.clone(), self.engine);
        match &self.leap_seed {
            Some(seed) => node.with_leap(LeapKeyring::bootstrap(seed, id.0)),
            None => node,
        }
    }

    /// Builds the protocol node for `id` (`base_id` gets the full image).
    pub fn node(&self, id: NodeId, base_id: NodeId) -> LrNode {
        self.wrap(self.make_scheme(id, base_id), id)
    }

    /// Like [`Deployment::node`], but shares a per-run packet-digest memo
    /// across the run's nodes. The cache is `Rc`-based and deliberately
    /// *not* stored in the deployment (which is shared across harness
    /// threads): create one per sim run and pass it to every node.
    pub fn node_cached(&self, id: NodeId, base_id: NodeId, cache: &PacketDigestCache) -> LrNode {
        self.wrap(
            self.make_scheme(id, base_id)
                .with_digest_cache(cache.clone()),
            id,
        )
    }

    /// Pre-fills a per-run packet-digest memo from the preprocessed
    /// artifacts (see [`LrArtifacts::warm_digest_cache`]): all
    /// predetermined packet hashes are computed in multi-buffer batches
    /// up front, so receivers hit warm entries from the first packet.
    pub fn warm_digest_cache(&self, cache: &PacketDigestCache) {
        self.artifacts.warm_digest_cache(cache);
    }

    fn make_scheme(&self, id: NodeId, base_id: NodeId) -> LrScheme {
        if id == base_id {
            LrScheme::base(&self.artifacts, self.pubkey, self.puzzle)
        } else {
            LrScheme::receiver(self.params(), self.pubkey, self.puzzle)
        }
    }

    fn wrap(&self, scheme: LrScheme, id: NodeId) -> LrNode {
        let node = DisseminationNode::new(
            scheme,
            GreedyRoundRobinPolicy::new(),
            self.cluster_key.clone(),
            self.engine,
        );
        match &self.leap_seed {
            Some(seed) => node.with_leap(LeapKeyring::bootstrap(seed, id.0)),
            None => node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrs_netsim::node::Protocol as _;

    #[test]
    fn deployment_builds_base_and_receivers() {
        let params = LrSelugeParams {
            image_len: 512,
            k: 4,
            n: 6,
            payload_len: 48,
            k0: 2,
            n0: 4,
            puzzle_strength: 4,
            ..LrSelugeParams::default()
        };
        let image = vec![0x5a; 512];
        let d = Deployment::new(&image, params, b"seed");
        let base = d.node(NodeId(0), NodeId(0));
        let rx = d.node(NodeId(1), NodeId(0));
        assert!(base.is_complete());
        assert!(!rx.is_complete());
        assert_eq!(base.scheme().image().unwrap(), image);
    }

    #[test]
    fn try_new_rejects_bad_configuration_without_panicking() {
        let good = LrSelugeParams {
            image_len: 512,
            k: 4,
            n: 6,
            payload_len: 48,
            k0: 2,
            n0: 4,
            puzzle_strength: 4,
            ..LrSelugeParams::default()
        };
        // Inconsistent code dimensions.
        let err = match Deployment::try_new(&[0u8; 512], LrSelugeParams { n: 2, ..good }, b"seed") {
            Ok(_) => panic!("n < k must be rejected"),
            Err(err) => err,
        };
        assert!(err.to_string().contains("invalid LR-Seluge configuration"));
        // Image/params length mismatch.
        assert!(Deployment::try_new(&[0u8; 100], good, b"seed").is_err());
        // The good configuration still builds.
        assert!(Deployment::try_new(&[0u8; 512], good, b"seed").is_ok());
    }
}

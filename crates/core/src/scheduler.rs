//! The greedy round-robin TX scheduler (paper §IV-D-3, Table I).
//!
//! A node in the TX state maintains a *tracking table* with one entry per
//! requesting neighbor: the neighbor's id, the bit vector of packets it
//! still wants, and its *distance* `d_v = q + k' − n` (the number of
//! additional packets it needs, given that any `k'` of the `n` encoded
//! packets decode the page). The scheduler repeatedly transmits the
//! packet wanted by the most neighbors; on ties it takes the first
//! candidate cyclically to the right of the last transmission. After
//! each transmission the chosen column is cleared, distances of the
//! nodes that wanted it are decremented, and sated entries (`d = 0`) are
//! dropped — those neighbors can decode even though other requested bits
//! remain set. Transmission stops when the table is empty, which is why
//! LR-Seluge serves diverse loss patterns with far fewer packets than
//! the union rule of Deluge/Seluge.

use lrs_deluge::policy::TxPolicy;
use lrs_deluge::wire::BitVec;
use lrs_netsim::node::NodeId;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
struct Entry {
    node: NodeId,
    bits: BitVec,
    distance: u16,
}

#[derive(Clone, Debug)]
struct Table {
    entries: Vec<Entry>,
    last_sent: Option<usize>,
    n: usize,
    /// Reused popularity counters — `pick()` runs once per transmitted
    /// packet, so the per-call `Vec` allocation is worth avoiding.
    pop_scratch: Vec<usize>,
}

impl Table {
    fn popularity(&mut self) -> &[usize] {
        self.pop_scratch.clear();
        self.pop_scratch.resize(self.n, 0);
        for e in &self.entries {
            for j in e.bits.iter_ones() {
                self.pop_scratch[j] += 1;
            }
        }
        &self.pop_scratch
    }

    /// Picks the next packet index per the paper's rule.
    fn pick(&mut self) -> Option<usize> {
        let n = self.n;
        let start = match self.last_sent {
            Some(x) => (x + 1) % n,
            None => 0,
        };
        let pop = self.popularity();
        let max = *pop.iter().max()?;
        if max == 0 {
            return None;
        }
        (0..n).map(|off| (start + off) % n).find(|&j| pop[j] == max)
    }

    /// Applies the post-transmission update for packet `x`.
    fn sent(&mut self, x: usize) {
        for e in &mut self.entries {
            if e.bits.get(x) {
                e.bits.set(x, false);
                e.distance = e.distance.saturating_sub(1);
            }
        }
        self.entries.retain(|e| e.distance > 0 && !e.bits.is_zero());
        self.last_sent = Some(x);
    }
}

/// LR-Seluge's TX policy: a tracking table per item.
#[derive(Clone, Debug, Default)]
pub struct GreedyRoundRobinPolicy {
    tables: BTreeMap<u16, Table>,
}

impl GreedyRoundRobinPolicy {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of neighbors currently tracked for `item` (diagnostics).
    pub fn tracked(&self, item: u16) -> usize {
        self.tables.get(&item).map_or(0, |t| t.entries.len())
    }
}

impl TxPolicy for GreedyRoundRobinPolicy {
    fn on_snack(&mut self, from: NodeId, item: u16, bits: &BitVec, needed: u16) {
        if bits.is_zero() || needed == 0 {
            return;
        }
        let table = self.tables.entry(item).or_insert_with(|| Table {
            entries: Vec::new(),
            last_sent: None,
            n: bits.len(),
            pop_scratch: Vec::new(),
        });
        if let Some(entry) = table.entries.iter_mut().find(|e| e.node == from) {
            // Refresh to the neighbor's latest view (§IV-D-3: "node u
            // updates the entry according to the SNACK request").
            entry.bits = bits.clone();
            entry.distance = needed;
        } else {
            table.entries.push(Entry {
                node: from,
                bits: bits.clone(),
                distance: needed,
            });
        }
    }

    fn next(&mut self) -> Option<(u16, u16)> {
        loop {
            let (&item, table) = self.tables.iter_mut().next()?;
            match table.pick() {
                Some(x) => {
                    table.sent(x);
                    if table.entries.is_empty() {
                        self.tables.remove(&item);
                    }
                    return Some((item, x as u16));
                }
                None => {
                    self.tables.remove(&item);
                }
            }
        }
    }

    fn on_overheard_data(&mut self, item: u16, index: u16) {
        if let Some(table) = self.tables.get_mut(&item) {
            if (index as usize) < table.n {
                // Clear the column (no point duplicating a packet already
                // on the air) but do NOT decrement distances: unlike our
                // own transmissions, another sender's packet may be
                // inaudible to our requesters (multi-hop), so treating it
                // as satisfying them would retire entries that were never
                // served. Requesters that did hear it shrink their bits in
                // the next SNACK refresh anyway.
                for e in &mut table.entries {
                    if e.bits.get(index as usize) {
                        e.bits.set(index as usize, false);
                    }
                }
                table.entries.retain(|e| !e.bits.is_zero());
                if table.entries.is_empty() {
                    self.tables.remove(&item);
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.tables.values().all(|t| t.entries.is_empty())
    }

    fn min_pending_item(&self) -> Option<u16> {
        self.tables
            .iter()
            .find(|(_, t)| !t.entries.is_empty())
            .map(|(&item, _)| item)
    }

    fn clear(&mut self) {
        self.tables.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(len: usize, ones: &[usize]) -> BitVec {
        let mut b = BitVec::zeros(len);
        for &i in ones {
            b.set(i, true);
        }
        b
    }

    /// Distance for an MDS code: d = q + k' − n.
    fn dist(q: usize, k: usize, n: usize) -> u16 {
        (q + k - n) as u16
    }

    #[test]
    fn paper_table_i_walkthrough() {
        // §IV-D-3's worked example (k = k' = 3, n = 4): three neighbors
        // all want P2 (0-based index 1), which is therefore sent first;
        // the neighbor at distance 1 is then removed even though it has
        // other bits set; subsequent picks walk cyclically to the right
        // among the most-popular remaining columns until the table
        // empties.
        let k = 3;
        let n = 4;
        let mut p = GreedyRoundRobinPolicy::new();
        // v1 wants {P1, P2} → q = 2, d = 1.
        p.on_snack(NodeId(1), 0, &bits(n, &[0, 1]), dist(2, k, n));
        // v2 wants {P2, P3, P4} → q = 3, d = 2.
        p.on_snack(NodeId(2), 0, &bits(n, &[1, 2, 3]), dist(3, k, n));
        // v3 wants {P1, P2, P4} → q = 3, d = 2.
        p.on_snack(NodeId(3), 0, &bits(n, &[0, 1, 3]), dist(3, k, n));
        assert_eq!(p.tracked(0), 3);

        // P2 (index 1) has popularity 3: sent first.
        assert_eq!(p.next(), Some((0, 1)));
        // v1's distance hit 0: removed despite wanting P1 too.
        assert_eq!(p.tracked(0), 2);
        // Remaining: v2 wants {P3, P4} at distance 1, v3 wants {P1, P4}
        // at distance 1. P4 has popularity 2 — sent next; both reach
        // distance 0 and the table empties after only 2 transmissions
        // (the union rule would have sent all 4 requested packets).
        assert_eq!(p.next(), Some((0, 3)));
        assert_eq!(p.next(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn identical_all_ones_requests_cost_exactly_k_prime() {
        // z neighbors that lost everything need only k' transmissions in
        // total — the headline saving over the union rule's n.
        let (k, n, z) = (8usize, 12usize, 5u32);
        let mut p = GreedyRoundRobinPolicy::new();
        for v in 0..z {
            p.on_snack(
                NodeId(v),
                3,
                &bits(n, &(0..n).collect::<Vec<_>>()),
                k as u16,
            );
        }
        let sent: Vec<(u16, u16)> = std::iter::from_fn(|| p.next()).collect();
        assert_eq!(sent.len(), k);
        assert!(sent.iter().all(|&(item, _)| item == 3));
        // All indices distinct.
        let mut idxs: Vec<u16> = sent.iter().map(|&(_, j)| j).collect();
        idxs.sort_unstable();
        idxs.dedup();
        assert_eq!(idxs.len(), k);
    }

    #[test]
    fn refresh_replaces_entry() {
        let mut p = GreedyRoundRobinPolicy::new();
        p.on_snack(NodeId(1), 0, &bits(4, &[0, 1, 2, 3]), 3);
        // The neighbor re-SNACKs with a smaller want set.
        p.on_snack(NodeId(1), 0, &bits(4, &[2]), 1);
        assert_eq!(p.next(), Some((0, 2)));
        assert_eq!(p.next(), None);
    }

    #[test]
    fn zero_requests_ignored() {
        let mut p = GreedyRoundRobinPolicy::new();
        p.on_snack(NodeId(1), 0, &bits(4, &[]), 0);
        p.on_snack(NodeId(2), 0, &bits(4, &[1]), 0);
        assert!(p.is_empty());
        assert_eq!(p.next(), None);
    }

    #[test]
    fn lowest_item_served_first() {
        let mut p = GreedyRoundRobinPolicy::new();
        p.on_snack(NodeId(1), 7, &bits(4, &[0]), 1);
        p.on_snack(NodeId(2), 2, &bits(4, &[3]), 1);
        assert_eq!(p.min_pending_item(), Some(2));
        assert_eq!(p.next(), Some((2, 3)));
        assert_eq!(p.next(), Some((7, 0)));
    }

    #[test]
    fn round_robin_tie_break_moves_right() {
        let mut p = GreedyRoundRobinPolicy::new();
        // Two neighbors with disjoint singletons plus a shared packet.
        p.on_snack(NodeId(1), 0, &bits(6, &[0, 2, 4]), 3);
        p.on_snack(NodeId(2), 0, &bits(6, &[0, 3, 5]), 3);
        // Popularity: P0 = 2 (max) → send 0.
        assert_eq!(p.next(), Some((0, 0)));
        // Ties at 1 everywhere; first to the right of 0 is 2.
        assert_eq!(p.next(), Some((0, 2)));
        // Next to the right of 2 is 3.
        assert_eq!(p.next(), Some((0, 3)));
    }

    #[test]
    fn clear_drops_everything() {
        let mut p = GreedyRoundRobinPolicy::new();
        p.on_snack(NodeId(1), 0, &bits(4, &[0, 1]), 2);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.next(), None);
    }

    /// The scheduler always satisfies every neighbor (drives every
    /// distance to zero) and never transmits more than the union rule
    /// would.
    #[test]
    fn satisfies_all_with_at_most_union_cost() {
        let mut rng = lrs_rng::DetRng::seed_from_u64(0x7363_6865);
        for _ in 0..128 {
            let n = rng.gen_range(4usize..16);
            let spare = rng.gen_range(1usize..4);
            let z = rng.gen_range(1usize..6);
            let k = n - spare.min(n - 1);
            let mut p = GreedyRoundRobinPolicy::new();
            let mut union = BitVec::zeros(n);
            let mut needs: Vec<(usize, usize)> = Vec::new(); // (q, d)
            for v in 0..z {
                // Random non-empty want set with q >= n - k + 1 so that
                // d = q + k - n >= 1 (a neighbor that can already decode
                // would not SNACK).
                let min_q = n - k + 1;
                let q = rng.gen_range(min_q..=n);
                let mut idxs: Vec<usize> = (0..n).collect();
                rng.shuffle(&mut idxs);
                let want = &idxs[..q];
                let b = bits(n, want);
                union.union_with(&b);
                let d = q + k - n;
                needs.push((q, d));
                p.on_snack(NodeId(v as u32), 0, &b, d as u16);
            }
            let sent: Vec<u16> = std::iter::from_fn(|| p.next()).map(|(_, j)| j).collect();
            // Never more than the union rule.
            assert!(
                sent.len() <= union.count_ones(),
                "greedy sent {} > union {}",
                sent.len(),
                union.count_ones()
            );
            // Table fully drained = every neighbor reached distance 0
            // (or ran out of useful bits, impossible since d <= q).
            assert!(p.is_empty());
            // Lower bound: at least max distance transmissions needed.
            let max_d = needs.iter().map(|&(_, d)| d).max().unwrap();
            assert!(sent.len() >= max_d);
        }
    }
}

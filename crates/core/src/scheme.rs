//! The LR-Seluge per-node [`Scheme`] implementation (paper §IV-D/E).
//!
//! Reception: any `k'` authenticated encoded packets decode a page; the
//! decoded input simultaneously yields the plaintext *and* the hash
//! images that authenticate the next page's packets. Serving: a node
//! that decoded a page re-applies the same erasure code `f` — producing
//! byte-identical packets, whose hash images the requester already
//! holds — exactly as §IV-D-3 describes for nodes in the TX state.

use crate::code::PageCode;
use crate::packet_hash;
use crate::params::{LrSelugeParams, ParamError};
use crate::preprocess::LrArtifacts;
use lrs_crypto::hash::{Digest, HashImage, HASH_IMAGE_LEN};
use lrs_crypto::merkle::{MerkleProof, MerkleTree};
use lrs_crypto::puzzle::Puzzle;
use lrs_crypto::schnorr::{PublicKey, Signature};
use lrs_deluge::engine::{CryptoCost, PacketDisposition, Scheme};
use lrs_deluge::wire::BitVec;
use lrs_erasure::{CodeError, ErasureCode};
use lrs_netsim::digest::DigestCache;
use lrs_netsim::node::PacketKind;
use lrs_netsim::violation::{BufferKind, ContentDigest, InvariantViolation};
use std::collections::HashMap;

/// The shared per-run packet-digest memo used by LR-Seluge schemes.
pub type PacketDigestCache = DigestCache<HashImage>;

/// Per-node LR-Seluge state (base station or receiver).
#[derive(Clone, Debug)]
pub struct LrScheme {
    params: LrSelugeParams,
    pubkey: PublicKey,
    puzzle: Puzzle,
    code: PageCode,
    code0: PageCode,
    complete: u16,
    signature_body: Option<Vec<u8>>,
    root: Option<Digest>,
    /// Received hash-page packets (block ‖ path), by index.
    hp_received: Vec<Option<Vec<u8>>>,
    hp_count: usize,
    /// Decoded `M0` source blocks, once available.
    hp_blocks: Option<Vec<Vec<u8>>>,
    /// Regenerated hash-page packets for serving (lazy).
    hp_cache: Option<Vec<Vec<u8>>>,
    /// Received encoded packets of the page being collected.
    cur_received: Vec<Option<Vec<u8>>>,
    cur_count: usize,
    /// Expected hash images for the current page's `n` packets.
    expected: Vec<HashImage>,
    /// Decoded inputs (plaintext ‖ hash region) of completed pages.
    page_inputs: Vec<Vec<u8>>,
    /// Re-encoded packets per completed page, built on first serve.
    encoded_cache: HashMap<u16, Vec<Vec<u8>>>,
    /// Scratch buffer for decoded pages, reused across decodes.
    decode_scratch: Vec<u8>,
    /// Optional run-wide packet-digest memo (see [`PacketDigestCache`]).
    digest_cache: Option<PacketDigestCache>,
    cost: CryptoCost,
}

impl LrScheme {
    /// A receiver that has nothing yet.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (see
    /// [`LrSelugeParams::validate`]); use
    /// [`try_receiver`](Self::try_receiver) to get a typed error
    /// instead.
    pub fn receiver(params: LrSelugeParams, pubkey: PublicKey, puzzle: Puzzle) -> Self {
        match Self::try_receiver(params, pubkey, puzzle) {
            Ok(scheme) => scheme,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`receiver`](Self::receiver): rejects inconsistent
    /// parameters with a [`ParamError`] instead of panicking.
    pub fn try_receiver(
        params: LrSelugeParams,
        pubkey: PublicKey,
        puzzle: Puzzle,
    ) -> Result<Self, ParamError> {
        params.validate().map_err(ParamError)?;
        Ok(LrScheme {
            params,
            pubkey,
            puzzle,
            code: PageCode::new(params.code_kind, params.k as usize, params.n as usize)
                .expect("validated"),
            code0: PageCode::new(params.code_kind, params.k0 as usize, params.n0 as usize)
                .expect("validated"),
            complete: 0,
            signature_body: None,
            root: None,
            hp_received: vec![None; params.n0 as usize],
            hp_count: 0,
            hp_blocks: None,
            hp_cache: None,
            cur_received: vec![None; params.n as usize],
            cur_count: 0,
            expected: Vec::new(),
            page_inputs: Vec::new(),
            encoded_cache: HashMap::new(),
            decode_scratch: Vec::new(),
            digest_cache: None,
            cost: CryptoCost::default(),
        })
    }

    /// Attaches a run-wide digest memo shared by all nodes of a sim run.
    /// Purely an observer-level optimization: dispositions, decoded
    /// bytes, and the `hashes` cost counter are unchanged; cache hits
    /// are tallied in `CryptoCost::memoized_hashes`.
    pub fn with_digest_cache(mut self, cache: PacketDigestCache) -> Self {
        self.digest_cache = Some(cache);
        self
    }

    /// The base station: everything precomputed and complete.
    pub fn base(artifacts: &LrArtifacts, pubkey: PublicKey, puzzle: Puzzle) -> Self {
        let params = artifacts.params();
        let mut scheme = Self::receiver(params, pubkey, puzzle);
        scheme.complete = params.num_items();
        scheme.signature_body = Some(artifacts.signature_body().to_vec());
        scheme.root = Some(artifacts.root());
        scheme.hp_cache = Some(
            (0..params.n0)
                .map(|j| artifacts.hash_page_packet(j).to_vec())
                .collect(),
        );
        scheme.page_inputs = (0..params.pages())
            .map(|i| artifacts.page_input(i).to_vec())
            .collect();
        for i in 0..params.pages() {
            scheme.encoded_cache.insert(
                i,
                (0..params.n)
                    .map(|j| artifacts.page_packet(i, j).to_vec())
                    .collect(),
            );
        }
        scheme
    }

    /// The reassembled, verified image once dissemination completed.
    pub fn image(&self) -> Option<Vec<u8>> {
        if self.complete != self.params.num_items() {
            return None;
        }
        let mut out = Vec::with_capacity(self.params.image_len);
        for input in &self.page_inputs {
            out.extend_from_slice(&input[..self.params.page_capacity()]);
        }
        out.truncate(self.params.image_len);
        Some(out)
    }

    /// Layout parameters.
    pub fn params(&self) -> LrSelugeParams {
        self.params
    }

    fn handle_signature(&mut self, payload: &[u8]) -> PacketDisposition {
        if self.signature_body.is_some() {
            return PacketDisposition::Duplicate;
        }
        let Some((root, sig_bytes, sol)) = LrArtifacts::parse_signature_body(payload) else {
            return PacketDisposition::Rejected;
        };
        let signed = LrArtifacts::signed_message(&self.params, &root);
        self.cost.hashes += 1;
        self.cost.puzzle_checks += 1;
        self.cost.hashes += self.params.version as u64 + 1;
        let mut puzzle_msg = signed.0.to_vec();
        puzzle_msg.extend_from_slice(&sig_bytes);
        if !self
            .puzzle
            .verify(self.params.version as u32, &puzzle_msg, &sol)
        {
            return PacketDisposition::Rejected;
        }
        self.cost.signature_verifications += 1;
        let Some(sig) = Signature::from_bytes(&sig_bytes) else {
            return PacketDisposition::Rejected;
        };
        if !self.pubkey.verify(&signed.0, &sig) {
            return PacketDisposition::Rejected;
        }
        self.signature_body = Some(payload.to_vec());
        self.root = Some(root);
        self.complete = 1;
        PacketDisposition::Accepted
    }

    fn handle_hash_page(&mut self, index: u16, payload: &[u8]) -> PacketDisposition {
        if index >= self.params.n0 || payload.len() != self.params.hash_page_payload_len() {
            return PacketDisposition::Rejected;
        }
        if self.hp_received[index as usize].is_some() {
            return PacketDisposition::Duplicate;
        }
        let block_len = self.params.hash_block_len();
        let block = &payload[..block_len];
        let siblings: Vec<Digest> = payload[block_len..]
            .chunks(32)
            .map(|c| {
                let mut d = [0u8; 32];
                d.copy_from_slice(c);
                Digest(d)
            })
            .collect();
        let proof = MerkleProof::from_parts(index as usize, siblings);
        self.cost.hashes += self.params.merkle_depth() as u64 + 1;
        let root = self.root.expect("item 1 only requested after item 0");
        if !proof.verify(block, &root) {
            return PacketDisposition::Rejected;
        }
        self.hp_received[index as usize] = Some(payload.to_vec());
        self.hp_count += 1;
        if self.hp_count >= self.params.k0_prime() as usize {
            let decoded = {
                let subset: Vec<(usize, &[u8])> = self
                    .hp_received
                    .iter()
                    .enumerate()
                    .filter_map(|(j, s)| s.as_ref().map(|p| (j, &p[..block_len])))
                    .collect();
                self.cost.decodes += 1;
                self.code0
                    .decode_into(&subset, block_len, &mut self.decode_scratch)
            };
            match decoded {
                Ok(()) => {
                    let m0 = &self.decode_scratch;
                    self.expected = (0..self.params.n as usize)
                        .map(|j| {
                            HashImage::from_slice(&m0[j * HASH_IMAGE_LEN..(j + 1) * HASH_IMAGE_LEN])
                                .expect("block sizing")
                        })
                        .collect();
                    self.hp_blocks = Some(m0.chunks_exact(block_len).map(|c| c.to_vec()).collect());
                    self.complete = 2;
                }
                Err(CodeError::NotEnoughBlocks { .. }) => {
                    // Rank-deficient draw of a non-MDS code: keep
                    // collecting; the SNACK loop requests more packets.
                }
                Err(e) => panic!("hash-page decode failed unexpectedly: {e}"),
            }
        }
        PacketDisposition::Accepted
    }

    fn handle_page_packet(&mut self, item: u16, index: u16, payload: &[u8]) -> PacketDisposition {
        if index >= self.params.n
            || payload.len() != self.params.payload_len
            || self.expected.len() != self.params.n as usize
        {
            return PacketDisposition::Rejected;
        }
        if self.cur_received[index as usize].is_some() {
            return PacketDisposition::Duplicate;
        }
        self.cost.hashes += 1;
        let h = match &self.digest_cache {
            Some(cache) => match cache.lookup(self.params.version, item, index, payload) {
                Some(h) => {
                    self.cost.memoized_hashes += 1;
                    h
                }
                None => {
                    let h = packet_hash(self.params.version, item, index, payload);
                    cache.insert(self.params.version, item, index, payload, h);
                    h
                }
            },
            None => packet_hash(self.params.version, item, index, payload),
        };
        if h != self.expected[index as usize] {
            return PacketDisposition::Rejected;
        }
        self.cur_received[index as usize] = Some(payload.to_vec());
        self.cur_count += 1;
        if self.cur_count >= self.params.k_prime() as usize {
            let decoded = {
                let subset: Vec<(usize, &[u8])> = self
                    .cur_received
                    .iter()
                    .enumerate()
                    .filter_map(|(j, s)| s.as_deref().map(|p| (j, p)))
                    .collect();
                self.cost.decodes += 1;
                self.code
                    .decode_into(&subset, self.params.payload_len, &mut self.decode_scratch)
            };
            match decoded {
                Ok(()) => {
                    for slot in self.cur_received.iter_mut() {
                        *slot = None;
                    }
                    self.cur_count = 0;
                    let input = std::mem::take(&mut self.decode_scratch);
                    // The hash region authenticates the next page.
                    self.expected = input[self.params.page_capacity()..]
                        .chunks(HASH_IMAGE_LEN)
                        .map(|c| HashImage::from_slice(c).expect("region sizing"))
                        .collect();
                    self.page_inputs.push(input);
                    self.complete += 1;
                }
                Err(CodeError::NotEnoughBlocks { .. }) => {
                    // Rank-deficient draw of a non-MDS code: keep
                    // collecting; the SNACK loop requests more packets.
                }
                Err(e) => panic!("page decode failed unexpectedly: {e}"),
            }
        }
        PacketDisposition::Accepted
    }

    /// Regenerates the hash-page packets by re-encoding `M0` and
    /// rebuilding the Merkle tree (all leaves are available, so every
    /// authentication path can be reconstructed).
    fn ensure_hp_cache(&mut self) -> Option<&Vec<Vec<u8>>> {
        if self.hp_cache.is_none() {
            let blocks = self.hp_blocks.as_ref()?;
            self.cost.encodes += 1;
            let encoded = self.code0.encode(blocks).expect("consistent shapes");
            let tree = MerkleTree::build(encoded.iter().map(|b| b.as_slice()));
            self.cost.hashes += 2 * self.params.n0 as u64;
            let packets: Vec<Vec<u8>> = encoded
                .iter()
                .enumerate()
                .map(|(j, block)| {
                    let mut payload = block.clone();
                    for sib in tree.proof(j).siblings() {
                        payload.extend_from_slice(&sib.0);
                    }
                    payload
                })
                .collect();
            self.hp_cache = Some(packets);
        }
        self.hp_cache.as_ref()
    }

    /// Checks the protocol invariants the chaos layer enforces after
    /// every delivery (see DESIGN.md §7):
    ///
    /// 1. every buffered packet is byte-identical to the authentic one
    ///    (nothing unauthenticated sits in a buffer),
    /// 2. buffer occupancy never exceeds the paper's `n` (resp. `n0`)
    ///    packet bound and the counters match the slots,
    /// 3. every completed page's decoded input matches preprocessing,
    /// 4. a complete node's reassembled image is byte-identical to the
    ///    origin image.
    pub fn verify_invariants(
        &self,
        artifacts: &LrArtifacts,
        image: &[u8],
    ) -> Result<(), InvariantViolation> {
        let n_items = self.params.num_items();
        if self.complete > n_items {
            return Err(InvariantViolation::CompletionOverflow {
                complete: u64::from(self.complete),
                total: u64::from(n_items),
            });
        }
        let hp_held = self.hp_received.iter().flatten().count();
        if self.hp_received.len() != self.params.n0 as usize || hp_held != self.hp_count {
            return Err(InvariantViolation::BufferBound {
                buffer: BufferKind::HashPage,
                slots: self.hp_received.len() as u64,
                held: hp_held as u64,
                count: self.hp_count as u64,
            });
        }
        for (j, slot) in self.hp_received.iter().enumerate() {
            if let Some(p) = slot {
                let authentic = artifacts.hash_page_packet(j as u16);
                if p.as_slice() != authentic {
                    return Err(InvariantViolation::UnauthenticPacket {
                        buffer: BufferKind::HashPage,
                        page: None,
                        index: j as u32,
                        expected: ContentDigest::of(authentic),
                        actual: ContentDigest::of(p),
                    });
                }
            }
        }
        let cur_held = self.cur_received.iter().flatten().count();
        if self.cur_received.len() != self.params.n as usize || cur_held != self.cur_count {
            return Err(InvariantViolation::BufferBound {
                buffer: BufferKind::Page,
                slots: self.cur_received.len() as u64,
                held: cur_held as u64,
                count: self.cur_count as u64,
            });
        }
        if self.cur_count > 0 {
            if self.complete < 2 || self.complete >= n_items {
                return Err(InvariantViolation::UnexpectedBufferOccupancy {
                    complete: u64::from(self.complete),
                });
            }
            let page = self.complete - 2;
            for (j, slot) in self.cur_received.iter().enumerate() {
                if let Some(p) = slot {
                    let authentic = artifacts.page_packet(page, j as u16);
                    if p.as_slice() != authentic {
                        return Err(InvariantViolation::UnauthenticPacket {
                            buffer: BufferKind::Page,
                            page: Some(u32::from(page)),
                            index: j as u32,
                            expected: ContentDigest::of(authentic),
                            actual: ContentDigest::of(p),
                        });
                    }
                }
            }
        }
        if self.complete >= 1 && self.signature_body.as_deref() != Some(artifacts.signature_body())
        {
            return Err(InvariantViolation::SignatureMismatch {
                expected: ContentDigest::of(artifacts.signature_body()),
                actual: self
                    .signature_body
                    .as_deref()
                    .map_or(ContentDigest::MISSING, ContentDigest::of),
            });
        }
        let pages_done = (self.complete as usize).saturating_sub(2);
        if self.page_inputs.len() < pages_done {
            return Err(InvariantViolation::PagesMissing {
                complete: u64::from(self.complete),
                held: self.page_inputs.len() as u64,
            });
        }
        for (i, input) in self.page_inputs.iter().take(pages_done).enumerate() {
            let authentic = artifacts.page_input(i as u16);
            if input.as_slice() != authentic {
                return Err(InvariantViolation::PageMismatch {
                    page: i as u32,
                    packet: None,
                    expected: ContentDigest::of(authentic),
                    actual: ContentDigest::of(input),
                });
            }
        }
        if self.complete == n_items {
            match self.image() {
                Some(img) if img == image => {}
                other => {
                    return Err(InvariantViolation::ImageMismatch {
                        expected: ContentDigest::of(image),
                        actual: other
                            .as_deref()
                            .map_or(ContentDigest::MISSING, ContentDigest::of),
                    })
                }
            }
        }
        Ok(())
    }

    /// Re-encodes a completed page on first serve (§IV-D-3).
    fn ensure_page_cache(&mut self, page: u16) -> Option<&Vec<Vec<u8>>> {
        if !self.encoded_cache.contains_key(&page) {
            let input = self.page_inputs.get(page as usize)?;
            let blocks: Vec<Vec<u8>> = input
                .chunks(self.params.payload_len)
                .map(|c| c.to_vec())
                .collect();
            self.cost.encodes += 1;
            let encoded = self.code.encode(&blocks).expect("consistent shapes");
            self.encoded_cache.insert(page, encoded);
        }
        self.encoded_cache.get(&page)
    }
}

impl Scheme for LrScheme {
    fn version(&self) -> u16 {
        self.params.version
    }

    fn num_items(&self) -> u16 {
        self.params.num_items()
    }

    fn item_packets(&self, item: u16) -> u16 {
        match item {
            0 => 1,
            1 => self.params.n0,
            _ => self.params.n,
        }
    }

    fn packets_needed(&self, item: u16) -> u16 {
        match item {
            0 => 1,
            1 => self.params.k0_prime(),
            _ => self.params.k_prime(),
        }
    }

    fn complete_items(&self) -> u16 {
        self.complete
    }

    fn handle_packet(&mut self, item: u16, index: u16, payload: &[u8]) -> PacketDisposition {
        debug_assert_eq!(item, self.complete, "engine only feeds the next item");
        match item {
            0 => {
                if index != 0 {
                    return PacketDisposition::Rejected;
                }
                self.handle_signature(payload)
            }
            1 => self.handle_hash_page(index, payload),
            _ => self.handle_page_packet(item, index, payload),
        }
    }

    fn wanted(&self, item: u16) -> BitVec {
        match item {
            0 => BitVec::ones(1),
            1 => {
                let mut bits = BitVec::zeros(self.params.n0 as usize);
                for (i, slot) in self.hp_received.iter().enumerate() {
                    if slot.is_none() {
                        bits.set(i, true);
                    }
                }
                bits
            }
            _ => {
                let mut bits = BitVec::zeros(self.params.n as usize);
                for (i, slot) in self.cur_received.iter().enumerate() {
                    if slot.is_none() {
                        bits.set(i, true);
                    }
                }
                bits
            }
        }
    }

    fn packet_payload(&mut self, item: u16, index: u16) -> Option<Vec<u8>> {
        if item >= self.complete {
            return None;
        }
        match item {
            0 => self.signature_body.clone(),
            1 => self
                .ensure_hp_cache()
                .and_then(|c| c.get(index as usize))
                .cloned(),
            _ => self
                .ensure_page_cache(item - 2)
                .and_then(|c| c.get(index as usize))
                .cloned(),
        }
    }

    fn item_kind(&self, item: u16) -> PacketKind {
        match item {
            0 => PacketKind::Signature,
            1 => PacketKind::HashPage,
            _ => PacketKind::Data,
        }
    }

    fn cost(&self) -> CryptoCost {
        self.cost
    }

    fn reboot(&mut self) {
        // Flash (survives): the verified signature body, the decoded
        // `M0` blocks, and every completed page's decoded input — real
        // motes write each verified page to external flash before
        // advancing (Seluge §V). RAM (lost): partially received packets
        // of the in-progress item and all serving caches.
        let has_m0 = self.hp_blocks.is_some() || self.hp_cache.is_some();
        for slot in &mut self.hp_received {
            *slot = None;
        }
        self.hp_count = 0;
        for slot in &mut self.cur_received {
            *slot = None;
        }
        self.cur_count = 0;
        self.decode_scratch = Vec::new();
        self.encoded_cache.clear();
        if self.hp_blocks.is_some() {
            // Regenerable from the flash-resident blocks; the base
            // station's precomputed cache (no blocks) must be kept.
            self.hp_cache = None;
        }
        self.complete = if self.signature_body.is_none() {
            0
        } else if !has_m0 {
            1
        } else {
            2 + self.page_inputs.len() as u16
        };
        // Rebuild the hash images authenticating the next page.
        self.expected = match self.page_inputs.last() {
            Some(input) => input[self.params.page_capacity()..]
                .chunks(HASH_IMAGE_LEN)
                .map(|c| HashImage::from_slice(c).expect("region sizing"))
                .collect(),
            None => match &self.hp_blocks {
                Some(blocks) => {
                    let m0: Vec<u8> = blocks.concat();
                    (0..self.params.n as usize)
                        .map(|j| {
                            HashImage::from_slice(&m0[j * HASH_IMAGE_LEN..(j + 1) * HASH_IMAGE_LEN])
                                .expect("block sizing")
                        })
                        .collect()
                }
                None => Vec::new(),
            },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrs_crypto::puzzle::PuzzleKeyChain;
    use lrs_crypto::schnorr::Keypair;

    fn setup() -> (LrScheme, LrScheme, Vec<u8>) {
        let params = LrSelugeParams {
            version: 1,
            image_len: 700,
            k: 4,
            n: 6,
            payload_len: 48,
            k0: 2,
            n0: 4,
            puzzle_strength: 4,
            ..LrSelugeParams::default()
        };
        let image: Vec<u8> = (0..params.image_len as u32)
            .map(|i| (i % 241) as u8)
            .collect();
        let kp = Keypair::from_seed(b"bs");
        let chain = PuzzleKeyChain::generate(b"puzzles", 4);
        let art = LrArtifacts::build(&image, params, &kp, &chain);
        let puzzle = Puzzle::new(chain.anchor(), params.puzzle_strength);
        let base = LrScheme::base(&art, kp.public(), puzzle);
        let rx = LrScheme::receiver(params, kp.public(), puzzle);
        (base, rx, image)
    }

    /// Transfers item by item, choosing which packet indices to deliver.
    fn transfer_with<F>(base: &mut LrScheme, rx: &mut LrScheme, mut pick: F)
    where
        F: FnMut(u16, &[usize]) -> Vec<usize>,
    {
        while rx.complete_items() < rx.num_items() {
            let item = rx.complete_items();
            let wanted: Vec<usize> = rx.wanted(item).iter_ones().collect();
            let before = rx.complete_items();
            for idx in pick(item, &wanted) {
                let payload = base.packet_payload(item, idx as u16).expect("base serves");
                let disp = rx.handle_packet(item, idx as u16, &payload);
                assert_ne!(disp, PacketDisposition::Rejected, "item {item} idx {idx}");
                if rx.complete_items() > before {
                    break;
                }
            }
            assert!(rx.complete_items() > before, "no progress on item {item}");
        }
    }

    #[test]
    fn full_transfer_using_first_packets() {
        let (mut base, mut rx, image) = setup();
        transfer_with(&mut base, &mut rx, |_, wanted| wanted.to_vec());
        assert_eq!(rx.image().unwrap(), image);
        assert_eq!(rx.cost().signature_verifications, 1);
        assert!(rx.cost().decodes >= rx.num_items() as u64 - 2);
    }

    #[test]
    fn full_transfer_using_parity_packets_only() {
        // Deliver packets from the *end* (all-parity subsets): the
        // loss-resilience property — any k' of n suffice.
        let (mut base, mut rx, image) = setup();
        transfer_with(&mut base, &mut rx, |_, wanted| {
            let mut w = wanted.to_vec();
            w.reverse();
            w
        });
        assert_eq!(rx.image().unwrap(), image);
    }

    #[test]
    fn relay_serves_identical_packets() {
        // A node that decoded pages re-encodes them; its packets must be
        // byte-identical to the base station's (their hashes were fixed
        // at preprocessing).
        let (mut base, mut rx, _) = setup();
        transfer_with(&mut base, &mut rx, |_, wanted| wanted.to_vec());
        for item in 0..rx.num_items() {
            for idx in 0..rx.item_packets(item) {
                assert_eq!(
                    rx.packet_payload(item, idx),
                    base.packet_payload(item, idx),
                    "item {item} idx {idx}"
                );
            }
        }
        assert!(rx.cost().encodes > 0, "relay must have re-encoded");
    }

    #[test]
    fn second_hop_can_decode_from_relay() {
        let (mut base, mut relay, image) = setup();
        transfer_with(&mut base, &mut relay, |_, wanted| wanted.to_vec());
        let (_, mut rx2, _) = setup();
        // Serve the second hop exclusively from the relay, parity-first.
        transfer_with(&mut relay, &mut rx2, |_, wanted| {
            let mut w = wanted.to_vec();
            w.reverse();
            w
        });
        assert_eq!(rx2.image().unwrap(), image);
    }

    #[test]
    fn tampered_packets_rejected() {
        let (mut base, mut rx, _) = setup();
        // Signature.
        let mut sig = base.packet_payload(0, 0).unwrap();
        sig[40] ^= 1;
        assert_eq!(rx.handle_packet(0, 0, &sig), PacketDisposition::Rejected);
        assert_eq!(rx.cost().signature_verifications, 0, "puzzle filtered");
        let good = base.packet_payload(0, 0).unwrap();
        assert_eq!(rx.handle_packet(0, 0, &good), PacketDisposition::Accepted);
        // Hash page.
        let mut hp = base.packet_payload(1, 1).unwrap();
        hp[0] ^= 1;
        assert_eq!(rx.handle_packet(1, 1, &hp), PacketDisposition::Rejected);
        // Complete item 1 honestly.
        for idx in [0usize, 1] {
            let p = base.packet_payload(1, idx as u16).unwrap();
            assert_eq!(
                rx.handle_packet(1, idx as u16, &p),
                PacketDisposition::Accepted
            );
        }
        assert_eq!(rx.complete_items(), 2);
        // Page packet: bit flip.
        let mut pp = base.packet_payload(2, 3).unwrap();
        pp[5] ^= 1;
        assert_eq!(rx.handle_packet(2, 3, &pp), PacketDisposition::Rejected);
        // Page packet: right payload, wrong index.
        let p4 = base.packet_payload(2, 4).unwrap();
        assert_eq!(rx.handle_packet(2, 3, &p4), PacketDisposition::Rejected);
        // The genuine one passes.
        let p3 = base.packet_payload(2, 3).unwrap();
        assert_eq!(rx.handle_packet(2, 3, &p3), PacketDisposition::Accepted);
    }

    #[test]
    fn exactly_k_packets_complete_a_page() {
        let (mut base, mut rx, _) = setup();
        for item in 0..2u16 {
            for idx in rx.wanted(item).iter_ones().collect::<Vec<_>>() {
                let p = base.packet_payload(item, idx as u16).unwrap();
                rx.handle_packet(item, idx as u16, &p);
                if rx.complete_items() > item {
                    break;
                }
            }
        }
        assert_eq!(rx.complete_items(), 2);
        // Feed exactly k = 4 packets, indices {1, 2, 4, 5}.
        for (count, idx) in [1u16, 2, 4, 5].into_iter().enumerate() {
            let p = base.packet_payload(2, idx).unwrap();
            assert_eq!(rx.handle_packet(2, idx, &p), PacketDisposition::Accepted);
            let expect_complete = count == 3;
            assert_eq!(
                rx.complete_items() == 3,
                expect_complete,
                "after {} pkts",
                count + 1
            );
        }
    }

    #[test]
    fn duplicates_do_not_advance() {
        let (mut base, mut rx, _) = setup();
        let sig = base.packet_payload(0, 0).unwrap();
        assert_eq!(rx.handle_packet(0, 0, &sig), PacketDisposition::Accepted);
        let hp = base.packet_payload(1, 0).unwrap();
        assert_eq!(rx.handle_packet(1, 0, &hp), PacketDisposition::Accepted);
        assert_eq!(rx.handle_packet(1, 0, &hp), PacketDisposition::Duplicate);
        assert_eq!(rx.complete_items(), 1);
    }

    fn setup_with_artifacts() -> (LrScheme, LrScheme, Vec<u8>, LrArtifacts) {
        let params = LrSelugeParams {
            version: 1,
            image_len: 700,
            k: 4,
            n: 6,
            payload_len: 48,
            k0: 2,
            n0: 4,
            puzzle_strength: 4,
            ..LrSelugeParams::default()
        };
        let image: Vec<u8> = (0..params.image_len as u32)
            .map(|i| (i % 241) as u8)
            .collect();
        let kp = Keypair::from_seed(b"bs");
        let chain = PuzzleKeyChain::generate(b"puzzles", 4);
        let art = LrArtifacts::build(&image, params, &kp, &chain);
        let puzzle = Puzzle::new(chain.anchor(), params.puzzle_strength);
        let base = LrScheme::base(&art, kp.public(), puzzle);
        let rx = LrScheme::receiver(params, kp.public(), puzzle);
        (base, rx, image, art)
    }

    /// Advances `rx` until `level` items are complete.
    fn advance_to(base: &mut LrScheme, rx: &mut LrScheme, level: u16) {
        while rx.complete_items() < level {
            let item = rx.complete_items();
            for idx in rx.wanted(item).iter_ones().collect::<Vec<_>>() {
                let p = base.packet_payload(item, idx as u16).unwrap();
                rx.handle_packet(item, idx as u16, &p);
                if rx.complete_items() > item {
                    break;
                }
            }
        }
    }

    #[test]
    fn reboot_mid_page_keeps_flash_and_drops_ram() {
        let (mut base, mut rx, image, art) = setup_with_artifacts();
        advance_to(&mut base, &mut rx, 3); // signature + M0 + one page
                                           // Partially fill page 1.
        for idx in 0..2u16 {
            let p = base.packet_payload(3, idx).unwrap();
            rx.handle_packet(3, idx, &p);
        }
        assert_eq!(rx.wanted(3).count_ones() as u16, rx.params().n - 2);
        rx.reboot();
        assert_eq!(rx.complete_items(), 3, "flash items survive the reboot");
        assert_eq!(
            rx.wanted(3).count_ones() as u16,
            rx.params().n,
            "partially received page is RAM and is lost"
        );
        rx.verify_invariants(&art, &image).unwrap();
        // The transfer still finishes, and the node can serve afterwards.
        let total = rx.num_items();
        advance_to(&mut base, &mut rx, total);
        assert_eq!(rx.image().unwrap(), image);
        rx.verify_invariants(&art, &image).unwrap();
        for item in 0..rx.num_items() {
            for idx in 0..rx.item_packets(item) {
                assert_eq!(rx.packet_payload(item, idx), base.packet_payload(item, idx));
            }
        }
    }

    #[test]
    fn reboot_during_m0_keeps_the_signature_only() {
        let (mut base, mut rx, image, art) = setup_with_artifacts();
        advance_to(&mut base, &mut rx, 1);
        // One hash-page packet of the k0' needed.
        let p = base.packet_payload(1, 0).unwrap();
        rx.handle_packet(1, 0, &p);
        rx.reboot();
        assert_eq!(rx.complete_items(), 1, "verified signature is flash");
        assert_eq!(rx.wanted(1).count_ones() as u16, rx.params().n0);
        rx.verify_invariants(&art, &image).unwrap();
        let total = rx.num_items();
        advance_to(&mut base, &mut rx, total);
        assert_eq!(rx.image().unwrap(), image);
    }

    #[test]
    fn reboot_of_a_base_station_keeps_it_serving() {
        let (mut base, _, image, art) = setup_with_artifacts();
        base.reboot();
        assert_eq!(base.complete_items(), base.num_items());
        base.verify_invariants(&art, &image).unwrap();
        assert!(base.packet_payload(0, 0).is_some());
        assert!(base.packet_payload(1, 0).is_some());
        assert!(base.packet_payload(2, 0).is_some());
    }

    #[test]
    fn invariants_catch_a_corrupted_buffer() {
        let (mut base, mut rx, image, art) = setup_with_artifacts();
        advance_to(&mut base, &mut rx, 2);
        let p = base.packet_payload(2, 0).unwrap();
        rx.handle_packet(2, 0, &p);
        rx.verify_invariants(&art, &image).unwrap();
        // Corrupt the buffered packet behind the scheme's back.
        rx.cur_received[0].as_mut().unwrap()[3] ^= 1;
        assert!(rx.verify_invariants(&art, &image).is_err());
    }

    #[test]
    fn invariants_catch_a_wrong_image() {
        let (base, _, image, art) = setup_with_artifacts();
        let mut wrong = image.clone();
        wrong[0] ^= 1;
        base.verify_invariants(&art, &image).unwrap();
        assert!(base.verify_invariants(&art, &wrong).is_err());
    }

    #[test]
    fn wanted_shrinks_as_packets_arrive() {
        let (mut base, mut rx, _) = setup();
        for item in 0..2u16 {
            for idx in rx.wanted(item).iter_ones().collect::<Vec<_>>() {
                let p = base.packet_payload(item, idx as u16).unwrap();
                rx.handle_packet(item, idx as u16, &p);
                if rx.complete_items() > item {
                    break;
                }
            }
        }
        assert_eq!(rx.wanted(2).count_ones(), 6);
        let p = base.packet_payload(2, 2).unwrap();
        rx.handle_packet(2, 2, &p);
        let w = rx.wanted(2);
        assert_eq!(w.count_ones(), 5);
        assert!(!w.get(2));
    }
}

//! Multi-version operation: over-the-air *re*-programming.
//!
//! The point of code dissemination is replacing a running image (paper
//! §I: "removing program bugs and adding new functionalities"). A
//! deployed node therefore runs the [`VersionedNode`] wrapper: it
//! executes the current version's protocol node and, on hearing a
//! MAC-authenticated advertisement for a *newer* version, retires the
//! old state and starts collecting the new image from scratch (the new
//! version has its own signature packet, hash page, and chained hashes,
//! so no old state is reusable — and crucially, no *unauthenticated*
//! packet can trigger the switch, or an adversary could reset nodes at
//! will).

use crate::deployment::{Deployment, LrNode};
use lrs_deluge::engine::Scheme as _;
use lrs_deluge::wire::Message;
use lrs_netsim::node::{Context, NodeId, Protocol, TimerId};

/// A node that can be reprogrammed across image versions.
///
/// Deployments for future versions are registered up front in tests; in
/// a real system the parameters travel with the (signed) new image.
pub struct VersionedNode {
    id: NodeId,
    base_id: NodeId,
    current: LrNode,
    /// Deployments for versions this node may upgrade to.
    upgrades: Vec<Deployment>,
    /// Number of upgrades performed.
    pub upgrades_applied: u32,
}

impl VersionedNode {
    /// Creates the node running `initial`'s version.
    pub fn new(initial: &Deployment, id: NodeId, base_id: NodeId) -> Self {
        VersionedNode {
            id,
            base_id,
            current: initial.node(id, base_id),
            upgrades: Vec::new(),
            upgrades_applied: 0,
        }
    }

    /// Registers a future version this node will accept.
    pub fn with_upgrade(mut self, deployment: Deployment) -> Self {
        self.upgrades.push(deployment);
        self
    }

    /// The currently running version.
    pub fn version(&self) -> u16 {
        self.current.scheme().version()
    }

    /// The current protocol node.
    pub fn node(&self) -> &LrNode {
        &self.current
    }

    /// The current image, if this node completed its version.
    pub fn image(&self) -> Option<Vec<u8>> {
        self.current.scheme().image()
    }

    /// Checks whether `data` is an authenticated advertisement for a
    /// newer registered version; returns the matching deployment index.
    fn upgrade_for(&self, data: &[u8]) -> Option<usize> {
        let Some(Message::Adv { version, .. }) = Message::from_bytes(data) else {
            return None;
        };
        if version <= self.version() {
            return None;
        }
        let (idx, deployment) = self
            .upgrades
            .iter()
            .enumerate()
            .find(|(_, d)| d.params().version == version)?;
        // Only a MAC-valid advertisement may trigger the switch.
        let msg = Message::from_bytes(data).expect("parsed above");
        if !msg.mac_ok(deployment.cluster_key()) {
            return None;
        }
        Some(idx)
    }
}

impl Protocol for VersionedNode {
    fn on_init(&mut self, ctx: &mut Context<'_>) {
        self.current.on_init(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, from: NodeId, data: &[u8]) {
        if let Some(idx) = self.upgrade_for(data) {
            let deployment = self.upgrades.remove(idx);
            // Retire every old-version state and timer; the fresh node
            // re-initializes its Trickle machinery.
            self.current = deployment.node(self.id, self.base_id);
            self.upgrades_applied += 1;
            for t in 0..8u32 {
                ctx.cancel_timer(TimerId(t));
            }
            self.current.on_init(ctx);
        }
        self.current.on_packet(ctx, from, data);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
        self.current.on_timer(ctx, timer);
    }

    fn is_complete(&self) -> bool {
        // Complete only when no further registered upgrade is pending.
        self.upgrades.is_empty() && self.current.is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LrSelugeParams;
    use lrs_netsim::medium::MediumConfig;
    use lrs_netsim::sim::SimConfig;

    use lrs_netsim::time::Duration;
    use lrs_netsim::topology::Topology;
    use lrs_netsim::SimBuilder;

    fn params(version: u16) -> LrSelugeParams {
        LrSelugeParams {
            version,
            image_len: 1024,
            k: 8,
            n: 12,
            payload_len: 56,
            k0: 4,
            n0: 8,
            puzzle_strength: 4,
            ..LrSelugeParams::default()
        }
    }

    fn image(version: u16) -> Vec<u8> {
        (0..1024u32)
            .map(|i| (i as u16 ^ (version * 7)) as u8)
            .collect()
    }

    #[test]
    fn network_upgrades_from_v1_to_v2() {
        let d1 = Deployment::new(&image(1), params(1), b"upgrade demo");
        let d2 = Deployment::new(&image(2), params(2), b"upgrade demo");
        let base_id = NodeId(0);
        let mut sim = SimBuilder::new(Topology::star(5), 3, |id| {
            if id == base_id {
                // The base already runs v2: its first advertisement
                // triggers the network-wide upgrade.
                VersionedNode::new(&d2, id, base_id)
            } else {
                VersionedNode::new(&d1, id, base_id).with_upgrade(d2.clone())
            }
        })
        .config(SimConfig {
            medium: MediumConfig {
                app_loss: 0.1,
                ..MediumConfig::default()
            },
            ..SimConfig::default()
        })
        .build();
        let report = sim.run(Duration::from_secs(36_000));
        assert!(
            report.all_complete,
            "upgrade stalled at {:?}",
            report.final_time
        );
        for i in 1..5u32 {
            let node = sim.node(NodeId(i));
            assert_eq!(node.version(), 2, "node {i} stuck on old version");
            assert_eq!(node.upgrades_applied, 1, "node {i}");
            assert_eq!(node.image().expect("complete"), image(2), "node {i}");
        }
    }

    #[test]
    fn forged_upgrade_advertisement_is_ignored() {
        // An advertisement claiming v2 but MACed with the wrong key must
        // not reset a node.
        let d1 = Deployment::new(&image(1), params(1), b"honest keys");
        let d2 = Deployment::new(&image(2), params(2), b"honest keys");
        let node = VersionedNode::new(&d1, NodeId(1), NodeId(0)).with_upgrade(d2);
        let wrong_key = lrs_crypto::cluster::ClusterKey::derive(b"attacker", 0);
        let forged = Message::adv(&wrong_key, NodeId(9), 2, 5).to_bytes();
        assert_eq!(node.upgrade_for(&forged), None);
        // The honest advertisement does trigger it.
        let honest_d2 = Deployment::new(&image(2), params(2), b"honest keys");
        let genuine = Message::adv(honest_d2.cluster_key(), NodeId(0), 2, 5).to_bytes();
        assert!(node.upgrade_for(&genuine).is_some());
    }

    #[test]
    fn older_version_advertisements_never_downgrade() {
        let d1 = Deployment::new(&image(1), params(1), b"keys");
        let d2 = Deployment::new(&image(2), params(2), b"keys");
        let node = VersionedNode::new(&d2, NodeId(1), NodeId(0)).with_upgrade(d1.clone());
        let old_adv = Message::adv(d1.cluster_key(), NodeId(0), 1, 5).to_bytes();
        assert_eq!(node.upgrade_for(&old_adv), None, "no downgrade");
    }
}

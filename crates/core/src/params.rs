//! LR-Seluge layout parameters.

use crate::code::CodeKind;
use lrs_crypto::hash::HASH_IMAGE_LEN;
use lrs_erasure::sparse::DEFAULT_OVERHEAD;
use std::fmt;

/// A rejected deployment configuration: inconsistent
/// [`LrSelugeParams`] or an image that does not match them. Returned
/// by the fallible constructor paths ([`LrArtifacts::try_build`],
/// [`LrScheme::try_receiver`], [`Deployment::try_new`]) so callers
/// wiring user-supplied configuration get a typed error instead of a
/// panic.
///
/// [`LrArtifacts::try_build`]: crate::preprocess::LrArtifacts::try_build
/// [`LrScheme::try_receiver`]: crate::scheme::LrScheme::try_receiver
/// [`Deployment::try_new`]: crate::deployment::Deployment::try_new
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamError(pub String);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid LR-Seluge configuration: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Static parameters preloaded on every node (paper §IV-B: the same
/// instances of the erasure codes `f` and `f0`, the base station's public
/// key, and the hash function).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LrSelugeParams {
    /// Code image version.
    pub version: u16,
    /// Original image length in bytes.
    pub image_len: usize,
    /// Source blocks per page (`k`).
    pub k: u16,
    /// Encoded blocks per page (`n ≥ k`); the coding rate is `n/k`.
    pub n: u16,
    /// Encoded-block (data packet payload) length in bytes. The same
    /// on-air payload size as Seluge's `slice + hash` packets, so the
    /// byte-cost comparison is fair.
    pub payload_len: usize,
    /// Source blocks of the hash page (`k0`).
    pub k0: u16,
    /// Encoded blocks of the hash page (`n0 = 2^d`, the Merkle leaf
    /// count).
    pub n0: u16,
    /// Puzzle difficulty in leading zero bits.
    pub puzzle_strength: u32,
    /// Which fixed-rate erasure code instantiates `f` and `f0`.
    pub code_kind: CodeKind,
}

impl Default for LrSelugeParams {
    /// The paper's defaults: 20 KB image, `k = 32`, `n = 48` (rate 1.5),
    /// `k0 = 8`, `n0 = 16`, 72-byte packets (Seluge's 64-byte slice plus
    /// its 8-byte chained hash).
    fn default() -> Self {
        LrSelugeParams {
            version: 1,
            image_len: 20 * 1024,
            k: 32,
            n: 48,
            payload_len: 72,
            k0: 8,
            n0: 16,
            puzzle_strength: 12,
            code_kind: CodeKind::ReedSolomon,
        }
    }
}

impl LrSelugeParams {
    /// Image bytes carried per page: `k · payload − n · hash_len`. The
    /// chained hashes ride inside the coded payload, so raising the
    /// coding rate `n/k` shrinks the image capacity per page (the
    /// effect Fig. 6 measures: "higher erasure-coding rates lead to
    /// shorter packet space for code-image slices and thus more packets
    /// for the same code image").
    pub fn page_capacity(&self) -> usize {
        self.k as usize * self.payload_len - self.hash_region_len()
    }

    /// Bytes of chained hash images appended to each page's plaintext.
    pub fn hash_region_len(&self) -> usize {
        self.n as usize * HASH_IMAGE_LEN
    }

    /// Number of code pages `g`.
    pub fn pages(&self) -> u16 {
        (self.image_len.div_ceil(self.page_capacity())).max(1) as u16
    }

    /// Engine item count: signature + hash page + pages.
    pub fn num_items(&self) -> u16 {
        2 + self.pages()
    }

    /// Hash-page (`M0`) length: one hash image per page-1 encoded packet.
    pub fn hash_page_len(&self) -> usize {
        self.n as usize * HASH_IMAGE_LEN
    }

    /// Length of each hash-page source/encoded block.
    pub fn hash_block_len(&self) -> usize {
        self.hash_page_len().div_ceil(self.k0 as usize)
    }

    /// Merkle depth `d` over the `n0` encoded hash-page blocks.
    pub fn merkle_depth(&self) -> usize {
        assert!(self.n0.is_power_of_two(), "n0 must be a power of two");
        self.n0.trailing_zeros() as usize
    }

    /// Hash-page packet payload length (encoded block + Merkle path).
    pub fn hash_page_payload_len(&self) -> usize {
        self.hash_block_len() + 32 * self.merkle_depth()
    }

    /// Reception threshold `k'` of the page code: `k` for Reed-Solomon,
    /// `k + ε` for the XOR code (§II-C's general `k ≤ k' ≤ n`).
    pub fn k_prime(&self) -> u16 {
        match self.code_kind {
            CodeKind::ReedSolomon => self.k,
            CodeKind::SparseXor => (self.k + DEFAULT_OVERHEAD as u16).min(self.n),
            CodeKind::Lt => (((self.k as usize * 115).div_ceil(100) + 2) as u16).min(self.n),
        }
    }

    /// Reception threshold `k0'` of the hash-page code.
    pub fn k0_prime(&self) -> u16 {
        match self.code_kind {
            CodeKind::ReedSolomon => self.k0,
            CodeKind::SparseXor => (self.k0 + DEFAULT_OVERHEAD as u16).min(self.n0),
            CodeKind::Lt => (((self.k0 as usize * 115).div_ceil(100) + 2) as u16).min(self.n0),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 || self.n < self.k || self.n > 255 {
            return Err(format!(
                "need 1 <= k <= n <= 255, got k={} n={}",
                self.k, self.n
            ));
        }
        if self.k0 == 0 || self.n0 < self.k0 || self.n0 > 255 {
            return Err(format!(
                "need 1 <= k0 <= n0 <= 255, got k0={} n0={}",
                self.k0, self.n0
            ));
        }
        if !self.n0.is_power_of_two() {
            return Err(format!("n0 must be a power of two, got {}", self.n0));
        }
        if self.k as usize * self.payload_len <= self.hash_region_len() {
            return Err(format!(
                "page has no image capacity: k*payload = {} <= n*hash = {}",
                self.k as usize * self.payload_len,
                self.hash_region_len()
            ));
        }
        if self.image_len == 0 {
            return Err("empty image".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_consistent() {
        let p = LrSelugeParams::default();
        p.validate().unwrap();
        // k*B = 2304, hash region = 48*8 = 384 → capacity 1920.
        assert_eq!(p.page_capacity(), 1920);
        // 20480 / 1920 → 11 pages.
        assert_eq!(p.pages(), 11);
        assert_eq!(p.num_items(), 13);
        assert_eq!(p.hash_page_len(), 384);
        assert_eq!(p.hash_block_len(), 48);
        assert_eq!(p.merkle_depth(), 4);
        assert_eq!(p.hash_page_payload_len(), 48 + 128);
    }

    #[test]
    fn higher_rate_means_more_pages() {
        // Fig. 6's structural effect.
        let base = LrSelugeParams::default();
        let high_rate = LrSelugeParams { n: 64, ..base };
        assert!(high_rate.page_capacity() < base.page_capacity());
        assert!(high_rate.pages() >= base.pages());
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let p = LrSelugeParams::default();
        assert!(LrSelugeParams { k: 0, ..p }.validate().is_err());
        assert!(LrSelugeParams { n: 20, ..p }.validate().is_err());
        assert!(LrSelugeParams { n0: 12, ..p }.validate().is_err());
        assert!(LrSelugeParams { k0: 0, ..p }.validate().is_err());
        assert!(LrSelugeParams { image_len: 0, ..p }.validate().is_err());
        // Hash region swallows the whole page.
        assert!(LrSelugeParams {
            payload_len: 8,
            ..p
        }
        .validate()
        .is_err());
    }
}

//! Pluggable page-code selection.
//!
//! The paper's model is a general `k`-`n`-`k'` fixed-rate code
//! (§II-C): Reed-Solomon gives the optimal `k' = k` at the price of
//! GF(256) decoding; Tornado/LT-style XOR codes decode with XORs only
//! but need `k' > k` received packets. [`PageCode`] lets a deployment
//! choose either for the page code `f` and the hash-page code `f0`,
//! and is what makes the `k' > k` plumbing real rather than
//! theoretical.

use lrs_erasure::{CodeError, ErasureCode, Lt, ReedSolomon, SparseXor};

/// Which fixed-rate erasure code a deployment uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CodeKind {
    /// Systematic Reed-Solomon over GF(2⁸): MDS, `k' = k`.
    #[default]
    ReedSolomon,
    /// Systematic random-XOR code: XOR-only decoding, `k' = k + ε`
    /// (probabilistic; the protocol keeps collecting on a rank-deficient
    /// draw).
    SparseXor,
    /// Capped LT code: robust-soliton parity, O(edges) peeling decoding,
    /// `k' ≈ 1.15 k` (probabilistic).
    Lt,
}

/// A concrete page code instance.
#[derive(Clone, Debug)]
pub enum PageCode {
    /// Reed-Solomon instance.
    Rs(ReedSolomon),
    /// Sparse-XOR instance.
    Xor(SparseXor),
    /// Capped LT instance.
    Lt(Lt),
}

impl PageCode {
    /// Instantiates the chosen code.
    ///
    /// # Errors
    ///
    /// Propagates [`CodeError::BadParameters`] for invalid `(k, n)`.
    pub fn new(kind: CodeKind, k: usize, n: usize) -> Result<Self, CodeError> {
        Ok(match kind {
            CodeKind::ReedSolomon => PageCode::Rs(ReedSolomon::new(k, n)?),
            CodeKind::SparseXor => PageCode::Xor(SparseXor::new(k, n)?),
            CodeKind::Lt => PageCode::Lt(Lt::new(k, n)?),
        })
    }
}

impl ErasureCode for PageCode {
    fn k(&self) -> usize {
        match self {
            PageCode::Rs(c) => c.k(),
            PageCode::Xor(c) => c.k(),
            PageCode::Lt(c) => c.k(),
        }
    }

    fn n(&self) -> usize {
        match self {
            PageCode::Rs(c) => c.n(),
            PageCode::Xor(c) => c.n(),
            PageCode::Lt(c) => c.n(),
        }
    }

    fn k_prime(&self) -> usize {
        match self {
            PageCode::Rs(c) => c.k_prime(),
            PageCode::Xor(c) => c.k_prime(),
            PageCode::Lt(c) => c.k_prime(),
        }
    }

    fn encode(&self, blocks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        match self {
            PageCode::Rs(c) => c.encode(blocks),
            PageCode::Xor(c) => c.encode(blocks),
            PageCode::Lt(c) => c.encode(blocks),
        }
    }

    fn decode_refs(
        &self,
        blocks: &[(usize, &[u8])],
        block_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        match self {
            PageCode::Rs(c) => c.decode_refs(blocks, block_len),
            PageCode::Xor(c) => c.decode_refs(blocks, block_len),
            PageCode::Lt(c) => c.decode_refs(blocks, block_len),
        }
    }

    fn decode_into(
        &self,
        blocks: &[(usize, &[u8])],
        block_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        match self {
            PageCode::Rs(c) => c.decode_into(blocks, block_len, out),
            PageCode::Xor(c) => c.decode_into(blocks, block_len, out),
            PageCode::Lt(c) => c.decode_into(blocks, block_len, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_instantiate_and_roundtrip() {
        for kind in [CodeKind::ReedSolomon, CodeKind::SparseXor, CodeKind::Lt] {
            let code = PageCode::new(kind, 4, 10).unwrap();
            assert_eq!(code.k(), 4);
            assert_eq!(code.n(), 10);
            let blocks: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
            let enc = code.encode(&blocks).unwrap();
            // Systematic prefix both ways.
            assert_eq!(&enc[..4], &blocks[..]);
            let sys: Vec<(usize, Vec<u8>)> = (0..4).map(|i| (i, enc[i].clone())).collect();
            assert_eq!(code.decode(&sys, 8).unwrap(), blocks);
        }
    }

    #[test]
    fn k_prime_semantics_differ() {
        let rs = PageCode::new(CodeKind::ReedSolomon, 8, 16).unwrap();
        let xor = PageCode::new(CodeKind::SparseXor, 8, 16).unwrap();
        assert_eq!(rs.k_prime(), 8);
        assert!(xor.k_prime() > 8);
    }

    #[test]
    fn bad_parameters_propagate() {
        assert!(PageCode::new(CodeKind::ReedSolomon, 5, 4).is_err());
        assert!(PageCode::new(CodeKind::SparseXor, 0, 4).is_err());
    }
}

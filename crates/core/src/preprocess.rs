//! Base-station code-image preprocessing (paper §IV-C, Fig. 1).
//!
//! Pages are processed in reverse order. For page `i` the base station
//! takes the page's plaintext, appends the hash images
//! `h_{i+1,1} ‖ … ‖ h_{i+1,n}` of the *next* page's encoded packets
//! (zeros for the last page), splits the result into `k` blocks and
//! applies the fixed-rate code `f` to obtain the `n` encoded packets.
//! The hashes of page 1's packets form the hash page `M0`, which is
//! encoded with `f0` into `n0 = 2^d` blocks; a depth-`d` Merkle tree over
//! those blocks supplies per-packet authenticators and its root is
//! signed (with a message-specific puzzle as weak authenticator).

use crate::code::PageCode;
use crate::params::{LrSelugeParams, ParamError};
use lrs_crypto::hash::Digest;
use lrs_crypto::merkle::MerkleTree;
use lrs_crypto::puzzle::{PuzzleKeyChain, PuzzleSolution};
use lrs_crypto::schnorr::{Keypair, SIGNATURE_LEN};
use lrs_crypto::sha256::sha256_concat;
use lrs_erasure::ErasureCode;

/// Everything the base station precomputes for one image.
#[derive(Clone, Debug)]
pub struct LrArtifacts {
    params: LrSelugeParams,
    /// `page_packets[i][j]` = encoded block `e_{i,j}` (wire item `i+2`).
    page_packets: Vec<Vec<Vec<u8>>>,
    /// Decoded page inputs (plaintext ‖ hash region), `k·payload` bytes
    /// each — what intermediate nodes hold after decoding.
    page_inputs: Vec<Vec<u8>>,
    /// Hash-page packet payloads (encoded block ‖ Merkle path).
    hash_page_packets: Vec<Vec<u8>>,
    signature_body: Vec<u8>,
    root: Digest,
}

impl LrArtifacts {
    /// Runs the full preprocessing pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `image.len() != params.image_len` or the parameters are
    /// inconsistent (see [`LrSelugeParams::validate`]); use
    /// [`try_build`](Self::try_build) to get a typed error instead.
    pub fn build(
        image: &[u8],
        params: LrSelugeParams,
        keypair: &Keypair,
        puzzle_chain: &PuzzleKeyChain,
    ) -> Self {
        match Self::try_build(image, params, keypair, puzzle_chain) {
            Ok(artifacts) => artifacts,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`build`](Self::build): rejects inconsistent parameters
    /// or a mismatched image with a [`ParamError`] instead of panicking
    /// — the entry point for user-supplied configuration.
    pub fn try_build(
        image: &[u8],
        params: LrSelugeParams,
        keypair: &Keypair,
        puzzle_chain: &PuzzleKeyChain,
    ) -> Result<Self, ParamError> {
        params.validate().map_err(ParamError)?;
        if image.len() != params.image_len {
            return Err(ParamError(format!(
                "image is {} bytes but params.image_len is {}",
                image.len(),
                params.image_len
            )));
        }
        let g = params.pages() as usize;
        let code = PageCode::new(params.code_kind, params.k as usize, params.n as usize)
            .expect("params validated");
        let mut padded = image.to_vec();
        padded.resize(g * params.page_capacity(), 0);

        let mut page_packets: Vec<Vec<Vec<u8>>> = vec![Vec::new(); g];
        let mut page_inputs: Vec<Vec<u8>> = vec![Vec::new(); g];
        let mut next_hashes = vec![0u8; params.hash_region_len()];
        for i in (0..g).rev() {
            let item = (i + 2) as u16;
            let mut input =
                padded[i * params.page_capacity()..(i + 1) * params.page_capacity()].to_vec();
            input.extend_from_slice(&next_hashes);
            debug_assert_eq!(input.len(), params.k as usize * params.payload_len);
            let blocks: Vec<Vec<u8>> = input
                .chunks(params.payload_len)
                .map(|c| c.to_vec())
                .collect();
            let encoded = code.encode(&blocks).expect("consistent shapes");
            // All n per-page packet hashes are independent: one batch
            // through the multi-buffer SHA-256 kernels.
            next_hashes = crate::packet_hash_batch(params.version, item, &encoded)
                .iter()
                .flat_map(|h| h.0)
                .collect();
            page_inputs[i] = input;
            page_packets[i] = encoded;
        }

        // Hash page M0 = hashes of page 0's (wire item 2's) packets.
        let code0 = PageCode::new(params.code_kind, params.k0 as usize, params.n0 as usize)
            .expect("params validated");
        let mut m0 = next_hashes;
        m0.resize(params.hash_block_len() * params.k0 as usize, 0);
        let blocks0: Vec<Vec<u8>> = m0
            .chunks(params.hash_block_len())
            .map(|c| c.to_vec())
            .collect();
        let encoded0 = code0.encode(&blocks0).expect("consistent shapes");
        let tree = MerkleTree::build(encoded0.iter().map(|b| b.as_slice()));
        let hash_page_packets: Vec<Vec<u8>> = encoded0
            .iter()
            .enumerate()
            .map(|(j, block)| {
                let mut payload = block.clone();
                for sib in tree.proof(j).siblings() {
                    payload.extend_from_slice(&sib.0);
                }
                payload
            })
            .collect();

        let root = tree.root();
        let signed = Self::signed_message(&params, &root);
        let signature = keypair.sign(&signed.0);
        // The puzzle covers the signed message *and* the signature bytes,
        // so any tampering fails the cheap check before the expensive
        // verification runs.
        let mut puzzle_msg = signed.0.to_vec();
        puzzle_msg.extend_from_slice(&signature.to_bytes());
        let puzzle_sol = {
            let puzzle =
                lrs_crypto::puzzle::Puzzle::new(puzzle_chain.anchor(), params.puzzle_strength);
            puzzle_chain.solve(&puzzle, params.version as u32, &puzzle_msg)
        };
        let mut signature_body = Vec::new();
        signature_body.extend_from_slice(&root.0);
        signature_body.extend_from_slice(&signature.to_bytes());
        signature_body.extend_from_slice(&puzzle_sol.key.0);
        signature_body.extend_from_slice(&puzzle_sol.solution.to_be_bytes());

        Ok(LrArtifacts {
            params,
            page_packets,
            page_inputs,
            hash_page_packets,
            signature_body,
            root,
        })
    }

    /// The message covered by the signature (binds root to parameters).
    pub fn signed_message(params: &LrSelugeParams, root: &Digest) -> Digest {
        sha256_concat(&[
            b"lr-seluge-root",
            &params.version.to_be_bytes(),
            &(params.image_len as u64).to_be_bytes(),
            &params.k.to_be_bytes(),
            &params.n.to_be_bytes(),
            &params.k0.to_be_bytes(),
            &params.n0.to_be_bytes(),
            &(params.payload_len as u32).to_be_bytes(),
            &[match params.code_kind {
                crate::code::CodeKind::ReedSolomon => 0u8,
                crate::code::CodeKind::SparseXor => 1u8,
                crate::code::CodeKind::Lt => 2u8,
            }],
            &root.0,
        ])
    }

    /// Wire length of the signature body.
    pub fn signature_body_len() -> usize {
        32 + SIGNATURE_LEN + 32 + 8
    }

    /// Splits a signature body into `(root, signature, puzzle solution)`.
    pub fn parse_signature_body(
        body: &[u8],
    ) -> Option<(Digest, [u8; SIGNATURE_LEN], PuzzleSolution)> {
        if body.len() != Self::signature_body_len() {
            return None;
        }
        let mut root = [0u8; 32];
        root.copy_from_slice(&body[..32]);
        let mut sig = [0u8; SIGNATURE_LEN];
        sig.copy_from_slice(&body[32..32 + SIGNATURE_LEN]);
        let mut key = [0u8; 32];
        key.copy_from_slice(&body[32 + SIGNATURE_LEN..64 + SIGNATURE_LEN]);
        let mut sol = [0u8; 8];
        sol.copy_from_slice(&body[64 + SIGNATURE_LEN..]);
        Some((
            Digest(root),
            sig,
            PuzzleSolution {
                key: Digest(key),
                solution: u64::from_be_bytes(sol),
            },
        ))
    }

    /// Layout parameters.
    pub fn params(&self) -> LrSelugeParams {
        self.params
    }

    /// Merkle root over the encoded hash page.
    pub fn root(&self) -> Digest {
        self.root
    }

    /// The signature packet body.
    pub fn signature_body(&self) -> &[u8] {
        &self.signature_body
    }

    /// Encoded hash-page packet `j` (block ‖ Merkle path).
    pub fn hash_page_packet(&self, j: u16) -> &[u8] {
        &self.hash_page_packets[j as usize]
    }

    /// Encoded block `e_{i,j}` of 0-based page `i`.
    pub fn page_packet(&self, i: u16, j: u16) -> &[u8] {
        &self.page_packets[i as usize][j as usize]
    }

    /// Decoded input (plaintext ‖ hash region) of 0-based page `i`.
    pub fn page_input(&self, i: u16) -> &[u8] {
        &self.page_inputs[i as usize]
    }

    /// The hash images `h_{i+1,*}` chained into 0-based page `i`.
    pub fn chained_hashes(&self, i: u16) -> &[u8] {
        let input = self.page_input(i);
        &input[self.params.page_capacity()..]
    }

    /// Pre-fills a run's packet-digest memo with the hash image of every
    /// predetermined data packet, computed one multi-buffer batch per
    /// page. Receivers then verify even first-contact packets against
    /// warm entries; per-node `hashes` cost counters are unaffected
    /// (hits land in `memoized_hashes`, exactly as with lazy fills).
    pub fn warm_digest_cache(&self, cache: &crate::scheme::PacketDigestCache) {
        for (i, packets) in self.page_packets.iter().enumerate() {
            let item = (i + 2) as u16;
            let hashes = crate::packet_hash_batch(self.params.version, item, packets);
            cache.warm(
                packets
                    .iter()
                    .zip(hashes)
                    .enumerate()
                    .map(|(j, (p, h))| ((self.params.version, item, j as u16), p.as_slice(), h)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet_hash;
    use lrs_crypto::hash::HASH_IMAGE_LEN;
    use lrs_erasure::ReedSolomon;

    fn small_params() -> LrSelugeParams {
        LrSelugeParams {
            version: 1,
            image_len: 700,
            k: 4,
            n: 6,
            payload_len: 48,
            k0: 2,
            n0: 4,
            puzzle_strength: 4,
            ..LrSelugeParams::default()
        }
    }

    fn build() -> (LrArtifacts, Vec<u8>) {
        let params = small_params();
        let image: Vec<u8> = (0..params.image_len as u32)
            .map(|i| (i % 247) as u8)
            .collect();
        let kp = Keypair::from_seed(b"bs");
        let chain = PuzzleKeyChain::generate(b"puzzles", 4);
        (LrArtifacts::build(&image, params, &kp, &chain), image)
    }

    #[test]
    fn geometry() {
        let p = small_params();
        // capacity = 4*48 - 6*8 = 144; 700/144 → 5 pages.
        assert_eq!(p.page_capacity(), 144);
        assert_eq!(p.pages(), 5);
        assert_eq!(p.hash_page_len(), 48);
        assert_eq!(p.hash_block_len(), 24);
        assert_eq!(p.merkle_depth(), 2);
    }

    #[test]
    fn chained_hashes_match_next_page_packets() {
        let (art, _) = build();
        let p = art.params();
        for i in 0..p.pages() - 1 {
            let chained = art.chained_hashes(i);
            for j in 0..p.n {
                let expected = packet_hash(p.version, (i + 1) + 2, j, art.page_packet(i + 1, j));
                let off = j as usize * HASH_IMAGE_LEN;
                assert_eq!(
                    &chained[off..off + HASH_IMAGE_LEN],
                    expected.0,
                    "page {i} hash {j}"
                );
            }
        }
        // Last page chains to zeros.
        assert!(art.chained_hashes(p.pages() - 1).iter().all(|&b| b == 0));
    }

    #[test]
    fn page_packets_are_the_erasure_encoding_of_the_input() {
        let (art, _) = build();
        let p = art.params();
        let code = ReedSolomon::new(p.k as usize, p.n as usize).unwrap();
        for i in 0..p.pages() {
            let blocks: Vec<Vec<u8>> = art
                .page_input(i)
                .chunks(p.payload_len)
                .map(|c| c.to_vec())
                .collect();
            let encoded = code.encode(&blocks).unwrap();
            for j in 0..p.n {
                assert_eq!(
                    art.page_packet(i, j),
                    &encoded[j as usize][..],
                    "page {i} pkt {j}"
                );
            }
        }
    }

    #[test]
    fn any_k_packets_decode_a_page() {
        let (art, image) = build();
        let p = art.params();
        let code = ReedSolomon::new(p.k as usize, p.n as usize).unwrap();
        // Decode page 0 from its last k packets and recover the image
        // prefix.
        let subset: Vec<(usize, Vec<u8>)> = (p.n - p.k..p.n)
            .map(|j| (j as usize, art.page_packet(0, j).to_vec()))
            .collect();
        let blocks = code.decode(&subset, p.payload_len).unwrap();
        let input: Vec<u8> = blocks.concat();
        assert_eq!(&input[..p.page_capacity()], &image[..p.page_capacity()]);
        assert_eq!(&input[..], art.page_input(0));
    }

    #[test]
    fn hash_page_decodes_to_page0_hashes() {
        let (art, _) = build();
        let p = art.params();
        let code0 = ReedSolomon::new(p.k0 as usize, p.n0 as usize).unwrap();
        let subset: Vec<(usize, Vec<u8>)> = (0..p.k0)
            .map(|j| {
                (
                    j as usize,
                    art.hash_page_packet(j)[..p.hash_block_len()].to_vec(),
                )
            })
            .collect();
        let m0: Vec<u8> = code0.decode(&subset, p.hash_block_len()).unwrap().concat();
        for j in 0..p.n {
            let expected = packet_hash(p.version, 2, j, art.page_packet(0, j));
            let off = j as usize * HASH_IMAGE_LEN;
            assert_eq!(&m0[off..off + HASH_IMAGE_LEN], expected.0, "hash {j}");
        }
    }

    #[test]
    fn merkle_paths_verify() {
        let (art, _) = build();
        let p = art.params();
        for j in 0..p.n0 {
            let payload = art.hash_page_packet(j);
            let block = &payload[..p.hash_block_len()];
            let siblings: Vec<Digest> = payload[p.hash_block_len()..]
                .chunks(32)
                .map(|c| {
                    let mut d = [0u8; 32];
                    d.copy_from_slice(c);
                    Digest(d)
                })
                .collect();
            let proof = lrs_crypto::merkle::MerkleProof::from_parts(j as usize, siblings);
            assert!(proof.verify(block, &art.root()), "block {j}");
        }
    }

    #[test]
    fn signature_body_verifies() {
        let params = small_params();
        let image: Vec<u8> = vec![7; params.image_len];
        let kp = Keypair::from_seed(b"bs");
        let chain = PuzzleKeyChain::generate(b"puzzles", 4);
        let art = LrArtifacts::build(&image, params, &kp, &chain);
        let (root, sig_bytes, sol) =
            LrArtifacts::parse_signature_body(art.signature_body()).unwrap();
        let signed = LrArtifacts::signed_message(&params, &root);
        let sig = lrs_crypto::schnorr::Signature::from_bytes(&sig_bytes).unwrap();
        assert!(kp.public().verify(&signed.0, &sig));
        let puzzle = lrs_crypto::puzzle::Puzzle::new(chain.anchor(), params.puzzle_strength);
        let mut puzzle_msg = signed.0.to_vec();
        puzzle_msg.extend_from_slice(&sig_bytes);
        assert!(puzzle.verify(params.version as u32, &puzzle_msg, &sol));
    }

    #[test]
    fn deterministic_preprocessing() {
        // Two base stations with the same inputs produce identical
        // packets — required because receivers chain hashes over them.
        let (a, _) = build();
        let (b, _) = build();
        let p = a.params();
        for i in 0..p.pages() {
            for j in 0..p.n {
                assert_eq!(a.page_packet(i, j), b.page_packet(i, j));
            }
        }
        assert_eq!(a.root(), b.root());
    }
}

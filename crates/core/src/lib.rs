//! # LR-Seluge: loss-resilient and secure code dissemination
//!
//! Reproduction of *LR-Seluge: Loss-Resilient and Secure Code
//! Dissemination in Wireless Sensor Networks* (Rui Zhang & Yanchao
//! Zhang, ICDCS 2011).
//!
//! LR-Seluge is the first code-dissemination scheme that is
//! simultaneously **loss-resilient** and **attack-resilient**. Existing
//! secure schemes (Seluge and its relatives) inherit Deluge's ARQ
//! transfer, which degrades badly under heavy packet loss; existing
//! loss-resilient schemes use *rateless* erasure codes whose unbounded
//! packet space defeats per-packet authentication. LR-Seluge closes the
//! gap with three ideas (paper §IV):
//!
//! 1. **Fixed-rate erasure coding.** Each page is encoded into a
//!    *predetermined* set of `n` packets of which any `k'` recover the
//!    page, so redundancy absorbs losses *and* every future packet is
//!    known at preprocessing time.
//! 2. **Chained hashes over encoded packets.** The hash images of page
//!    `i+1`'s `n` encoded packets are appended to page `i`'s plaintext
//!    *before* encoding; decoding page `i` therefore simultaneously
//!    yields the authenticators for page `i+1`, preserving Seluge-style
//!    immediate per-packet authentication (and hence DoS resilience). A
//!    Merkle-tree-protected, erasure-coded hash page plus one signed root
//!    bootstraps the chain.
//! 3. **Greedy round-robin TX scheduling.** Because any `k'` of `n`
//!    packets serve a receiver, a sender can satisfy *different* loss
//!    patterns at different neighbors with far fewer transmissions; the
//!    [`scheduler::GreedyRoundRobinPolicy`] transmits the most-wanted
//!    packet first and walks cyclically on ties, retiring each neighbor
//!    after its *distance* (remaining need) hits zero.
//!
//! # Quickstart
//!
//! ```
//! use lr_seluge::{LrSelugeParams, Deployment};
//! use lrs_netsim::{SimBuilder, topology::Topology, time::Duration};
//!
//! // A 4 KiB image, small pages for the doctest.
//! let image: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
//! let params = LrSelugeParams { image_len: image.len(), k: 8, n: 12, payload_len: 48,
//!                               ..LrSelugeParams::default() };
//! let deployment = Deployment::new(&image, params, b"demo keys");
//!
//! let mut sim = SimBuilder::new(Topology::star(4), 7,
//!                               |id| deployment.node(id, lrs_netsim::node::NodeId(0)))
//!     .build();
//! let report = sim.run(Duration::from_secs(3600));
//! assert!(report.all_complete);
//! # use lrs_deluge::engine::Scheme;
//! assert_eq!(sim.node(lrs_netsim::node::NodeId(3)).scheme().image().unwrap(), image);
//! ```

pub mod code;
pub mod deployment;
pub mod params;
pub mod preprocess;
pub mod scheduler;
pub mod scheme;
pub mod upgrade;

pub use code::{CodeKind, PageCode};
pub use deployment::{Deployment, LrNode};
pub use params::{LrSelugeParams, ParamError};
pub use preprocess::LrArtifacts;
pub use scheduler::GreedyRoundRobinPolicy;
pub use scheme::LrScheme;
pub use upgrade::VersionedNode;

use lrs_crypto::hash::{hash_image, HashImage};

/// Hash image of a data packet as transmitted on the wire:
/// `h_{i,j} = H(version || item || index || e_{i,j})` truncated.
///
/// Identical encoding to Seluge's [`packet_hash`], duplicated here so the
/// two crates stay independent.
///
/// [`packet_hash`]: https://docs.rs/lrs-seluge
pub fn packet_hash(version: u16, item: u16, index: u16, payload: &[u8]) -> HashImage {
    hash_image(&[
        &version.to_be_bytes(),
        &item.to_be_bytes(),
        &index.to_be_bytes(),
        payload,
    ])
}

/// [`packet_hash`] for all `n` packets of one page at once, batched
/// through the multi-buffer SHA-256 kernels. Packet `j` of the result is
/// `packet_hash(version, item, j, payloads[j])`, bit-identical to the
/// one-at-a-time function.
pub fn packet_hash_batch<P: AsRef<[u8]>>(
    version: u16,
    item: u16,
    payloads: &[P],
) -> Vec<HashImage> {
    let version_be = version.to_be_bytes();
    let item_be = item.to_be_bytes();
    let index_be: Vec<[u8; 2]> = (0..payloads.len())
        .map(|j| (j as u16).to_be_bytes())
        .collect();
    let msgs: Vec<[&[u8]; 4]> = payloads
        .iter()
        .zip(&index_be)
        .map(|(p, idx)| [&version_be[..], &item_be[..], &idx[..], p.as_ref()])
        .collect();
    lrs_crypto::hash::hash_image_batch(&msgs)
}

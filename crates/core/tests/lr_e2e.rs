//! End-to-end LR-Seluge dissemination over the simulator.

use lr_seluge::{CodeKind, Deployment, LrSelugeParams};
use lrs_deluge::engine::Scheme as _;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::{SimConfig, Simulator};

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

fn small_params(image_len: usize) -> LrSelugeParams {
    LrSelugeParams {
        version: 1,
        image_len,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 6,
        ..LrSelugeParams::default()
    }
}

fn test_image(len: usize) -> Vec<u8> {
    (0..len as u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect()
}

fn run(
    topo: Topology,
    image_len: usize,
    app_loss: f64,
    seed: u64,
) -> (Simulator<lr_seluge::LrNode>, Vec<u8>) {
    let image = test_image(image_len);
    let deployment = Deployment::new(&image, small_params(image_len), b"e2e keys");
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(topo, seed, |id| deployment.node(id, NodeId(0)))
        .config(cfg)
        .build();
    let report = sim.run(Duration::from_secs(7_200));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    (sim, image)
}

#[test]
fn one_hop_lossless() {
    let (sim, image) = run(Topology::star(6), 2_000, 0.0, 1);
    for i in 1..6u32 {
        assert_eq!(
            sim.node(NodeId(i)).scheme().image().unwrap(),
            image,
            "node {i}"
        );
    }
}

#[test]
fn one_hop_heavy_loss() {
    // p = 0.4: the regime where the paper reports ~44 % savings.
    let (sim, image) = run(Topology::star(6), 2_000, 0.4, 2);
    for i in 1..6u32 {
        assert_eq!(
            sim.node(NodeId(i)).scheme().image().unwrap(),
            image,
            "node {i}"
        );
    }
}

#[test]
fn multi_hop_line_decodes_via_relays() {
    let (sim, image) = run(Topology::line(5, 0.9), 1_500, 0.1, 3);
    for i in 1..5u32 {
        let node = sim.node(NodeId(i));
        assert_eq!(node.scheme().image().unwrap(), image, "node {i}");
        assert_eq!(node.scheme().cost().signature_verifications, 1);
    }
    // Interior relays must have re-encoded pages to serve downstream.
    let relay_encodes: u64 = (1..4u32)
        .map(|i| sim.node(NodeId(i)).scheme().cost().encodes)
        .sum();
    assert!(relay_encodes > 0, "no relay ever re-encoded");
}

#[test]
fn grid_dissemination() {
    let (sim, image) = run(Topology::grid(4, 10.0, 5), 1_200, 0.1, 4);
    for i in 1..16u32 {
        assert_eq!(
            sim.node(NodeId(i)).scheme().image().unwrap(),
            image,
            "node {i}"
        );
    }
}

#[test]
fn deterministic_for_fixed_seed() {
    let m = |seed| {
        let (sim, _) = run(Topology::star(5), 1_500, 0.2, seed);
        (
            sim.metrics().total_tx_packets(),
            sim.metrics().total_tx_bytes(),
            sim.metrics().dissemination_latency(),
        )
    };
    assert_eq!(m(42), m(42));
}

#[test]
fn sparse_xor_code_also_disseminates() {
    // The general k' > k path (§II-C): an XOR-only code whose decode can
    // be rank-deficient at exactly k packets; the protocol keeps
    // requesting until decode succeeds.
    let params = LrSelugeParams {
        code_kind: CodeKind::SparseXor,
        image_len: 1_500,
        k: 8,
        n: 16,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 6,
        ..LrSelugeParams::default()
    };
    assert!(params.k_prime() > params.k, "XOR code must have k' > k");
    let image = test_image(params.image_len);
    let deployment = Deployment::new(&image, params, b"xor keys");
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: 0.2,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(Topology::star(5), 17, |id| deployment.node(id, NodeId(0)))
        .config(cfg)
        .build();
    let report = sim.run(Duration::from_secs(36_000));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    for i in 1..5u32 {
        assert_eq!(
            sim.node(NodeId(i)).scheme().image().unwrap(),
            image,
            "node {i}"
        );
    }
}

#[test]
fn lt_code_also_disseminates() {
    // The capped-LT variant: peeling decode with k' ≈ 1.15k; decode
    // failures at the threshold are retried by the SNACK loop.
    let params = LrSelugeParams {
        code_kind: CodeKind::Lt,
        image_len: 1_500,
        k: 8,
        n: 20,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 6,
        ..LrSelugeParams::default()
    };
    assert!(params.k_prime() > params.k);
    let image = test_image(params.image_len);
    let deployment = Deployment::new(&image, params, b"lt keys");
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: 0.15,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(Topology::star(5), 23, |id| deployment.node(id, NodeId(0)))
        .config(cfg)
        .build();
    let report = sim.run(Duration::from_secs(36_000));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    for i in 1..5u32 {
        assert_eq!(
            sim.node(NodeId(i)).scheme().image().unwrap(),
            image,
            "node {i}"
        );
    }
}

#[test]
fn single_page_and_exact_multiple_images() {
    // Boundary geometries: an image that fits one page, and one that is
    // an exact multiple of the page capacity (no padding).
    for len_kind in ["single", "exact", "exact_plus_one"] {
        let probe = small_params(1);
        let capacity = probe.page_capacity();
        let image_len = match len_kind {
            "single" => capacity / 2,
            "exact" => capacity * 3,
            _ => capacity * 3 + 1,
        };
        let params = small_params(image_len);
        let image = test_image(image_len);
        let deployment = Deployment::new(&image, params, b"edges");
        let mut sim =
            SimBuilder::new(Topology::star(3), 7, |id| deployment.node(id, NodeId(0))).build();
        let report = sim.run(Duration::from_secs(36_000));
        assert!(report.all_complete, "{len_kind} stalled");
        for i in 1..3u32 {
            assert_eq!(
                sim.node(NodeId(i)).scheme().image().as_deref(),
                Some(&image[..]),
                "{len_kind} node {i}"
            );
        }
        match len_kind {
            "single" => assert_eq!(params.pages(), 1),
            "exact" => assert_eq!(params.pages(), 3),
            _ => assert_eq!(params.pages(), 4),
        }
    }
}

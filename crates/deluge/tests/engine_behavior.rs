//! Focused engine-behaviour tests using a minimal in-memory scheme:
//! budget enforcement, out-of-order drops, suppression bounds, and
//! level advertisement dynamics.

use lrs_crypto::cluster::ClusterKey;
use lrs_deluge::engine::{CryptoCost, DisseminationNode, EngineConfig, PacketDisposition, Scheme};
use lrs_deluge::policy::UnionPolicy;
use lrs_deluge::wire::BitVec;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, PacketKind};
use lrs_netsim::sim::{SimConfig, Simulator};

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

/// Three items of four accept-anything packets each.
struct TestScheme {
    version: u16,
    have: Vec<Vec<Option<Vec<u8>>>>,
    base: bool,
}

impl TestScheme {
    fn new(base: bool) -> Self {
        TestScheme {
            version: 1,
            have: (0..3)
                .map(|_| (0..4).map(|j| base.then(|| vec![j as u8; 8])).collect())
                .collect(),
            base,
        }
    }
}

impl Scheme for TestScheme {
    fn version(&self) -> u16 {
        self.version
    }
    fn num_items(&self) -> u16 {
        3
    }
    fn item_packets(&self, _item: u16) -> u16 {
        4
    }
    fn packets_needed(&self, _item: u16) -> u16 {
        4
    }
    fn complete_items(&self) -> u16 {
        self.have
            .iter()
            .take_while(|item| item.iter().all(|p| p.is_some()))
            .count() as u16
    }
    fn handle_packet(&mut self, item: u16, index: u16, payload: &[u8]) -> PacketDisposition {
        if index >= 4 || payload.len() != 8 {
            return PacketDisposition::Rejected;
        }
        let slot = &mut self.have[item as usize][index as usize];
        if slot.is_some() {
            return PacketDisposition::Duplicate;
        }
        *slot = Some(payload.to_vec());
        PacketDisposition::Accepted
    }
    fn wanted(&self, item: u16) -> BitVec {
        let mut bits = BitVec::zeros(4);
        for (i, p) in self.have[item as usize].iter().enumerate() {
            if p.is_none() {
                bits.set(i, true);
            }
        }
        bits
    }
    fn packet_payload(&mut self, item: u16, index: u16) -> Option<Vec<u8>> {
        self.have.get(item as usize)?.get(index as usize)?.clone()
    }
    fn item_kind(&self, _item: u16) -> PacketKind {
        PacketKind::Data
    }
    fn cost(&self) -> CryptoCost {
        let _ = self.base;
        CryptoCost::default()
    }
}

type TestNode = DisseminationNode<TestScheme, UnionPolicy>;

fn sim_with(engine: EngineConfig, app_loss: f64, seed: u64, n: usize) -> Simulator<TestNode> {
    let key = ClusterKey::derive(b"engine-test", 0);
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    SimBuilder::new(Topology::star(n), seed, move |id| {
        DisseminationNode::new(
            TestScheme::new(id == NodeId(0)),
            UnionPolicy::new(),
            key.clone(),
            engine,
        )
    })
    .config(cfg)
    .build()
}

#[test]
fn minimal_scheme_disseminates() {
    let mut sim = sim_with(EngineConfig::default(), 0.1, 1, 5);
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete);
    for i in 1..5u32 {
        assert_eq!(sim.node(NodeId(i)).scheme().complete_items(), 3);
    }
}

#[test]
fn out_of_order_data_is_dropped_not_buffered() {
    // An attacker injecting data for future items: the engine must count
    // the packets as out-of-order drops and never advance the level.
    use lrs_deluge::attack::{AttackKind, Attacker, MaybeAdversary};

    let key = ClusterKey::derive(b"engine-test", 0);
    let cfg = SimConfig {
        medium: MediumConfig::default(),
        ..SimConfig::default()
    };
    // Two nodes: an attacker spraying item-2 data and one honest node
    // with no server available (level stays 0).
    let mut sim = SimBuilder::new(Topology::star(2), 7, move |id| {
        if id == NodeId(0) {
            MaybeAdversary::Attacker(Attacker::outsider(
                AttackKind::BogusData {
                    // Wrong payload length: the scheme rejects it, so the
                    // honest node can never advance on forged data.
                    payload_len: 5,
                    index_space: 4,
                },
                Duration::from_millis(300),
                1,
            ))
        } else {
            MaybeAdversary::Honest(DisseminationNode::new(
                TestScheme::new(false),
                UnionPolicy::new(),
                key.clone(),
                EngineConfig::default(),
            ))
        }
    })
    .config(cfg)
    .build();
    // Bounded observation window (the honest node can never complete).
    let _ = sim.run(Duration::from_secs(120));
    let honest = sim.node(NodeId(1)).honest().expect("honest");
    assert_eq!(honest.scheme().complete_items(), 0, "must not advance");
    let st = honest.stats();
    assert!(
        st.out_of_order_drops + st.auth_rejects > 0,
        "forged data must be counted as dropped/rejected"
    );
}

#[test]
fn healthy_runs_have_no_out_of_order_drops_on_two_nodes() {
    let mut sim = sim_with(EngineConfig::default(), 0.0, 3, 2);
    let report = sim.run(Duration::from_secs(600));
    assert!(report.all_complete);
    assert_eq!(sim.node(NodeId(1)).stats().out_of_order_drops, 0);
}

#[test]
fn budget_limits_service_per_neighbor() {
    // With a tiny per-neighbor budget, a lossy receiver that re-requests
    // a lot eventually gets refused by its first server and must rotate.
    let engine = EngineConfig {
        per_neighbor_item_budget: Some(4),
        ..EngineConfig::default()
    };
    let mut sim = sim_with(engine, 0.3, 5, 4);
    let report = sim.run(Duration::from_secs(36_000));
    // Dissemination still completes: peers that finished serve the rest.
    assert!(report.all_complete);
    let rejections: u64 = (0..4u32)
        .map(|i| sim.node(NodeId(i)).stats().budget_rejections)
        .sum();
    assert!(rejections > 0, "tiny budget should trigger rejections");
}

#[test]
fn deterministic_under_fixed_seed() {
    let run = |seed| {
        let mut sim = sim_with(EngineConfig::default(), 0.2, seed, 6);
        let report = sim.run(Duration::from_secs(3_600));
        assert!(report.all_complete);
        (
            sim.metrics().total_tx_packets(),
            report.latency.map(|t| t.as_micros()),
        )
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn advertisements_carry_levels_and_quiesce() {
    // After completion, Trickle backs off: advertisement counts stay
    // bounded well below one per interval forever.
    let mut sim = sim_with(EngineConfig::default(), 0.0, 11, 3);
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete);
    let advs = sim.metrics().tx_packets(PacketKind::Adv);
    assert!(advs > 0, "someone must advertise");
    assert!(
        advs < 200,
        "Trickle should suppress steady-state advertising, got {advs}"
    );
}

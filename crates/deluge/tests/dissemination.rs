//! End-to-end Deluge dissemination through the generic engine.

use lrs_crypto::cluster::ClusterKey;
use lrs_deluge::engine::{DisseminationNode, EngineConfig};
use lrs_deluge::image::{DelugeImage, DelugeScheme, ImageParams};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::{SimConfig, Simulator};

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

type DelugeNode = DisseminationNode<DelugeScheme, UnionPolicy>;

fn params(image_len: usize) -> ImageParams {
    ImageParams {
        version: 1,
        image_len,
        packets_per_page: 8,
        payload_len: 64,
    }
}

fn test_image(len: usize) -> Vec<u8> {
    (0..len as u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect()
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        authenticate_control: false,
        ..EngineConfig::default()
    }
}

fn build_sim(topo: Topology, image_len: usize, app_loss: f64, seed: u64) -> Simulator<DelugeNode> {
    let p = params(image_len);
    let image = DelugeImage::new(test_image(image_len), p);
    let key = ClusterKey::derive(b"test", 0);
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    SimBuilder::new(topo, seed, move |id| {
        let scheme = if id == NodeId(0) {
            DelugeScheme::base(&image)
        } else {
            DelugeScheme::receiver(p)
        };
        DisseminationNode::new(scheme, UnionPolicy::new(), key.clone(), engine_config())
    })
    .config(cfg)
    .build()
}

fn assert_all_received(sim: &Simulator<DelugeNode>, image_len: usize) {
    let want = test_image(image_len);
    for i in 0..sim.topology().len() {
        let got = sim
            .node(NodeId(i as u32))
            .scheme()
            .image()
            .unwrap_or_else(|| panic!("node {i} incomplete"));
        assert_eq!(got, want, "node {i} image mismatch");
    }
}

#[test]
fn one_hop_lossless() {
    let mut sim = build_sim(Topology::star(6), 2_000, 0.0, 1);
    let report = sim.run(Duration::from_secs(600));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    assert_all_received(&sim, 2_000);
}

#[test]
fn one_hop_lossy() {
    let mut sim = build_sim(Topology::star(6), 2_000, 0.3, 2);
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    assert_all_received(&sim, 2_000);
}

#[test]
fn multi_hop_line() {
    let mut sim = build_sim(Topology::line(5, 1.0), 1_500, 0.1, 3);
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    assert_all_received(&sim, 1_500);
}

#[test]
fn small_grid() {
    let mut sim = build_sim(Topology::grid(4, 10.0, 7), 1_000, 0.05, 4);
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    assert_all_received(&sim, 1_000);
}

#[test]
fn deterministic_metrics() {
    let run = |seed| {
        let mut sim = build_sim(Topology::star(5), 1_000, 0.2, seed);
        let report = sim.run(Duration::from_secs(3_600));
        assert!(report.all_complete);
        (
            sim.metrics().total_tx_packets(),
            sim.metrics().total_tx_bytes(),
            report.latency,
        )
    };
    assert_eq!(run(11), run(11));
    // Different seeds almost surely differ in latency.
    assert_ne!(run(11).2, run(12).2);
}

#[test]
fn lossier_runs_cost_more() {
    let cost = |p| {
        let mut sim = build_sim(Topology::star(10), 4_000, p, 5);
        let report = sim.run(Duration::from_secs(36_000));
        assert!(report.all_complete, "p={p} stalled");
        sim.metrics().tx_packets(lrs_netsim::node::PacketKind::Data)
    };
    let low = cost(0.0);
    let high = cost(0.4);
    assert!(
        high as f64 > low as f64 * 1.5,
        "expected ARQ blowup: p=0 cost {low}, p=0.4 cost {high}"
    );
}

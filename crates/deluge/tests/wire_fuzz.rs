//! Wire-format robustness: the parser must never panic and must
//! round-trip every well-formed message (adversaries control the bytes
//! a node parses). Driven by a fixed-seed deterministic generator so
//! the suite runs offline and reproduces exactly.

use lrs_crypto::cluster::{ClusterKey, MacTag};
use lrs_deluge::wire::{BitVec, Message};
use lrs_netsim::node::NodeId;
use lrs_rng::DetRng;

/// Arbitrary byte soup: parse returns None or Some, never panics.
#[test]
fn parser_never_panics() {
    let mut rng = DetRng::seed_from_u64(0x736f_7570);
    for _ in 0..512 {
        let len = rng.gen_range(0usize..300);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        let _ = Message::from_bytes(&bytes);
    }
}

/// Truncating any valid message makes it unparseable or — for
/// variable-length payloads — still structurally valid, but never a
/// panic.
#[test]
fn truncations_never_panic() {
    let key = ClusterKey::derive(b"fuzz", 0);
    let mut rng = DetRng::seed_from_u64(0x7472_756e);
    for _ in 0..256 {
        let bytes = Message::adv(&key, NodeId(rng.gen()), rng.gen(), rng.gen()).to_bytes();
        let cut = rng.gen_range(0usize..14).min(bytes.len());
        let _ = Message::from_bytes(&bytes[..bytes.len() - cut]);
    }
}

/// Round-trip for arbitrary advertisements.
#[test]
fn adv_roundtrip() {
    let key = ClusterKey::derive(b"fuzz", 1);
    let mut rng = DetRng::seed_from_u64(0x61_64_76);
    for _ in 0..256 {
        let m = Message::adv(&key, NodeId(rng.gen()), rng.gen(), rng.gen());
        assert_eq!(Message::from_bytes(&m.to_bytes()), Some(m));
    }
}

/// Round-trip for arbitrary SNACKs (with and without pairwise MACs).
#[test]
fn snack_roundtrip() {
    let key = ClusterKey::derive(b"fuzz", 2);
    let mut rng = DetRng::seed_from_u64(0x73_6e_61);
    for _ in 0..256 {
        let nbits = rng.gen_range(1usize..128);
        let mut bits = BitVec::zeros(nbits);
        for _ in 0..rng.gen_range(0usize..16) {
            bits.set(rng.gen_range(0usize..nbits), true);
        }
        let mut m = Message::snack(
            &key,
            NodeId(rng.gen()),
            NodeId(rng.gen()),
            rng.gen(),
            rng.gen(),
            bits,
        );
        if rng.gen_bool(0.5) {
            let mut tag = [0u8; 4];
            rng.fill_bytes(&mut tag);
            m = m.with_pairwise_mac(MacTag(tag));
        }
        assert_eq!(Message::from_bytes(&m.to_bytes()), Some(m));
    }
}

/// Round-trip for arbitrary data packets.
#[test]
fn data_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0x6461_7461);
    for _ in 0..256 {
        let mut payload = vec![0u8; rng.gen_range(0usize..256)];
        rng.fill_bytes(&mut payload);
        let m = Message::Data {
            version: rng.gen(),
            item: rng.gen(),
            index: rng.gen(),
            payload,
        };
        assert_eq!(Message::from_bytes(&m.to_bytes()), Some(m));
    }
}

/// One exemplar of every message kind, for the exhaustive adversarial
/// sweeps below.
fn exemplars() -> Vec<Message> {
    let key = ClusterKey::derive(b"fuzz", 4);
    let mut bits = BitVec::zeros(48);
    bits.set(0, true);
    bits.set(47, true);
    let mut tag = [0u8; 4];
    tag.copy_from_slice(&[9, 9, 9, 9][..]);
    vec![
        Message::adv(&key, NodeId(7), 3, 5),
        Message::snack(&key, NodeId(1), NodeId(2), 3, 4, bits.clone()),
        Message::snack(&key, NodeId(1), NodeId(2), 3, 4, bits).with_pairwise_mac(MacTag(tag)),
        Message::Data {
            version: 3,
            item: 2,
            index: 17,
            payload: vec![0xA5; 72],
        },
        Message::Signature {
            version: 3,
            body: vec![1, 2, 3, 4, 5],
        },
    ]
}

/// Truncation at EVERY byte offset of every message kind is rejected:
/// each encoding consumes its full length exactly, so any strict prefix
/// must parse to `None` (and never panic).
#[test]
fn every_prefix_of_every_kind_is_rejected() {
    for m in exemplars() {
        let bytes = m.to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                Message::from_bytes(&bytes[..cut]),
                None,
                "prefix of length {cut}/{} parsed for {m:?}",
                bytes.len()
            );
        }
        assert_eq!(Message::from_bytes(&bytes), Some(m));
    }
}

/// Every possible kind-tag byte on every message body: unknown tags are
/// rejected outright; a known-but-different tag re-frames the bytes and
/// must either fail to parse or parse cleanly — never panic. Anything
/// that does parse must re-encode to exactly the input (the wire format
/// has one canonical encoding per message).
#[test]
fn flipped_kind_tags_never_panic_and_stay_canonical() {
    for m in exemplars() {
        let bytes = m.to_bytes();
        for tag in 0u8..=255 {
            let mut flipped = bytes.clone();
            flipped[0] = tag;
            match Message::from_bytes(&flipped) {
                None => {}
                Some(reframed) => assert_eq!(reframed.to_bytes(), flipped),
            }
        }
    }
}

/// Length fields claiming more bytes than the datagram carries are
/// rejected; in-range corruptions leave trailing bytes, which the
/// parser also rejects.
#[test]
fn oversized_length_fields_are_rejected() {
    // Data packet: the payload-length u16 lives at bytes 7..9.
    let data = Message::Data {
        version: 1,
        item: 2,
        index: 3,
        payload: vec![0x55; 40],
    }
    .to_bytes();
    for claimed in [41u16, 64, 1024, u16::MAX] {
        let mut bytes = data.clone();
        bytes[7..9].copy_from_slice(&claimed.to_be_bytes());
        assert_eq!(Message::from_bytes(&bytes), None, "claimed {claimed}");
    }
    // Undersized claims leave trailing garbage: also rejected.
    let mut bytes = data.clone();
    bytes[7..9].copy_from_slice(&10u16.to_be_bytes());
    assert_eq!(Message::from_bytes(&bytes), None);

    // Signature packet: the body-length u16 lives at bytes 3..5.
    let sig = Message::Signature {
        version: 1,
        body: vec![7; 16],
    }
    .to_bytes();
    for claimed in [17u16, 4096, u16::MAX] {
        let mut bytes = sig.clone();
        bytes[3..5].copy_from_slice(&claimed.to_be_bytes());
        assert_eq!(Message::from_bytes(&bytes), None, "claimed {claimed}");
    }

    // SNACK: the bit-count u16 lives at bytes 13..15; an oversized
    // claim pushes the MAC read past the end of the datagram.
    let key = ClusterKey::derive(b"fuzz", 5);
    let snack = Message::snack(&key, NodeId(1), NodeId(2), 1, 0, BitVec::ones(32)).to_bytes();
    for claimed in [u16::MAX, 1024, 33] {
        let mut bytes = snack.clone();
        bytes[13..15].copy_from_slice(&claimed.to_be_bytes());
        assert_eq!(Message::from_bytes(&bytes), None, "claimed {claimed}");
    }
}

/// Anything the parser accepts re-encodes to exactly the bytes it was
/// parsed from: there are no two wire encodings of one message, so a
/// cache or dedup layer keyed on bytes cannot be split by an attacker.
#[test]
fn accepted_byte_strings_are_canonical() {
    let mut rng = DetRng::seed_from_u64(0x6361_6e6f);
    let mut accepted = 0u32;
    for _ in 0..4096 {
        let len = rng.gen_range(1usize..64);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        // Bias toward valid tags so some parses succeed.
        bytes[0] = rng.gen_range(0u32..6) as u8;
        if let Some(m) = Message::from_bytes(&bytes) {
            accepted += 1;
            assert_eq!(m.to_bytes(), bytes);
        }
    }
    // The generator must actually exercise the Some arm.
    assert!(accepted > 0, "no random input parsed; generator too weak");
}

/// Bit-flipping a MACed control packet either fails to parse or fails
/// the MAC — it is never accepted as authentic.
#[test]
fn flipped_control_packets_fail_mac() {
    let key = ClusterKey::derive(b"fuzz", 3);
    let mut rng = DetRng::seed_from_u64(0x666c_6970);
    for _ in 0..256 {
        let mut bytes = Message::adv(&key, NodeId(rng.gen()), rng.gen(), rng.gen()).to_bytes();
        // Skip byte 0: flipping the tag can re-frame the packet as a
        // data/signature message, which is legitimately MAC-exempt (its
        // authentication is the scheme's hash chain instead).
        let pos = rng.gen_range(1usize..bytes.len());
        let mask = rng.gen_range(1u32..=255) as u8;
        bytes[pos] ^= mask;
        match Message::from_bytes(&bytes) {
            None => {}
            Some(m) => assert!(!m.mac_ok(&key), "flipped byte {pos} accepted"),
        }
    }
}

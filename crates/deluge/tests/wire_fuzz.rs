//! Wire-format robustness: the parser must never panic and must
//! round-trip every well-formed message (adversaries control the bytes
//! a node parses). Driven by a fixed-seed deterministic generator so
//! the suite runs offline and reproduces exactly.

use lrs_crypto::cluster::{ClusterKey, MacTag};
use lrs_deluge::wire::{BitVec, Message};
use lrs_netsim::node::NodeId;
use lrs_rng::DetRng;

/// Arbitrary byte soup: parse returns None or Some, never panics.
#[test]
fn parser_never_panics() {
    let mut rng = DetRng::seed_from_u64(0x736f_7570);
    for _ in 0..512 {
        let len = rng.gen_range(0usize..300);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        let _ = Message::from_bytes(&bytes);
    }
}

/// Truncating any valid message makes it unparseable or — for
/// variable-length payloads — still structurally valid, but never a
/// panic.
#[test]
fn truncations_never_panic() {
    let key = ClusterKey::derive(b"fuzz", 0);
    let mut rng = DetRng::seed_from_u64(0x7472_756e);
    for _ in 0..256 {
        let bytes = Message::adv(&key, NodeId(rng.gen()), rng.gen(), rng.gen()).to_bytes();
        let cut = rng.gen_range(0usize..14).min(bytes.len());
        let _ = Message::from_bytes(&bytes[..bytes.len() - cut]);
    }
}

/// Round-trip for arbitrary advertisements.
#[test]
fn adv_roundtrip() {
    let key = ClusterKey::derive(b"fuzz", 1);
    let mut rng = DetRng::seed_from_u64(0x61_64_76);
    for _ in 0..256 {
        let m = Message::adv(&key, NodeId(rng.gen()), rng.gen(), rng.gen());
        assert_eq!(Message::from_bytes(&m.to_bytes()), Some(m));
    }
}

/// Round-trip for arbitrary SNACKs (with and without pairwise MACs).
#[test]
fn snack_roundtrip() {
    let key = ClusterKey::derive(b"fuzz", 2);
    let mut rng = DetRng::seed_from_u64(0x73_6e_61);
    for _ in 0..256 {
        let nbits = rng.gen_range(1usize..128);
        let mut bits = BitVec::zeros(nbits);
        for _ in 0..rng.gen_range(0usize..16) {
            bits.set(rng.gen_range(0usize..nbits), true);
        }
        let mut m = Message::snack(
            &key,
            NodeId(rng.gen()),
            NodeId(rng.gen()),
            rng.gen(),
            rng.gen(),
            bits,
        );
        if rng.gen_bool(0.5) {
            let mut tag = [0u8; 4];
            rng.fill_bytes(&mut tag);
            m = m.with_pairwise_mac(MacTag(tag));
        }
        assert_eq!(Message::from_bytes(&m.to_bytes()), Some(m));
    }
}

/// Round-trip for arbitrary data packets.
#[test]
fn data_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0x6461_7461);
    for _ in 0..256 {
        let mut payload = vec![0u8; rng.gen_range(0usize..256)];
        rng.fill_bytes(&mut payload);
        let m = Message::Data {
            version: rng.gen(),
            item: rng.gen(),
            index: rng.gen(),
            payload,
        };
        assert_eq!(Message::from_bytes(&m.to_bytes()), Some(m));
    }
}

/// Bit-flipping a MACed control packet either fails to parse or fails
/// the MAC — it is never accepted as authentic.
#[test]
fn flipped_control_packets_fail_mac() {
    let key = ClusterKey::derive(b"fuzz", 3);
    let mut rng = DetRng::seed_from_u64(0x666c_6970);
    for _ in 0..256 {
        let mut bytes = Message::adv(&key, NodeId(rng.gen()), rng.gen(), rng.gen()).to_bytes();
        // Skip byte 0: flipping the tag can re-frame the packet as a
        // data/signature message, which is legitimately MAC-exempt (its
        // authentication is the scheme's hash chain instead).
        let pos = rng.gen_range(1usize..bytes.len());
        let mask = rng.gen_range(1u32..=255) as u8;
        bytes[pos] ^= mask;
        match Message::from_bytes(&bytes) {
            None => {}
            Some(m) => assert!(!m.mac_ok(&key), "flipped byte {pos} accepted"),
        }
    }
}

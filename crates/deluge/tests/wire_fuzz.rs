//! Wire-format robustness: the parser must never panic and must
//! round-trip every well-formed message (adversaries control the bytes
//! a node parses).

use lrs_crypto::cluster::{ClusterKey, MacTag};
use lrs_deluge::wire::{BitVec, Message};
use lrs_netsim::node::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    /// Arbitrary byte soup: parse returns None or Some, never panics.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Message::from_bytes(&bytes);
    }

    /// Truncating any valid message makes it unparseable or — for
    /// variable-length payloads — still structurally valid, but never a
    /// panic.
    #[test]
    fn truncations_never_panic(
        from in any::<u32>(),
        version in any::<u16>(),
        level in any::<u16>(),
        cut in 0usize..14,
    ) {
        let key = ClusterKey::derive(b"fuzz", 0);
        let bytes = Message::adv(&key, NodeId(from), version, level).to_bytes();
        let cut = cut.min(bytes.len());
        let _ = Message::from_bytes(&bytes[..bytes.len() - cut]);
    }

    /// Round-trip for arbitrary advertisements.
    #[test]
    fn adv_roundtrip(from in any::<u32>(), version in any::<u16>(), level in any::<u16>()) {
        let key = ClusterKey::derive(b"fuzz", 1);
        let m = Message::adv(&key, NodeId(from), version, level);
        prop_assert_eq!(Message::from_bytes(&m.to_bytes()), Some(m));
    }

    /// Round-trip for arbitrary SNACKs (with and without pairwise MACs).
    #[test]
    fn snack_roundtrip(
        from in any::<u32>(),
        target in any::<u32>(),
        version in any::<u16>(),
        item in any::<u16>(),
        nbits in 1usize..128,
        ones in proptest::collection::vec(any::<u16>(), 0..16),
        pairwise in any::<Option<[u8; 4]>>(),
    ) {
        let key = ClusterKey::derive(b"fuzz", 2);
        let mut bits = BitVec::zeros(nbits);
        for o in ones {
            bits.set(o as usize % nbits, true);
        }
        let mut m = Message::snack(&key, NodeId(from), NodeId(target), version, item, bits);
        if let Some(tag) = pairwise {
            m = m.with_pairwise_mac(MacTag(tag));
        }
        prop_assert_eq!(Message::from_bytes(&m.to_bytes()), Some(m));
    }

    /// Round-trip for arbitrary data packets.
    #[test]
    fn data_roundtrip(
        version in any::<u16>(),
        item in any::<u16>(),
        index in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let m = Message::Data { version, item, index, payload };
        prop_assert_eq!(Message::from_bytes(&m.to_bytes()), Some(m));
    }

    /// Bit-flipping a MACed control packet either fails to parse or fails
    /// the MAC — it is never accepted as authentic.
    #[test]
    fn flipped_control_packets_fail_mac(
        from in any::<u32>(),
        version in any::<u16>(),
        level in any::<u16>(),
        pos_seed in any::<u16>(),
        mask in 1u8..=255,
    ) {
        let key = ClusterKey::derive(b"fuzz", 3);
        let mut bytes = Message::adv(&key, NodeId(from), version, level).to_bytes();
        // Skip byte 0: flipping the tag can re-frame the packet as a
        // data/signature message, which is legitimately MAC-exempt (its
        // authentication is the scheme's hash chain instead).
        let pos = 1 + pos_seed as usize % (bytes.len() - 1);
        bytes[pos] ^= mask;
        match Message::from_bytes(&bytes) {
            None => {}
            Some(m) => prop_assert!(!m.mac_ok(&key), "flipped byte {pos} accepted"),
        }
    }
}

//! Deluge-style code dissemination substrate.
//!
//! Deluge (Hui & Culler, SenSys 2004) is the de-facto page-by-page code
//! dissemination protocol for sensor networks and the foundation that
//! both Seluge and LR-Seluge build on. This crate provides:
//!
//! * [`wire`] — the on-air message formats (advertisement, SNACK with a
//!   request bit vector, data, signature) and their byte-exact
//!   serialization, which the experiments use for the paper's
//!   "total communication cost in bytes" metric;
//! * [`engine`] — a generic dissemination node implementing the
//!   MAINTAIN / RX / TX state machine with Trickle-scheduled
//!   advertisements, SNACK retries and the suppression rules, shared by
//!   Deluge, Seluge and LR-Seluge and parameterized by a [`Scheme`]
//!   (what the transfer units are and how packets are validated) and a
//!   [`TxPolicy`] (which requested packet to transmit next);
//! * [`policy`] — the union-of-bit-vectors TX policy used by Deluge and
//!   Seluge (§IV-D-3: "a node in Deluge and Seluge simply transmits
//!   packets corresponding to the union of bit vectors in SNACK
//!   packets");
//! * [`image`] — the plain Deluge image layout (pages of `k` packets,
//!   no security) and its [`Scheme`] implementation;
//! * [`attack`] — adversarial node behaviours (bogus-data floods, forged
//!   control packets, forged signatures, denial-of-receipt) used by the
//!   attack-resilience experiments.

pub mod attack;
pub mod engine;
pub mod image;
pub mod policy;
pub mod wire;

pub use engine::{DisseminationNode, EngineConfig, PacketDisposition, Scheme};
pub use image::{DelugeImage, DelugeScheme};
pub use policy::{TxPolicy, UnionPolicy};
pub use wire::{BitVec, Message};

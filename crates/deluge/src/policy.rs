//! Transmit-scheduling policies for nodes in the TX state.
//!
//! Deluge and Seluge transmit the union of all requested bit vectors in
//! index order ([`UnionPolicy`]); LR-Seluge replaces this with the greedy
//! round-robin scheduler over a tracking table (implemented in the
//! `lr-seluge` crate against the same [`TxPolicy`] trait).

use crate::wire::BitVec;
use lrs_netsim::node::NodeId;
use std::collections::BTreeMap;

/// Decides which requested packet a TX-state node transmits next.
pub trait TxPolicy {
    /// Incorporates a SNACK from `from` asking for the set bits of
    /// `item`. `needed` is the number of additional packets `from`
    /// requires to complete the item (the tracking-table *distance*
    /// `d_v = q + k' − n` of the paper; union-based policies ignore it).
    fn on_snack(&mut self, from: NodeId, item: u16, bits: &BitVec, needed: u16);

    /// The next `(item, packet index)` to transmit, updating internal
    /// state as if the packet were sent. `None` when nothing is pending.
    fn next(&mut self) -> Option<(u16, u16)>;

    /// Another node was overheard transmitting packet `(item, index)`:
    /// requesters heard it too, so account for it as if we had sent it
    /// (this is the suppression rule — a node suppresses its own data
    /// packet when overhearing data for the same or a smaller index).
    fn on_overheard_data(&mut self, item: u16, index: u16);

    /// Whether no requests are pending.
    fn is_empty(&self) -> bool;

    /// The smallest item index with pending requests, for the data
    /// suppression rule (defer when overhearing data for an earlier
    /// item than anything we are serving).
    fn min_pending_item(&self) -> Option<u16>;

    /// Drops all pending requests.
    fn clear(&mut self);
}

/// Deluge/Seluge behaviour: transmit every requested packet once, lowest
/// item first, in packet-index order. Packets lost in transit are simply
/// re-requested by a later SNACK.
#[derive(Clone, Debug, Default)]
pub struct UnionPolicy {
    /// Pending request bits per item (BTreeMap keeps item order).
    pending: BTreeMap<u16, BitVec>,
}

impl UnionPolicy {
    /// An empty policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TxPolicy for UnionPolicy {
    fn on_snack(&mut self, _from: NodeId, item: u16, bits: &BitVec, _needed: u16) {
        self.pending
            .entry(item)
            .and_modify(|b| b.union_with(bits))
            .or_insert_with(|| bits.clone());
    }

    fn next(&mut self) -> Option<(u16, u16)> {
        let (&item, bits) = self.pending.iter_mut().find(|(_, b)| !b.is_zero())?;
        let idx = bits.iter_ones().next().expect("non-zero checked");
        bits.set(idx, false);
        if bits.is_zero() {
            self.pending.remove(&item);
        }
        Some((item, idx as u16))
    }

    fn on_overheard_data(&mut self, item: u16, index: u16) {
        if let Some(bits) = self.pending.get_mut(&item) {
            if (index as usize) < bits.len() {
                bits.set(index as usize, false);
                if bits.is_zero() {
                    self.pending.remove(&item);
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.pending.values().all(|b| b.is_zero())
    }

    fn min_pending_item(&self) -> Option<u16> {
        self.pending
            .iter()
            .find(|(_, b)| !b.is_zero())
            .map(|(&item, _)| item)
    }

    fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(len: usize, ones: &[usize]) -> BitVec {
        let mut b = BitVec::zeros(len);
        for &i in ones {
            b.set(i, true);
        }
        b
    }

    #[test]
    fn union_merges_requests() {
        let mut p = UnionPolicy::new();
        p.on_snack(NodeId(1), 0, &bits(4, &[0, 2]), 2);
        p.on_snack(NodeId(2), 0, &bits(4, &[2, 3]), 2);
        let sent: Vec<(u16, u16)> = std::iter::from_fn(|| p.next()).collect();
        assert_eq!(sent, vec![(0, 0), (0, 2), (0, 3)]);
        assert!(p.is_empty());
    }

    #[test]
    fn lowest_item_first() {
        let mut p = UnionPolicy::new();
        p.on_snack(NodeId(1), 5, &bits(4, &[1]), 1);
        p.on_snack(NodeId(2), 2, &bits(4, &[0]), 1);
        assert_eq!(p.next(), Some((2, 0)));
        assert_eq!(p.next(), Some((5, 1)));
        assert_eq!(p.next(), None);
    }

    #[test]
    fn clear_empties() {
        let mut p = UnionPolicy::new();
        p.on_snack(NodeId(1), 0, &bits(4, &[0, 1, 2, 3]), 4);
        assert!(!p.is_empty());
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.next(), None);
    }

    #[test]
    fn re_request_after_send_is_honored() {
        // A packet lost in the air gets re-requested and re-sent.
        let mut p = UnionPolicy::new();
        p.on_snack(NodeId(1), 0, &bits(4, &[1]), 1);
        assert_eq!(p.next(), Some((0, 1)));
        assert_eq!(p.next(), None);
        p.on_snack(NodeId(1), 0, &bits(4, &[1]), 1);
        assert_eq!(p.next(), Some((0, 1)));
    }
}

//! On-air message formats.
//!
//! Byte-exact serialization matters here: the paper's fairness metric is
//! total communication cost in *bytes*, noting that "SNACK packets in
//! LR-Seluge are `n − k` bits longer than those in Seluge". The SNACK
//! request bit vector is therefore variable-length and sized by the
//! per-item packet count.
//!
//! All control packets (advertisements and SNACKs) carry a truncated
//! cluster-key MAC, as in Seluge/LR-Seluge §IV-E.

use lrs_crypto::cluster::{ClusterKey, MacTag, MAC_LEN};
use lrs_netsim::node::NodeId;
use std::fmt;

/// A fixed-length bit vector used in SNACK requests.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    bits: Vec<u8>,
}

impl BitVec {
    /// All-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            bits: vec![0u8; len.div_ceil(8)],
        }
    }

    /// All-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            v.set(i, true);
        }
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        self.bits[i / 8] >> (i % 8) & 1 == 1
    }

    /// Bit mutator.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index out of range");
        if value {
            self.bits[i / 8] |= 1 << (i % 8);
        } else {
            self.bits[i / 8] &= !(1 << (i % 8));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        (0..self.len).filter(|&i| self.get(i)).count()
    }

    /// Whether no bit is set.
    pub fn is_zero(&self) -> bool {
        self.count_ones() == 0
    }

    /// Bitwise OR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Iterator over set-bit indices.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Raw little-bit-endian bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Reconstructs from raw bytes and a bit length.
    ///
    /// Returns `None` if `bytes` is not exactly `ceil(len/8)` long.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<Self> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        Some(BitVec {
            len,
            bits: bytes.to_vec(),
        })
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

/// A dissemination protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Periodic advertisement: "I have `level` complete items of
    /// `version`".
    Adv {
        /// Advertising node.
        from: NodeId,
        /// Code image version.
        version: u16,
        /// Number of leading complete items.
        level: u16,
        /// Cluster-key MAC over the fields above.
        mac: MacTag,
    },
    /// Selective-NACK: `from` asks `target` for the packets of `item`
    /// whose bits are set.
    Snack {
        /// Requesting node.
        from: NodeId,
        /// The node expected to serve the request.
        target: NodeId,
        /// Code image version.
        version: u16,
        /// Requested item (signature / hash page / code page index).
        item: u16,
        /// Wanted packets.
        bits: BitVec,
        /// Cluster-key MAC over the fields above.
        mac: MacTag,
        /// Optional LEAP pairwise MAC binding the request to the claimed
        /// sender (§IV-E: identifies the SNACK source so per-neighbor
        /// budgets cannot be evaded by spoofing).
        pairwise_mac: Option<MacTag>,
    },
    /// A data packet of `item`.
    Data {
        /// Code image version.
        version: u16,
        /// Item index.
        item: u16,
        /// Packet index within the item.
        index: u16,
        /// Scheme-defined payload.
        payload: Vec<u8>,
    },
    /// The signature packet (scheme-defined opaque body: Merkle root,
    /// signature, puzzle solution, image metadata).
    Signature {
        /// Code image version.
        version: u16,
        /// Scheme-defined body.
        body: Vec<u8>,
    },
}

const TAG_ADV: u8 = 1;
const TAG_SNACK: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_SIG: u8 = 4;

impl Message {
    /// MAC input for an advertisement.
    pub fn adv_mac_parts(from: NodeId, version: u16, level: u16) -> [[u8; 4]; 3] {
        [
            from.0.to_be_bytes(),
            {
                let mut b = [0u8; 4];
                b[..2].copy_from_slice(&version.to_be_bytes());
                b
            },
            {
                let mut b = [0u8; 4];
                b[..2].copy_from_slice(&level.to_be_bytes());
                b
            },
        ]
    }

    /// Builds a MACed advertisement.
    pub fn adv(key: &ClusterKey, from: NodeId, version: u16, level: u16) -> Message {
        let parts = Self::adv_mac_parts(from, version, level);
        let mac = key.tag(&[b"adv", &parts[0], &parts[1], &parts[2]]);
        Message::Adv {
            from,
            version,
            level,
            mac,
        }
    }

    /// Builds a MACed SNACK.
    pub fn snack(
        key: &ClusterKey,
        from: NodeId,
        target: NodeId,
        version: u16,
        item: u16,
        bits: BitVec,
    ) -> Message {
        let mac = key.tag(&[
            b"snack",
            &from.0.to_be_bytes(),
            &target.0.to_be_bytes(),
            &version.to_be_bytes(),
            &item.to_be_bytes(),
            bits.as_bytes(),
        ]);
        Message::Snack {
            from,
            target,
            version,
            item,
            bits,
            mac,
            pairwise_mac: None,
        }
    }

    /// The canonical byte parts a pairwise (LEAP) SNACK MAC covers.
    pub fn snack_pairwise_parts(
        from: NodeId,
        target: NodeId,
        version: u16,
        item: u16,
    ) -> [[u8; 4]; 3] {
        [from.0.to_be_bytes(), target.0.to_be_bytes(), {
            let mut b = [0u8; 4];
            b[..2].copy_from_slice(&version.to_be_bytes());
            b[2..].copy_from_slice(&item.to_be_bytes());
            b
        }]
    }

    /// Attaches a LEAP pairwise MAC to a SNACK (no-op otherwise).
    pub fn with_pairwise_mac(self, tag: MacTag) -> Message {
        match self {
            Message::Snack {
                from,
                target,
                version,
                item,
                bits,
                mac,
                ..
            } => Message::Snack {
                from,
                target,
                version,
                item,
                bits,
                mac,
                pairwise_mac: Some(tag),
            },
            other => other,
        }
    }

    /// Verifies the cluster-key MAC of a control packet. Data and
    /// signature packets are authenticated by their scheme instead.
    pub fn mac_ok(&self, key: &ClusterKey) -> bool {
        match self {
            Message::Adv {
                from,
                version,
                level,
                mac,
            } => {
                let parts = Self::adv_mac_parts(*from, *version, *level);
                key.check(&[b"adv", &parts[0], &parts[1], &parts[2]], mac)
            }
            Message::Snack {
                from,
                target,
                version,
                item,
                bits,
                mac,
                ..
            } => key.check(
                &[
                    b"snack",
                    &from.0.to_be_bytes(),
                    &target.0.to_be_bytes(),
                    &version.to_be_bytes(),
                    &item.to_be_bytes(),
                    bits.as_bytes(),
                ],
                mac,
            ),
            Message::Data { .. } | Message::Signature { .. } => true,
        }
    }

    /// Serializes to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Adv {
                from,
                version,
                level,
                mac,
            } => {
                out.push(TAG_ADV);
                out.extend_from_slice(&from.0.to_be_bytes());
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(&level.to_be_bytes());
                out.extend_from_slice(&mac.0);
            }
            Message::Snack {
                from,
                target,
                version,
                item,
                bits,
                mac,
                pairwise_mac,
            } => {
                out.push(TAG_SNACK);
                out.extend_from_slice(&from.0.to_be_bytes());
                out.extend_from_slice(&target.0.to_be_bytes());
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(&item.to_be_bytes());
                out.extend_from_slice(&(bits.len() as u16).to_be_bytes());
                out.extend_from_slice(bits.as_bytes());
                out.extend_from_slice(&mac.0);
                match pairwise_mac {
                    Some(t) => {
                        out.push(1);
                        out.extend_from_slice(&t.0);
                    }
                    None => out.push(0),
                }
            }
            Message::Data {
                version,
                item,
                index,
                payload,
            } => {
                out.push(TAG_DATA);
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(&item.to_be_bytes());
                out.extend_from_slice(&index.to_be_bytes());
                out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
                out.extend_from_slice(payload);
            }
            Message::Signature { version, body } => {
                out.push(TAG_SIG);
                out.extend_from_slice(&version.to_be_bytes());
                out.extend_from_slice(&(body.len() as u16).to_be_bytes());
                out.extend_from_slice(body);
            }
        }
        out
    }

    /// Parses wire bytes; returns `None` on any malformation (an
    /// adversary may send arbitrary garbage).
    pub fn from_bytes(bytes: &[u8]) -> Option<Message> {
        let (&tag, rest) = bytes.split_first()?;
        let mut r = Reader(rest);
        let msg = match tag {
            TAG_ADV => {
                let from = NodeId(r.u32()?);
                let version = r.u16()?;
                let level = r.u16()?;
                let mac = MacTag(r.array::<MAC_LEN>()?);
                Message::Adv {
                    from,
                    version,
                    level,
                    mac,
                }
            }
            TAG_SNACK => {
                let from = NodeId(r.u32()?);
                let target = NodeId(r.u32()?);
                let version = r.u16()?;
                let item = r.u16()?;
                let nbits = r.u16()? as usize;
                let bytes = r.take(nbits.div_ceil(8))?;
                let bits = BitVec::from_bytes(bytes, nbits)?;
                let mac = MacTag(r.array::<MAC_LEN>()?);
                let pairwise_mac = match r.take(1)?[0] {
                    0 => None,
                    1 => Some(MacTag(r.array::<MAC_LEN>()?)),
                    _ => return None,
                };
                Message::Snack {
                    from,
                    target,
                    version,
                    item,
                    bits,
                    mac,
                    pairwise_mac,
                }
            }
            TAG_DATA => {
                let version = r.u16()?;
                let item = r.u16()?;
                let index = r.u16()?;
                let len = r.u16()? as usize;
                let payload = r.take(len)?.to_vec();
                Message::Data {
                    version,
                    item,
                    index,
                    payload,
                }
            }
            TAG_SIG => {
                let version = r.u16()?;
                let len = r.u16()? as usize;
                let body = r.take(len)?.to_vec();
                Message::Signature { version, body }
            }
            _ => return None,
        };
        if !r.0.is_empty() {
            return None;
        }
        Some(msg)
    }
}

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
    fn u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_be_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn array<const N: usize>(&mut self) -> Option<[u8; N]> {
        let b = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(b);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ClusterKey {
        ClusterKey::derive(b"master", 0)
    }

    #[test]
    fn bitvec_basics() {
        let mut v = BitVec::zeros(10);
        assert_eq!(v.len(), 10);
        assert!(v.is_zero());
        v.set(0, true);
        v.set(9, true);
        assert!(v.get(0) && v.get(9) && !v.get(5));
        assert_eq!(v.count_ones(), 2);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 9]);
        v.set(0, false);
        assert_eq!(v.count_ones(), 1);
        assert_eq!(BitVec::ones(10).count_ones(), 10);
    }

    #[test]
    fn bitvec_union() {
        let mut a = BitVec::zeros(6);
        a.set(1, true);
        let mut b = BitVec::zeros(6);
        b.set(4, true);
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn bitvec_bytes_roundtrip() {
        let mut v = BitVec::zeros(13);
        v.set(3, true);
        v.set(12, true);
        let back = BitVec::from_bytes(v.as_bytes(), 13).unwrap();
        assert_eq!(back, v);
        assert!(BitVec::from_bytes(&[0u8; 3], 13).is_none());
    }

    #[test]
    fn snack_bitvec_size_matches_paper_note() {
        // Seluge: k = 32 bits; LR-Seluge: n = 48 bits. The LR SNACK must
        // be exactly (n - k) / 8 = 2 bytes longer.
        let k = key();
        let seluge = Message::snack(&k, NodeId(1), NodeId(2), 1, 3, BitVec::ones(32));
        let lr = Message::snack(&k, NodeId(1), NodeId(2), 1, 3, BitVec::ones(48));
        assert_eq!(lr.to_bytes().len() - seluge.to_bytes().len(), 2);
    }

    #[test]
    fn roundtrip_all_kinds() {
        let k = key();
        let mut bits = BitVec::zeros(48);
        bits.set(0, true);
        bits.set(47, true);
        let messages = vec![
            Message::adv(&k, NodeId(7), 2, 5),
            Message::snack(&k, NodeId(1), NodeId(2), 2, 4, bits),
            Message::Data {
                version: 2,
                item: 3,
                index: 17,
                payload: vec![0xAA; 72],
            },
            Message::Signature {
                version: 2,
                body: vec![1, 2, 3],
            },
        ];
        for m in messages {
            let bytes = m.to_bytes();
            let parsed = Message::from_bytes(&bytes).expect("parse");
            assert_eq!(parsed, m);
        }
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(Message::from_bytes(&[]), None);
        assert_eq!(Message::from_bytes(&[99, 0, 0]), None);
        // Truncated adv.
        let k = key();
        let adv = Message::adv(&k, NodeId(1), 1, 1).to_bytes();
        assert_eq!(Message::from_bytes(&adv[..adv.len() - 1]), None);
        // Trailing garbage.
        let mut extended = adv.clone();
        extended.push(0);
        assert_eq!(Message::from_bytes(&extended), None);
    }

    #[test]
    fn mac_verification() {
        let k = key();
        let adv = Message::adv(&k, NodeId(1), 1, 4);
        assert!(adv.mac_ok(&k));
        // Forge the level: MAC must fail.
        if let Message::Adv {
            from, version, mac, ..
        } = adv
        {
            let forged = Message::Adv {
                from,
                version,
                level: 9,
                mac,
            };
            assert!(!forged.mac_ok(&k));
        }
        // Attacker with the wrong key cannot produce a valid MAC.
        let wrong = ClusterKey::derive(b"other", 0);
        let forged = Message::adv(&wrong, NodeId(1), 1, 4);
        assert!(!forged.mac_ok(&k));
    }

    #[test]
    fn snack_mac_covers_bits() {
        let k = key();
        let m = Message::snack(&k, NodeId(1), NodeId(2), 1, 0, BitVec::ones(8));
        if let Message::Snack {
            from,
            target,
            version,
            item,
            mac,
            ..
        } = m
        {
            let forged = Message::Snack {
                from,
                target,
                version,
                item,
                bits: BitVec::zeros(8),
                mac,
                pairwise_mac: None,
            };
            assert!(!forged.mac_ok(&k));
        }
    }
}

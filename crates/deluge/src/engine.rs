//! The generic page-by-page dissemination engine.
//!
//! Deluge, Seluge and LR-Seluge share the same macro-structure (paper
//! §II-A, §IV-D): every node is in one of three states,
//!
//! * **MAINTAIN** — periodically advertise `(version, level)` under
//!   Trickle; detect neighbors that are ahead (enter RX) or behind
//!   (reset Trickle so they hear us soon);
//! * **RX** — request the packets of the next incomplete item from a
//!   chosen neighbor with SNACK bit vectors, retrying with backoff and
//!   suppressing own requests when an equivalent request is overheard;
//! * **TX** — serve requested packets, one per airtime slot, according to
//!   a [`TxPolicy`], suppressing when data for an earlier item is
//!   overheard.
//!
//! What differs between the three protocols is captured by the
//! [`Scheme`] trait (what the items are, how packets are authenticated
//! and stored, when an item is complete) and the [`TxPolicy`] trait
//! (union-order vs the LR-Seluge greedy round-robin scheduler). The
//! engine also implements the paper's §IV-E mitigation against the
//! *denial-of-receipt* attack: a per-neighbor, per-item budget of
//! requested packets after which further SNACKs from that neighbor are
//! ignored.

use crate::policy::TxPolicy;
use crate::wire::{BitVec, Message};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::leap::LeapKeyring;
use lrs_netsim::node::{Context, NodeId, PacketKind, Protocol, TimerId};
use lrs_netsim::time::Duration;
use lrs_netsim::trickle::{Trickle, TrickleConfig};
use std::collections::HashMap;

/// Outcome of handing a data packet to a [`Scheme`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketDisposition {
    /// Authenticated (where applicable) and stored.
    Accepted,
    /// Already held; ignored.
    Duplicate,
    /// Failed authentication (or malformed); dropped immediately.
    Rejected,
}

/// Cryptographic work performed by a node (the paper's computation
/// overhead analysis, §V-B).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoCost {
    /// Hash evaluations.
    pub hashes: u64,
    /// Expensive signature verifications.
    pub signature_verifications: u64,
    /// Cheap puzzle (weak authenticator) checks.
    pub puzzle_checks: u64,
    /// Erasure decode operations.
    pub decodes: u64,
    /// Erasure encode operations.
    pub encodes: u64,
    /// Of the `hashes` above, how many were served from a simulator-level
    /// digest memo instead of being recomputed. A real mote always
    /// recomputes, so `hashes` remains the paper-faithful per-node count;
    /// this field only quantifies the simulator optimization.
    pub memoized_hashes: u64,
}

/// Protocol-specific behaviour plugged into the engine.
///
/// Items are the engine's transfer units, indexed `0..num_items()`. For
/// Deluge they are the code pages; for Seluge and LR-Seluge, item 0 is
/// the signature, item 1 the hash page `M0`, and items `2..` the code
/// pages. The paper's page-by-page rule — "a node can only request a new
/// page if all previous pages have been completely received" — becomes:
/// the engine only ever requests item `complete_items()`.
pub trait Scheme {
    /// Code image version being disseminated.
    fn version(&self) -> u16;

    /// Total number of items.
    fn num_items(&self) -> u16;

    /// Number of packets composing `item` (`n` for erasure-coded pages).
    fn item_packets(&self, item: u16) -> u16;

    /// Packets required to complete `item` (`k'`; equals
    /// [`item_packets`](Self::item_packets) for ARQ schemes).
    fn packets_needed(&self, item: u16) -> u16;

    /// Number of leading complete items (the node's *level*).
    fn complete_items(&self) -> u16;

    /// Processes a data packet for `item` (which the engine guarantees is
    /// the node's next incomplete item — packets for later items are
    /// dropped before authentication is even possible, which is the
    /// DoS-resilience property).
    fn handle_packet(&mut self, item: u16, index: u16, payload: &[u8]) -> PacketDisposition;

    /// Which packets of `item` this node still wants (the SNACK vector).
    fn wanted(&self, item: u16) -> BitVec;

    /// The payload of packet `(item, index)`, for serving; `None` if this
    /// node cannot produce it (item not complete).
    fn packet_payload(&mut self, item: u16, index: u16) -> Option<Vec<u8>>;

    /// Metric classification for packets of `item`.
    fn item_kind(&self, item: u16) -> PacketKind {
        let _ = item;
        PacketKind::Data
    }

    /// Flash-recovery hook invoked when the node reboots after a crash:
    /// in-RAM reception state (partially received items, regenerable
    /// caches) is lost, while flash-resident state (completed items)
    /// survives, so the node re-enters dissemination from its last
    /// completed item instead of silently keeping volatile state. The
    /// default treats the whole scheme as flash-resident (no-op).
    fn reboot(&mut self) {}

    /// Cryptographic work performed so far.
    fn cost(&self) -> CryptoCost {
        CryptoCost::default()
    }
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Trickle parameters for advertisements.
    pub trickle: TrickleConfig,
    /// Minimum delay before sending a SNACK after deciding to.
    pub snack_delay_min: Duration,
    /// Maximum delay before sending a SNACK.
    pub snack_delay_max: Duration,
    /// Base delay before re-sending an unanswered SNACK.
    pub retry_delay: Duration,
    /// Extra uniform jitter added to the retry delay.
    pub retry_jitter: Duration,
    /// SNACK retries before giving up and returning to MAINTAIN.
    pub retry_limit: u32,
    /// Idle gap between consecutive data packets in TX.
    pub tx_gap: Duration,
    /// Whether advertisement/SNACK MACs are required (Seluge/LR-Seluge:
    /// yes; plain Deluge: no).
    pub authenticate_control: bool,
    /// Denial-of-receipt mitigation (§IV-E): maximum data packets a
    /// single neighbor may request per item before being ignored.
    /// `None` disables the mitigation.
    pub per_neighbor_item_budget: Option<u32>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            trickle: TrickleConfig::default(),
            snack_delay_min: Duration::from_millis(10),
            snack_delay_max: Duration::from_millis(80),
            // Above the worst-case service-round airtime (n packets of
            // ~80 B at 19.2 kbps ≈ 2.1 s), so an answered-but-not-yet-
            // served request does not retry into the ongoing round.
            retry_delay: Duration::from_millis(2_500),
            retry_jitter: Duration::from_millis(1_200),
            retry_limit: 20,
            tx_gap: Duration::from_millis(4),
            authenticate_control: true,
            per_neighbor_item_budget: None,
        }
    }
}

/// Observable per-node statistics (aggregated by the harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// SNACKs this node sent.
    pub snacks_sent: u64,
    /// Data packets this node sent.
    pub data_sent: u64,
    /// Advertisements this node sent.
    pub advs_sent: u64,
    /// Data packets rejected by authentication.
    pub auth_rejects: u64,
    /// Control packets rejected by MAC verification.
    pub mac_rejects: u64,
    /// Duplicate data packets ignored.
    pub duplicates: u64,
    /// Data packets for not-yet-requestable items, dropped unbuffered.
    pub out_of_order_drops: u64,
    /// SNACKs ignored due to the denial-of-receipt budget.
    pub budget_rejections: u64,
    /// Times the RX retry limit was exhausted (returned to MAINTAIN).
    pub gave_up: u64,
}

const TIMER_TRICKLE_FIRE: TimerId = TimerId(0);
const TIMER_TRICKLE_END: TimerId = TimerId(1);
const TIMER_SNACK: TimerId = TimerId(2);
const TIMER_RETRY: TimerId = TimerId(3);
const TIMER_TX: TimerId = TimerId(4);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Maintain,
    Rx { server: NodeId, retries: u32 },
    Tx,
}

/// A dissemination node: the engine instantiated with a scheme and a TX
/// policy. Implements [`Protocol`] for the simulator.
pub struct DisseminationNode<S: Scheme, P: TxPolicy> {
    scheme: S,
    policy: P,
    key: ClusterKey,
    cfg: EngineConfig,
    state: State,
    trickle: Trickle,
    /// Latest advertised level per neighbor.
    neighbors: HashMap<NodeId, u16>,
    /// Data packets requested per (neighbor, item), for the
    /// denial-of-receipt budget.
    served: HashMap<(NodeId, u16), u32>,
    /// Consecutive own-request suppressions without progress; bounded so
    /// a SNACK flood cannot silence us forever.
    suppress_count: u32,
    /// Optional LEAP keyring: when present, SNACKs carry and require a
    /// pairwise MAC identifying the source (§IV-E extension).
    leap: Option<LeapKeyring>,
    /// Budget of prompt re-requests (on hearing future-item data while
    /// behind) for the current level, and the level it applies to.
    fast_rerequests: (u16, u8),
    /// A SNACK of ours is outstanding and unanswered; the retransmission
    /// retry must not be displaced by unrelated channel activity.
    awaiting_reply: bool,
    stats: NodeStats,
}

impl<S: Scheme, P: TxPolicy> DisseminationNode<S, P> {
    /// Creates a node.
    pub fn new(scheme: S, policy: P, key: ClusterKey, cfg: EngineConfig) -> Self {
        let trickle = Trickle::new(cfg.trickle);
        DisseminationNode {
            scheme,
            policy,
            key,
            cfg,
            state: State::Maintain,
            trickle,
            neighbors: HashMap::new(),
            served: HashMap::new(),
            suppress_count: 0,
            leap: None,
            fast_rerequests: (0, 3),
            awaiting_reply: false,
            stats: NodeStats::default(),
        }
    }

    /// Enables LEAP source authentication of SNACKs (the paper's §IV-E
    /// proposal): outgoing SNACKs carry a pairwise MAC; incoming SNACKs
    /// targeting this node are served only if their pairwise MAC matches
    /// the claimed sender.
    pub fn with_leap(mut self, keyring: LeapKeyring) -> Self {
        self.leap = Some(keyring);
        self
    }

    /// The scheme, for end-of-run assertions (image bytes, crypto cost).
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Mutable scheme access, for post-construction wiring (e.g.
    /// attaching a per-run digest memo).
    pub fn scheme_mut(&mut self) -> &mut S {
        &mut self.scheme
    }

    /// Per-node statistics.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    fn level(&self) -> u16 {
        self.scheme.complete_items()
    }

    fn done(&self) -> bool {
        self.level() == self.scheme.num_items()
    }

    fn start_trickle_interval(&mut self, ctx: &mut Context<'_>) {
        let plan = self.trickle.begin_interval(ctx.rng());
        ctx.set_timer(TIMER_TRICKLE_FIRE, plan.fire_in);
        ctx.set_timer(TIMER_TRICKLE_END, plan.interval);
    }

    fn reset_trickle(&mut self, ctx: &mut Context<'_>) {
        if self.trickle.reset() {
            self.start_trickle_interval(ctx);
        }
    }

    fn pick_server(&self, ctx: &mut Context<'_>) -> Option<NodeId> {
        let _ = ctx;
        let level = self.level();
        // Deterministic choice (highest level, lowest id) concentrates a
        // neighborhood's requests on one server, so its transmissions
        // serve everyone by overhearing; random spreading would stand up
        // several concurrent servers with largely duplicate streams.
        self.neighbors
            .iter()
            .filter(|(_, &l)| l > level)
            .map(|(&id, &l)| (l, std::cmp::Reverse(id.0)))
            .max()
            .map(|(_, std::cmp::Reverse(id))| NodeId(id))
    }

    fn enter_rx(&mut self, ctx: &mut Context<'_>, server: NodeId) {
        self.state = State::Rx { server, retries: 0 };
        self.suppress_count = 0;
        self.awaiting_reply = false;
        let span = self
            .cfg
            .snack_delay_max
            .as_micros()
            .saturating_sub(self.cfg.snack_delay_min.as_micros())
            .max(1);
        let delay = self.cfg.snack_delay_min + Duration::from_micros(ctx.rng().gen_range(0..span));
        ctx.set_timer(TIMER_SNACK, delay);
    }

    fn leave_rx(&mut self, ctx: &mut Context<'_>) {
        ctx.cancel_timer(TIMER_SNACK);
        ctx.cancel_timer(TIMER_RETRY);
        self.state = State::Maintain;
    }

    fn arm_retry(&mut self, ctx: &mut Context<'_>) {
        // Exponential backoff in the retry count: under contention many
        // receivers re-requesting at a fixed rate consume the very
        // channel the data needs (congestion collapse). Back off to 8x.
        let retries = match self.state {
            State::Rx { retries, .. } => retries,
            _ => 0,
        };
        let factor = 1u64 << retries.min(3);
        let jitter = Duration::from_micros(
            ctx.rng()
                .gen_range(0..=self.cfg.retry_jitter.as_micros().max(1)),
        );
        ctx.set_timer(TIMER_RETRY, self.cfg.retry_delay.mul(factor) + jitter);
    }

    /// Arms a short channel-quiet probe: while data (for any item) keeps
    /// arriving the probe keeps getting pushed back; it fires shortly
    /// after the stream pauses, which is when a new request is both
    /// needed and cheap (no contention with the stream itself).
    fn arm_quiet_probe(&mut self, ctx: &mut Context<'_>) {
        // The window scales with the neighborhood size so probes
        // desynchronize: the first prober's SNACK restarts the stream and
        // pushes everyone else's probe back again.
        let spread = 60_000u64 * (self.neighbors.len() as u64 + 1);
        let delay = Duration::from_micros(120_000 + ctx.rng().gen_range(0..spread.max(1)));
        ctx.set_timer(TIMER_RETRY, delay);
    }

    fn send_snack(&mut self, ctx: &mut Context<'_>) {
        let State::Rx { server, .. } = self.state else {
            return;
        };
        if self.done() {
            self.leave_rx(ctx);
            return;
        }
        let item = self.level();
        let bits = self.scheme.wanted(item);
        ctx.note("snack", item as u64, bits.count_ones() as u64);
        if std::env::var_os("LRS_TRACE").is_some() {
            eprintln!(
                "{:.3} n{} SNACK item={item} q={} -> n{}",
                ctx.now.as_secs_f64(),
                ctx.id.0,
                bits.count_ones(),
                server.0
            );
        }
        let mut msg = Message::snack(&self.key, ctx.id, server, self.scheme.version(), item, bits);
        if let Some(keyring) = &self.leap {
            let parts = Message::snack_pairwise_parts(ctx.id, server, self.scheme.version(), item);
            let tag = keyring.tag_for(server.0, &[b"snack-pw", &parts[0], &parts[1], &parts[2]]);
            msg = msg.with_pairwise_mac(tag);
        }
        ctx.broadcast(PacketKind::Snack, msg.to_bytes());
        self.stats.snacks_sent += 1;
        self.awaiting_reply = true;
        self.arm_retry(ctx);
    }

    fn enter_tx(&mut self, ctx: &mut Context<'_>) {
        if matches!(self.state, State::Rx { .. }) {
            ctx.cancel_timer(TIMER_SNACK);
            ctx.cancel_timer(TIMER_RETRY);
        }
        self.state = State::Tx;
        // Short collection window so concurrent SNACKs from other
        // neighbors merge into the same service round.
        let delay = Duration::from_micros(ctx.rng().gen_range(20_000u64..60_000));
        ctx.set_timer(TIMER_TX, delay);
    }

    fn tx_step(&mut self, ctx: &mut Context<'_>) {
        if self.state != State::Tx {
            return;
        }
        let Some((item, index)) = self.policy.next() else {
            self.after_tx(ctx);
            return;
        };
        let Some(payload) = self.scheme.packet_payload(item, index) else {
            // Should not happen: requests are only accepted for complete
            // items. Skip defensively.
            self.after_tx(ctx);
            return;
        };
        ctx.note("sched_tx", item as u64, index as u64);
        if std::env::var_os("LRS_TRACE").is_some() {
            eprintln!(
                "{:.3} n{} TX item={item} idx={index}",
                ctx.now.as_secs_f64(),
                ctx.id.0
            );
        }
        let msg = Message::Data {
            version: self.scheme.version(),
            item,
            index,
            payload,
        };
        let bytes = msg.to_bytes();
        let kind = self.scheme.item_kind(item);
        let air = ctx.airtime(bytes.len());
        ctx.broadcast(kind, bytes);
        self.stats.data_sent += 1;
        let jitter = Duration::from_micros(ctx.rng().gen_range(0u64..2_000));
        ctx.set_timer(TIMER_TX, air + self.cfg.tx_gap + jitter);
    }

    fn after_tx(&mut self, ctx: &mut Context<'_>) {
        self.state = State::Maintain;
        if !self.done() {
            if let Some(server) = self.pick_server(ctx) {
                self.enter_rx(ctx, server);
            }
        }
    }

    fn handle_adv(&mut self, ctx: &mut Context<'_>, from: NodeId, level: u16) {
        self.neighbors.insert(from, level);
        let my_level = self.level();
        if level >= my_level {
            // A neighbor at our level or ahead: our advertisement adds
            // nothing it needs, so it counts toward Trickle suppression.
            // Resetting here would create advertisement storms while a
            // transfer pipeline holds nodes at mixed levels (each reset
            // pins every node at I_min and the control traffic congests
            // the channel the data needs).
            self.trickle.heard_consistent();
        } else {
            // A neighbor behind us must hear our level soon.
            self.reset_trickle(ctx);
        }
        if level > my_level && !self.done() && self.state == State::Maintain {
            self.enter_rx(ctx, from);
        }
    }

    fn handle_snack(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        target: NodeId,
        item: u16,
        bits: &BitVec,
        pairwise_mac: Option<&lrs_crypto::cluster::MacTag>,
    ) {
        let my_level = self.level();
        if target == ctx.id {
            if item >= my_level {
                return; // cannot serve yet
            }
            if let Some(keyring) = &self.leap {
                // Source identification: the budget below is only sound
                // if the claimed sender really produced this request.
                let parts =
                    Message::snack_pairwise_parts(from, target, self.scheme.version(), item);
                let valid = pairwise_mac.is_some_and(|tag| {
                    keyring.check_from(from.0, &[b"snack-pw", &parts[0], &parts[1], &parts[2]], tag)
                });
                if !valid {
                    self.stats.mac_rejects += 1;
                    return;
                }
            }
            if bits.len() != self.scheme.item_packets(item) as usize {
                self.stats.mac_rejects += 1;
                return;
            }
            let q = bits.count_ones() as u32;
            if let Some(budget) = self.cfg.per_neighbor_item_budget {
                let count = self.served.entry((from, item)).or_insert(0);
                if *count >= budget {
                    self.stats.budget_rejections += 1;
                    return;
                }
                *count += q;
            }
            let n_pk = self.scheme.item_packets(item);
            let needed = self.scheme.packets_needed(item);
            let distance = (q as u16 + needed).saturating_sub(n_pk).max(1);
            self.policy.on_snack(from, item, bits, distance);
            if self.state != State::Tx {
                self.enter_tx(ctx);
            }
        } else if let State::Rx { .. } = self.state {
            // Overheard someone else requesting the same or an earlier
            // item: suppress our own pending request and rely on
            // overhearing the data (paper §II-A suppression). Bounded:
            // without the cap, an adversarial SNACK flood (the
            // denial-of-receipt attacker, or simply a very chatty
            // neighborhood) could postpone our request forever.
            if item <= my_level && self.suppress_count < 3 {
                self.suppress_count += 1;
                ctx.cancel_timer(TIMER_SNACK);
                self.awaiting_reply = false;
                self.arm_quiet_probe(ctx);
            }
        }
    }

    fn handle_data(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        item: u16,
        index: u16,
        payload: &[u8],
    ) {
        let my_level = self.level();
        if item > my_level || (item == my_level && self.done()) {
            // Cannot be authenticated yet (or nothing left to collect);
            // drop without buffering. This is the immediate-authentication
            // DoS defence. Hearing future-item data also tells a
            // straggler that service has moved past it: re-request the
            // current item promptly so the sender turns around (it always
            // serves the lowest requested item first).
            self.stats.out_of_order_drops += 1;
            // Data packets are not authenticated until their item is
            // reachable, so they are NOT evidence of the sender's level
            // (an adversary could otherwise redirect our requests). Only
            // accelerate the already-chosen server conversation: if we
            // are in RX and service has moved past our item, re-request
            // promptly — the sender always serves the lowest item first.
            // A straggler hearing future-item data knows service has
            // moved past it. Its request is for a LOWER item, which
            // servers prioritize, so one prompt re-request per level is
            // worth sending even into the stream; after that, probe
            // quietly (each further future-item packet re-requesting
            // would flood the channel exactly when it is busiest).
            let _ = from;
            if !self.done() && item > my_level {
                if let State::Rx { .. } = self.state {
                    if self.fast_rerequests.0 != my_level {
                        self.fast_rerequests = (my_level, 3);
                    }
                    if self.fast_rerequests.1 > 0 {
                        self.fast_rerequests.1 -= 1;
                        let delay = Duration::from_micros(ctx.rng().gen_range(5_000u64..40_000));
                        ctx.set_timer(TIMER_SNACK, delay);
                    } else if !self.awaiting_reply {
                        self.arm_quiet_probe(ctx);
                    }
                }
            }
            return;
        }
        if item < my_level {
            // Another node is serving an item we also hold. Requesters
            // overheard this packet too, so retire it from our own
            // pending-service state (the paper's data suppression for the
            // same or a smaller page index), and defer our next
            // transmission if the overheard item precedes ours.
            if let Some(min_item) = self.policy.min_pending_item() {
                self.policy.on_overheard_data(item, index);
                if self.state == State::Tx && item < min_item {
                    let defer = ctx.airtime(payload.len()) + self.cfg.tx_gap;
                    ctx.set_timer(TIMER_TX, defer);
                }
            }
            // If we are waiting for a later item, the channel is busy
            // serving an earlier one: wait quietly instead of re-SNACKing
            // into the contention, and probe soon after it pauses. An
            // outstanding unanswered SNACK keeps its retransmission timer
            // instead — our request may have been lost and only the retry
            // recovers it.
            if matches!(self.state, State::Rx { .. }) && !self.awaiting_reply {
                self.arm_quiet_probe(ctx);
            }
            return;
        }
        match self.scheme.handle_packet(item, index, payload) {
            PacketDisposition::Rejected => {
                self.stats.auth_rejects += 1;
            }
            PacketDisposition::Duplicate => {
                // A duplicate means some server is actively transmitting
                // this item: hold our retry back and keep listening.
                self.stats.duplicates += 1;
                if matches!(self.state, State::Rx { .. }) {
                    self.awaiting_reply = false;
                    self.arm_quiet_probe(ctx);
                }
            }
            PacketDisposition::Accepted => {
                self.suppress_count = 0;
                if self.scheme.complete_items() > my_level {
                    self.on_item_complete(ctx);
                } else if matches!(self.state, State::Rx { .. }) {
                    // Progress: our request is being served. Listen on and
                    // probe shortly after the stream pauses.
                    self.awaiting_reply = false;
                    self.arm_quiet_probe(ctx);
                }
            }
        }
    }

    fn on_item_complete(&mut self, ctx: &mut Context<'_>) {
        ctx.note("page_complete", self.level() as u64, self.done() as u64);
        // Level changed: neighbors' views are now inconsistent.
        self.reset_trickle(ctx);
        if self.done() {
            if matches!(self.state, State::Rx { .. }) {
                self.leave_rx(ctx);
            }
            return;
        }
        if let State::Rx { server, .. } = self.state {
            let server_level = self.neighbors.get(&server).copied().unwrap_or(0);
            let next_server = if server_level > self.level() {
                Some(server)
            } else {
                self.pick_server(ctx)
            };
            match next_server {
                Some(s) => self.enter_rx(ctx, s),
                None => self.leave_rx(ctx),
            }
        }
    }
}

impl<S: Scheme, P: TxPolicy> Protocol for DisseminationNode<S, P> {
    fn on_init(&mut self, ctx: &mut Context<'_>) {
        self.start_trickle_interval(ctx);
        // The base station initiates dissemination by broadcasting the
        // signature packet (paper §IV-E).
        if self.done() && self.scheme.item_kind(0) == PacketKind::Signature {
            if let Some(body) = self.scheme.packet_payload(0, 0) {
                let msg = Message::Data {
                    version: self.scheme.version(),
                    item: 0,
                    index: 0,
                    payload: body,
                };
                ctx.broadcast(PacketKind::Signature, msg.to_bytes());
                self.stats.data_sent += 1;
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, from: NodeId, data: &[u8]) {
        let Some(msg) = Message::from_bytes(data) else {
            self.stats.mac_rejects += 1;
            return;
        };
        if self.cfg.authenticate_control && !msg.mac_ok(&self.key) {
            self.stats.mac_rejects += 1;
            return;
        }
        match msg {
            Message::Adv {
                from: adv_from,
                version,
                level,
                ..
            } => {
                if version != self.scheme.version() {
                    return;
                }
                // The MAC binds the claimed sender; use it.
                let _ = from;
                self.handle_adv(ctx, adv_from, level);
            }
            Message::Snack {
                from: req_from,
                target,
                version,
                item,
                bits,
                pairwise_mac,
                ..
            } => {
                if version != self.scheme.version() {
                    return;
                }
                self.handle_snack(ctx, req_from, target, item, &bits, pairwise_mac.as_ref());
            }
            Message::Data {
                version,
                item,
                index,
                payload,
            } => {
                if version != self.scheme.version() {
                    return;
                }
                self.handle_data(ctx, from, item, index, &payload);
            }
            Message::Signature { version, body } => {
                if version != self.scheme.version() {
                    return;
                }
                // Equivalent to item 0, packet 0.
                self.handle_data(ctx, from, 0, 0, &body);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
        match timer {
            TIMER_TRICKLE_FIRE if !self.trickle.suppress() && self.state == State::Maintain => {
                let msg = Message::adv(&self.key, ctx.id, self.scheme.version(), self.level());
                ctx.broadcast(PacketKind::Adv, msg.to_bytes());
                self.stats.advs_sent += 1;
            }
            TIMER_TRICKLE_END => {
                self.trickle.interval_expired();
                self.start_trickle_interval(ctx);
            }
            TIMER_SNACK => self.send_snack(ctx),
            TIMER_RETRY => {
                if let State::Rx { server, retries } = self.state {
                    if retries + 1 >= self.cfg.retry_limit {
                        self.stats.gave_up += 1;
                        self.leave_rx(ctx);
                        self.reset_trickle(ctx);
                    } else {
                        // Keep the same server for a few retries; rotating
                        // on every retry would duplicate service across
                        // senders. Rotate on every third fruitless retry.
                        let next = if (retries + 1) % 3 == 0 {
                            self.pick_server(ctx).unwrap_or(server)
                        } else {
                            server
                        };
                        self.state = State::Rx {
                            server: next,
                            retries: retries + 1,
                        };
                        let delay = Duration::from_micros(ctx.rng().gen_range(1_000u64..20_000));
                        ctx.set_timer(TIMER_SNACK, delay);
                    }
                }
            }
            TIMER_TX => self.tx_step(ctx),
            _ => {}
        }
    }

    fn is_complete(&self) -> bool {
        self.done()
    }

    fn on_reboot(&mut self, ctx: &mut Context<'_>) {
        // RAM dies with the crash: engine state, the neighbor table and
        // reception buffers are gone; the scheme keeps whatever its
        // flash model persists. Stats and crypto-cost counters survive
        // deliberately — they are run observability, not node state.
        self.scheme.reboot();
        self.policy.clear();
        self.state = State::Maintain;
        self.trickle = Trickle::new(self.cfg.trickle);
        self.neighbors.clear();
        self.served.clear();
        self.suppress_count = 0;
        self.fast_rerequests = (0, 3);
        self.awaiting_reply = false;
        self.on_init(ctx);
    }

    fn progress(&self) -> u64 {
        // Level in the high bits; packets buffered toward the next item
        // in the low bits. Any accepted packet or completed item raises
        // it, which is what the simulator's stall watchdog samples.
        let level = u64::from(self.level());
        let held = if self.done() {
            0
        } else {
            let item = self.level();
            u64::from(self.scheme.item_packets(item)) - self.scheme.wanted(item).count_ones() as u64
        };
        (level << 32) | held
    }

    fn diagnostic(&self) -> String {
        let total = self.scheme.num_items();
        if self.done() {
            return format!("level={total}/{total} complete");
        }
        let item = self.level();
        let bits = self.scheme.wanted(item);
        let wanted: String = (0..bits.len())
            .map(|i| if bits.get(i) { '1' } else { '0' })
            .collect();
        format!(
            "level={item}/{total} state={:?} wanted[{item}]={wanted}",
            self.state
        )
    }
}

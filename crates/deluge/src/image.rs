//! Plain Deluge image layout and its [`Scheme`] implementation.
//!
//! Deluge divides the code image into fixed-size pages of `k` packets of
//! `payload_len` bytes each (§II-A). There is no authentication: any
//! packet with the right coordinates is stored, which is exactly the
//! weakness Seluge/LR-Seluge address (and which the adversarial
//! experiments demonstrate).

use crate::engine::{PacketDisposition, Scheme};
use crate::wire::BitVec;
use lrs_netsim::node::PacketKind;

/// Static layout parameters, preloaded on every node (in real Deluge
/// they travel in the advertisement profile).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageParams {
    /// Code image version.
    pub version: u16,
    /// Original image length in bytes.
    pub image_len: usize,
    /// Packets per page (`k`).
    pub packets_per_page: u16,
    /// Payload bytes per packet.
    pub payload_len: usize,
}

impl ImageParams {
    /// Number of pages `g`.
    pub fn pages(&self) -> u16 {
        let cap = self.page_capacity();
        assert!(cap > 0, "page capacity must be positive");
        (self.image_len.div_ceil(cap)).max(1) as u16
    }

    /// Image bytes carried per page.
    pub fn page_capacity(&self) -> usize {
        self.packets_per_page as usize * self.payload_len
    }
}

/// A fully materialized image at the base station.
#[derive(Clone, Debug)]
pub struct DelugeImage {
    params: ImageParams,
    /// Image data zero-padded to `pages * page_capacity`.
    padded: Vec<u8>,
}

impl DelugeImage {
    /// Prepares an image for dissemination.
    ///
    /// # Panics
    ///
    /// Panics if `params.image_len` does not match `data.len()`.
    pub fn new(data: Vec<u8>, params: ImageParams) -> Self {
        assert_eq!(data.len(), params.image_len, "image length mismatch");
        let mut padded = data;
        padded.resize(params.pages() as usize * params.page_capacity(), 0);
        DelugeImage { params, padded }
    }

    /// Layout parameters.
    pub fn params(&self) -> ImageParams {
        self.params
    }

    /// The payload of packet `index` of `page`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn packet(&self, page: u16, index: u16) -> Vec<u8> {
        assert!(page < self.params.pages(), "page out of range");
        assert!(index < self.params.packets_per_page, "packet out of range");
        let off =
            page as usize * self.params.page_capacity() + index as usize * self.params.payload_len;
        self.padded[off..off + self.params.payload_len].to_vec()
    }

    /// The original (unpadded) image bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.padded[..self.params.image_len]
    }
}

/// Deluge's per-node transfer state. Items are pages.
#[derive(Clone, Debug)]
pub struct DelugeScheme {
    params: ImageParams,
    complete: u16,
    /// Concatenated payloads of complete pages.
    assembled: Vec<u8>,
    /// Packets of the page currently being received.
    current: Vec<Option<Vec<u8>>>,
}

impl DelugeScheme {
    /// The base-station side: starts with every page complete.
    pub fn base(image: &DelugeImage) -> Self {
        DelugeScheme {
            params: image.params(),
            complete: image.params().pages(),
            assembled: image.padded.clone(),
            current: Vec::new(),
        }
    }

    /// A receiver with no pages.
    pub fn receiver(params: ImageParams) -> Self {
        DelugeScheme {
            params,
            complete: 0,
            assembled: Vec::new(),
            current: vec![None; params.packets_per_page as usize],
        }
    }

    /// The reassembled image, once all pages are complete.
    pub fn image(&self) -> Option<Vec<u8>> {
        if self.complete == self.params.pages() {
            Some(self.assembled[..self.params.image_len].to_vec())
        } else {
            None
        }
    }

    /// Layout parameters.
    pub fn params(&self) -> ImageParams {
        self.params
    }
}

impl Scheme for DelugeScheme {
    fn version(&self) -> u16 {
        self.params.version
    }

    fn num_items(&self) -> u16 {
        self.params.pages()
    }

    fn item_packets(&self, _item: u16) -> u16 {
        self.params.packets_per_page
    }

    fn packets_needed(&self, _item: u16) -> u16 {
        self.params.packets_per_page
    }

    fn complete_items(&self) -> u16 {
        self.complete
    }

    fn handle_packet(&mut self, item: u16, index: u16, payload: &[u8]) -> PacketDisposition {
        debug_assert_eq!(item, self.complete, "engine only feeds the next item");
        if index >= self.params.packets_per_page || payload.len() != self.params.payload_len {
            return PacketDisposition::Rejected;
        }
        let slot = &mut self.current[index as usize];
        if slot.is_some() {
            return PacketDisposition::Duplicate;
        }
        *slot = Some(payload.to_vec());
        if self.current.iter().all(|s| s.is_some()) {
            for slot in &mut self.current {
                let packet = slot.take().expect("all present");
                self.assembled.extend_from_slice(&packet);
            }
            self.complete += 1;
        }
        PacketDisposition::Accepted
    }

    fn wanted(&self, item: u16) -> BitVec {
        debug_assert_eq!(item, self.complete);
        let mut bits = BitVec::zeros(self.params.packets_per_page as usize);
        for (i, slot) in self.current.iter().enumerate() {
            if slot.is_none() {
                bits.set(i, true);
            }
        }
        bits
    }

    fn packet_payload(&mut self, item: u16, index: u16) -> Option<Vec<u8>> {
        if item >= self.complete || index >= self.params.packets_per_page {
            return None;
        }
        let off =
            item as usize * self.params.page_capacity() + index as usize * self.params.payload_len;
        Some(self.assembled[off..off + self.params.payload_len].to_vec())
    }

    fn item_kind(&self, _item: u16) -> PacketKind {
        PacketKind::Data
    }

    fn reboot(&mut self) {
        // Completed pages live in `assembled` (flash); only the partially
        // received page is RAM and is lost.
        for slot in &mut self.current {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ImageParams {
        ImageParams {
            version: 1,
            image_len: 1000,
            packets_per_page: 4,
            payload_len: 64,
        }
    }

    fn test_image() -> DelugeImage {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        DelugeImage::new(data, params())
    }

    #[test]
    fn page_count() {
        // 1000 bytes / (4 * 64 = 256 per page) = 4 pages.
        assert_eq!(params().pages(), 4);
        let one_byte = ImageParams {
            image_len: 1,
            ..params()
        };
        assert_eq!(one_byte.pages(), 1);
    }

    #[test]
    fn base_scheme_serves_all_packets() {
        let img = test_image();
        let mut scheme = DelugeScheme::base(&img);
        assert_eq!(scheme.complete_items(), 4);
        for page in 0..4 {
            for idx in 0..4 {
                let p = scheme.packet_payload(page, idx).unwrap();
                assert_eq!(p, img.packet(page, idx));
            }
        }
        assert_eq!(scheme.image().unwrap(), img.bytes());
    }

    #[test]
    fn receiver_assembles_pages_in_order() {
        let img = test_image();
        let mut base = DelugeScheme::base(&img);
        let mut rx = DelugeScheme::receiver(params());
        assert_eq!(rx.complete_items(), 0);
        assert!(rx.image().is_none());
        for page in 0..4u16 {
            // Deliver out of packet order.
            for idx in [2u16, 0, 3, 1] {
                let payload = base.packet_payload(page, idx).unwrap();
                assert_eq!(
                    rx.handle_packet(page, idx, &payload),
                    PacketDisposition::Accepted
                );
            }
            assert_eq!(rx.complete_items(), page + 1);
        }
        assert_eq!(rx.image().unwrap(), img.bytes());
    }

    #[test]
    fn duplicates_and_malformed() {
        let img = test_image();
        let mut base = DelugeScheme::base(&img);
        let mut rx = DelugeScheme::receiver(params());
        let payload = base.packet_payload(0, 1).unwrap();
        assert_eq!(
            rx.handle_packet(0, 1, &payload),
            PacketDisposition::Accepted
        );
        assert_eq!(
            rx.handle_packet(0, 1, &payload),
            PacketDisposition::Duplicate
        );
        assert_eq!(
            rx.handle_packet(0, 9, &payload),
            PacketDisposition::Rejected,
            "index out of range"
        );
        assert_eq!(
            rx.handle_packet(0, 2, &payload[..10]),
            PacketDisposition::Rejected,
            "short payload"
        );
    }

    #[test]
    fn wanted_tracks_missing() {
        let img = test_image();
        let mut base = DelugeScheme::base(&img);
        let mut rx = DelugeScheme::receiver(params());
        assert_eq!(rx.wanted(0).count_ones(), 4);
        let payload = base.packet_payload(0, 2).unwrap();
        rx.handle_packet(0, 2, &payload);
        let w = rx.wanted(0);
        assert_eq!(w.count_ones(), 3);
        assert!(!w.get(2));
    }

    #[test]
    fn reboot_keeps_flash_pages_and_drops_the_partial_one() {
        let img = test_image();
        let mut base = DelugeScheme::base(&img);
        let mut rx = DelugeScheme::receiver(params());
        // Complete page 0, then half-fill page 1.
        for idx in 0..4 {
            let p = base.packet_payload(0, idx).unwrap();
            rx.handle_packet(0, idx, &p);
        }
        for idx in 0..2 {
            let p = base.packet_payload(1, idx).unwrap();
            rx.handle_packet(1, idx, &p);
        }
        assert_eq!(rx.wanted(1).count_ones(), 2);
        rx.reboot();
        assert_eq!(rx.complete_items(), 1, "flash page survives");
        assert_eq!(rx.wanted(1).count_ones(), 4, "RAM partial page lost");
        // The run still completes after the reboot.
        for page in 1..4 {
            for idx in 0..4 {
                let p = base.packet_payload(page, idx).unwrap();
                rx.handle_packet(page, idx, &p);
            }
        }
        assert_eq!(rx.image().unwrap(), img.bytes());
    }

    #[test]
    fn deluge_accepts_bogus_payloads() {
        // The insecure baseline stores anything of the right shape — the
        // vulnerability the secure schemes close.
        let mut rx = DelugeScheme::receiver(params());
        let bogus = vec![0xEE; 64];
        assert_eq!(rx.handle_packet(0, 0, &bogus), PacketDisposition::Accepted);
    }
}

//! Adversarial node behaviours for the attack-resilience experiments.
//!
//! The paper's threat model (§III) includes an adversary that injects
//! bogus code-image packets (to corrupt images or exhaust
//! receiver buffers/energy), floods forged signature packets (to force
//! expensive verifications), forges control traffic, and — as a
//! compromised insider — mounts the *denial-of-receipt* attack of §IV-E
//! by repeatedly SNACKing a victim with an all-ones bit vector.

use crate::wire::{BitVec, Message};
use lrs_crypto::cluster::ClusterKey;
use lrs_netsim::attack::{AttackEntry, AttackVector};
use lrs_netsim::node::{Context, NodeId, PacketKind, Protocol, TimerId};
use lrs_netsim::time::Duration;

/// The item a plan-built denial-of-receipt attacker requests (the first
/// code page under LR-Seluge's item numbering) — matching the attack
/// bin's historical choice so plan-driven runs reproduce it.
pub const DOR_ITEM: u16 = 2;

/// What the attacker injects.
#[derive(Clone, Debug)]
pub enum AttackKind {
    /// Data packets with plausible headers and random payloads, aimed at
    /// the highest level currently advertised by any victim.
    BogusData {
        /// Payload length to mimic.
        payload_len: usize,
        /// Packet index space to draw from.
        index_space: u16,
    },
    /// Forged signature packets (random bodies) to trigger expensive
    /// verifications — what the message-specific puzzle defends against.
    ForgedSignature {
        /// Body length to mimic.
        body_len: usize,
    },
    /// Forged advertisements claiming a high level, without knowing the
    /// cluster key.
    ForgedAdv,
    /// Denial-of-receipt (§IV-E): a *compromised insider* (holds the
    /// cluster key) repeatedly requests everything from a victim.
    DenialOfReceipt {
        /// The victim that will burn energy serving the requests.
        target: NodeId,
        /// Item to request.
        item: u16,
        /// Bit-vector width (the item's packet count).
        n_bits: usize,
    },
    /// Denial-of-receipt with *source spoofing*: each SNACK claims a
    /// different forged sender id, evading any per-neighbor budget that
    /// relies on the (unauthenticated) source field. LEAP pairwise MACs
    /// close exactly this hole.
    SpoofedDenialOfReceipt {
        /// The victim.
        target: NodeId,
        /// Item to request.
        item: u16,
        /// Bit-vector width.
        n_bits: usize,
        /// Pool of honest ids to impersonate.
        spoof_pool: u32,
    },
}

/// An attacking node.
#[derive(Debug)]
pub struct Attacker {
    kind: AttackKind,
    /// Injection period.
    interval: Duration,
    /// Cluster key, present only for insider attacks.
    key: Option<ClusterKey>,
    version: u16,
    /// Highest level overheard from honest advertisements.
    observed_level: u16,
    /// Optional packet-storm duty cycle `(on, off)`: injection happens
    /// only during the on-phase of each cycle.
    burst: Option<(Duration, Duration)>,
    /// Packets injected.
    pub injected: u64,
}

/// Scheme-specific constants an [`AttackPlan`](lrs_netsim::attack::AttackPlan)
/// entry needs to become a live [`Attacker`]: the plan itself stores only
/// scheme-agnostic placement and timing, so the same plan drives both the
/// LR-Seluge and Seluge factories.
#[derive(Clone, Debug)]
pub struct AttackerProfile {
    /// Data-payload length to mimic in bogus packets.
    pub payload_len: usize,
    /// Packet index space bogus data draws from.
    pub index_space: u16,
    /// Signature body length forged signatures mimic.
    pub sig_body_len: usize,
    /// SNACK bit-vector width (the item's packet count).
    pub n_bits: usize,
    /// Image version the attacker claims.
    pub version: u16,
    /// Cluster key, granted to insider vectors when present.
    pub cluster_key: Option<ClusterKey>,
}

const TIMER_INJECT: TimerId = TimerId(9);

impl Attacker {
    /// Creates an outsider attacker (no cluster key).
    pub fn outsider(kind: AttackKind, interval: Duration, version: u16) -> Self {
        Attacker {
            kind,
            interval,
            key: None,
            version,
            observed_level: 0,
            burst: None,
            injected: 0,
        }
    }

    /// Creates a compromised insider (holds the cluster key).
    pub fn insider(kind: AttackKind, interval: Duration, version: u16, key: ClusterKey) -> Self {
        Attacker {
            key: Some(key),
            ..Self::outsider(kind, interval, version)
        }
    }

    /// Restricts injection to a periodic packet-storm duty cycle: `on`
    /// of injection followed by `off` of silence, repeating. Bursty
    /// interference stresses loss recovery harder than the same packet
    /// budget spread evenly.
    pub fn with_burst(mut self, on: Duration, off: Duration) -> Self {
        self.burst = Some((on, off));
        self
    }

    /// Builds the attacker an [`AttackEntry`] describes, using
    /// `profile`'s scheme constants. Insider vectors get the cluster key
    /// when the profile carries one; an entry demanding insider power
    /// without a key degrades to an outsider, whose denial-of-receipt
    /// SNACKs are forged without the cluster MAC and inject nothing —
    /// the graceful outcome, not a panic.
    pub fn from_plan_entry(entry: &AttackEntry, profile: &AttackerProfile) -> Self {
        let kind = match entry.vector {
            AttackVector::BogusData => AttackKind::BogusData {
                payload_len: profile.payload_len,
                index_space: profile.index_space,
            },
            AttackVector::ForgedSignature => AttackKind::ForgedSignature {
                body_len: profile.sig_body_len,
            },
            AttackVector::ForgedAdv => AttackKind::ForgedAdv,
            AttackVector::DenialOfReceipt => AttackKind::DenialOfReceipt {
                target: entry.target,
                item: DOR_ITEM,
                n_bits: profile.n_bits,
            },
            AttackVector::SpoofedDenialOfReceipt => AttackKind::SpoofedDenialOfReceipt {
                target: entry.target,
                item: DOR_ITEM,
                n_bits: profile.n_bits,
                spoof_pool: entry.spoof_pool.max(1),
            },
        };
        let attacker = match (&profile.cluster_key, entry.vector.requires_insider()) {
            (Some(key), true) => {
                Attacker::insider(kind, entry.interval, profile.version, key.clone())
            }
            _ => Attacker::outsider(kind, entry.interval, profile.version),
        };
        match entry.burst {
            Some((on, off)) => attacker.with_burst(on, off),
            None => attacker,
        }
    }

    /// Whether the duty cycle allows injecting at `now`.
    fn burst_active(&self, now: lrs_netsim::time::SimTime) -> bool {
        match self.burst {
            None => true,
            Some((on, off)) => {
                let cycle = (on.as_micros() + off.as_micros()).max(1);
                now.as_micros() % cycle < on.as_micros()
            }
        }
    }

    fn forge(&mut self, ctx: &mut Context<'_>) -> Option<(PacketKind, Vec<u8>)> {
        match &self.kind {
            AttackKind::BogusData {
                payload_len,
                index_space,
            } => {
                let payload: Vec<u8> = (0..*payload_len).map(|_| ctx.rng().gen()).collect();
                let index = ctx.rng().gen_range(0..*index_space);
                let msg = Message::Data {
                    version: self.version,
                    item: self.observed_level,
                    index,
                    payload,
                };
                Some((PacketKind::Data, msg.to_bytes()))
            }
            AttackKind::ForgedSignature { body_len } => {
                let body: Vec<u8> = (0..*body_len).map(|_| ctx.rng().gen()).collect();
                let msg = Message::Data {
                    version: self.version,
                    item: 0,
                    index: 0,
                    payload: body,
                };
                Some((PacketKind::Signature, msg.to_bytes()))
            }
            AttackKind::ForgedAdv => {
                // No cluster key: fabricate a MAC-less advertisement (a
                // random tag) claiming a huge level.
                let fake_key = ClusterKey::derive(b"attacker guess", ctx.rng().gen());
                let msg = Message::adv(&fake_key, ctx.id, self.version, u16::MAX);
                Some((PacketKind::Adv, msg.to_bytes()))
            }
            AttackKind::DenialOfReceipt {
                target,
                item,
                n_bits,
            } => {
                let key = self.key.as_ref()?;
                let msg = Message::snack(
                    key,
                    ctx.id,
                    *target,
                    self.version,
                    *item,
                    BitVec::ones(*n_bits),
                );
                Some((PacketKind::Snack, msg.to_bytes()))
            }
            AttackKind::SpoofedDenialOfReceipt {
                target,
                item,
                n_bits,
                spoof_pool,
            } => {
                let key = self.key.as_ref()?;
                // Rotate through forged sender ids; the cluster-key MAC
                // still verifies because the insider holds the key.
                let spoofed = NodeId(self.injected as u32 % *spoof_pool);
                let msg = Message::snack(
                    key,
                    spoofed,
                    *target,
                    self.version,
                    *item,
                    BitVec::ones(*n_bits),
                );
                Some((PacketKind::Snack, msg.to_bytes()))
            }
        }
    }
}

impl Protocol for Attacker {
    fn on_init(&mut self, ctx: &mut Context<'_>) {
        // Start injecting after a short delay so honest traffic exists.
        ctx.set_timer(TIMER_INJECT, self.interval);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _from: NodeId, data: &[u8]) {
        // Track victim progress so bogus data targets the current item.
        if let Some(Message::Adv { level, .. }) = Message::from_bytes(data) {
            if level != u16::MAX {
                self.observed_level = self.observed_level.max(level);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
        if timer != TIMER_INJECT {
            return;
        }
        if self.burst_active(ctx.now) {
            if let Some((kind, bytes)) = self.forge(ctx) {
                ctx.broadcast(kind, bytes);
                self.injected += 1;
            }
        }
        ctx.set_timer(TIMER_INJECT, self.interval);
    }

    fn is_complete(&self) -> bool {
        // Attackers never gate run completion.
        true
    }
}

/// Wrapper that lets a simulation mix honest nodes and attackers.
pub enum MaybeAdversary<P> {
    /// An honest protocol node.
    Honest(P),
    /// An attacker.
    Attacker(Attacker),
}

impl<P> MaybeAdversary<P> {
    /// The honest node inside, if any.
    pub fn honest(&self) -> Option<&P> {
        match self {
            MaybeAdversary::Honest(p) => Some(p),
            MaybeAdversary::Attacker(_) => None,
        }
    }

    /// The attacker inside, if any.
    pub fn attacker(&self) -> Option<&Attacker> {
        match self {
            MaybeAdversary::Honest(_) => None,
            MaybeAdversary::Attacker(a) => Some(a),
        }
    }
}

impl<P: Protocol> Protocol for MaybeAdversary<P> {
    fn on_init(&mut self, ctx: &mut Context<'_>) {
        match self {
            MaybeAdversary::Honest(p) => p.on_init(ctx),
            MaybeAdversary::Attacker(a) => a.on_init(ctx),
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, from: NodeId, data: &[u8]) {
        match self {
            MaybeAdversary::Honest(p) => p.on_packet(ctx, from, data),
            MaybeAdversary::Attacker(a) => a.on_packet(ctx, from, data),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
        match self {
            MaybeAdversary::Honest(p) => p.on_timer(ctx, timer),
            MaybeAdversary::Attacker(a) => a.on_timer(ctx, timer),
        }
    }
    fn is_complete(&self) -> bool {
        match self {
            MaybeAdversary::Honest(p) => p.is_complete(),
            MaybeAdversary::Attacker(a) => a.is_complete(),
        }
    }
    fn on_reboot(&mut self, ctx: &mut Context<'_>) {
        match self {
            MaybeAdversary::Honest(p) => p.on_reboot(ctx),
            MaybeAdversary::Attacker(a) => a.on_reboot(ctx),
        }
    }
    fn progress(&self) -> u64 {
        match self {
            MaybeAdversary::Honest(p) => p.progress(),
            MaybeAdversary::Attacker(a) => a.progress(),
        }
    }
    fn diagnostic(&self) -> String {
        match self {
            MaybeAdversary::Honest(p) => p.diagnostic(),
            MaybeAdversary::Attacker(a) => a.diagnostic(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outsider_cannot_mount_denial_of_receipt() {
        let a = Attacker::outsider(
            AttackKind::DenialOfReceipt {
                target: NodeId(1),
                item: 0,
                n_bits: 8,
            },
            Duration::from_millis(100),
            1,
        );
        // forge() needs the cluster key; without it nothing is produced.
        // (Exercised indirectly: injected stays 0 after a timer fire.)
        assert!(a.key.is_none());
        assert_eq!(a.injected, 0);
    }

    #[test]
    fn burst_duty_cycle_gates_injection() {
        use lrs_netsim::time::SimTime;
        let a = Attacker::outsider(AttackKind::ForgedAdv, Duration::from_millis(50), 1)
            .with_burst(Duration::from_secs(1), Duration::from_secs(3));
        assert!(a.burst_active(SimTime(0)));
        assert!(a.burst_active(SimTime(999_999)));
        assert!(!a.burst_active(SimTime(1_000_000)));
        assert!(!a.burst_active(SimTime(3_999_999)));
        assert!(a.burst_active(SimTime(4_000_000)));
        // No duty cycle: always active.
        let b = Attacker::outsider(AttackKind::ForgedAdv, Duration::from_millis(50), 1);
        assert!(b.burst_active(SimTime(123_456_789)));
    }

    fn profile(key: Option<ClusterKey>) -> AttackerProfile {
        AttackerProfile {
            payload_len: 48,
            index_space: 24,
            sig_body_len: 64,
            n_bits: 24,
            version: 1,
            cluster_key: key,
        }
    }

    fn entry(vector: AttackVector) -> AttackEntry {
        AttackEntry {
            node: NodeId(7),
            vector,
            at: lrs_netsim::time::SimTime(0),
            interval: Duration::from_millis(250),
            burst: None,
            target: NodeId(3),
            spoof_pool: 0,
        }
    }

    #[test]
    fn plan_entry_builds_matching_kind_and_burst() {
        let mut e = entry(AttackVector::BogusData);
        e.burst = Some((Duration::from_secs(2), Duration::from_secs(5)));
        let a = Attacker::from_plan_entry(&e, &profile(None));
        assert!(matches!(
            a.kind,
            AttackKind::BogusData {
                payload_len: 48,
                index_space: 24
            }
        ));
        assert_eq!(
            a.burst,
            Some((Duration::from_secs(2), Duration::from_secs(5)))
        );
        assert_eq!(a.interval, Duration::from_millis(250));
        assert!(a.key.is_none());

        let a = Attacker::from_plan_entry(&entry(AttackVector::ForgedSignature), &profile(None));
        assert!(matches!(
            a.kind,
            AttackKind::ForgedSignature { body_len: 64 }
        ));
    }

    #[test]
    fn insider_vectors_take_the_key_and_outsiders_never_do() {
        let key = ClusterKey::derive(b"test", 0);
        let a = Attacker::from_plan_entry(
            &entry(AttackVector::DenialOfReceipt),
            &profile(Some(key.clone())),
        );
        assert!(a.key.is_some());
        assert!(matches!(
            a.kind,
            AttackKind::DenialOfReceipt {
                target: NodeId(3),
                item: DOR_ITEM,
                n_bits: 24,
            }
        ));
        // Outsider vectors never receive the key, even when available.
        let a = Attacker::from_plan_entry(&entry(AttackVector::ForgedAdv), &profile(Some(key)));
        assert!(a.key.is_none());
        // A keyless profile degrades insider vectors to outsiders.
        let a =
            Attacker::from_plan_entry(&entry(AttackVector::SpoofedDenialOfReceipt), &profile(None));
        assert!(a.key.is_none());
        // A zero spoof pool is clamped so the modulus never divides by 0.
        assert!(matches!(
            a.kind,
            AttackKind::SpoofedDenialOfReceipt { spoof_pool: 1, .. }
        ));
    }

    #[test]
    fn wrapper_dispatch() {
        let a = Attacker::outsider(AttackKind::ForgedAdv, Duration::from_millis(50), 1);
        let w: MaybeAdversary<Attacker> = MaybeAdversary::Attacker(a);
        assert!(w.attacker().is_some());
        assert!(w.honest().is_none());
        assert!(w.is_complete());
    }
}

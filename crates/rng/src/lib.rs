//! Deterministic pseudo-random generation without external crates.
//!
//! The workspace resolves dependencies offline, so it cannot pull in the
//! `rand` crate; this crate provides the small slice of its API the
//! simulator and tests actually use. The generator is xoshiro256++
//! (Blackman & Vigna, 2019) seeded through SplitMix64, which passes the
//! statistical batteries relevant to Monte-Carlo simulation and is
//! trivially reproducible across platforms — the per-seed event streams
//! of every experiment are bit-stable regardless of architecture or
//! thread count.
//!
//! This is NOT a cryptographic generator; the crypto substrate derives
//! its randomness from SHA-256 chains instead.

/// A deterministic pseudo-random number generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` with SplitMix64 (the seeding procedure the xoshiro authors
    /// recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed value of a primitive type (the `Sample`
    /// impls below). `f64` samples land in `[0, 1)`.
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen::<f64>() < p
    }

    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges, or a half-open `f64` range).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fills `dst` with uniform bytes.
    pub fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher-Yates shuffles `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

/// Types [`DetRng::gen`] can produce.
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut DetRng) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            #[inline]
            fn sample(rng: &mut DetRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize);

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`DetRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut DetRng) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire); the
/// residual bias of ~2⁻⁶⁴ is irrelevant at simulation scale and keeping
/// it rejection-free keeps every consumer's draw count predictable.
#[inline]
fn bounded(rng: &mut DetRng, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = rng.gen();
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_pinned() {
        // Pins the exact output stream: any change to seeding or the
        // generator invalidates every golden experiment file, so make it
        // loud.
        let mut r = DetRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = DetRng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        // Distinct values, none zero (probability ~0 for a healthy stream).
        assert!(first.iter().all(|&v| v != 0));
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = DetRng::seed_from_u64(7);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = DetRng::seed_from_u64(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let vi = r.gen_range(5u32..=7);
            assert!((5..=7).contains(&vi));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = DetRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniformity_rough_chi_square() {
        let mut r = DetRng::seed_from_u64(5);
        let mut buckets = [0u32; 16];
        let n = 160_000;
        for _ in 0..n {
            buckets[r.gen_range(0usize..16)] += 1;
        }
        let expect = (n / 16) as f64;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (b as f64 - expect).abs() < expect * 0.05,
                "bucket {i}: {b} vs {expect}"
            );
        }
    }

    #[test]
    fn fill_bytes_varies() {
        let mut r = DetRng::seed_from_u64(1);
        let mut a = [0u8; 37];
        let mut b = [0u8; 37];
        r.fill_bytes(&mut a);
        r.fill_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed_from_u64(2);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = DetRng::seed_from_u64(0);
        let _ = r.gen_range(5u64..5);
    }
}

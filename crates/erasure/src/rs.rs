//! Systematic Reed-Solomon erasure code over GF(2⁸).
//!
//! The generator matrix is derived from an `n × k` Vandermonde matrix `V`
//! by normalizing its top `k × k` block to the identity:
//! `A = V · (V_top)⁻¹`. Any `k` rows of `A` remain linearly independent
//! (row selection commutes with the right-multiplication), so the code is
//! MDS: any `k' = k` encoded blocks recover the page. The first `k`
//! encoded blocks equal the source blocks, which lets intermediate nodes
//! that already decoded a page re-encode it cheaply (paper §IV-D-3: a TX
//! node "applies the same erasure code f" before serving SNACKs).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::gf256::{slice_mul_add_accumulate, Gf};
use crate::matrix::Matrix;
use crate::{check_decode_input, CodeError, ErasureCode};

/// Default bound on the number of cached inverted decode matrices.
///
/// A cached entry is `k × k` bytes plus the key; at the paper's
/// `k = 32` that is ~1 KiB per entry, so the default bound costs at
/// most a few hundred KiB while covering far more erasure patterns
/// than a sim run typically produces.
pub const DEFAULT_DECODE_CACHE_CAPACITY: usize = 256;

/// Bounded LRU map from a received-index set to the inverted generator
/// submatrix for that set.
#[derive(Debug, Default)]
struct DecodeCache {
    /// key → (last-touch stamp, inverse). Indices fit in `u8` (n ≤ 255).
    map: HashMap<Box<[u8]>, (u64, Arc<Matrix>)>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

/// A systematic `(k, n)` Reed-Solomon code with `k' = k`.
///
/// Cloning shares the decode-matrix cache: all clones of one instance
/// (e.g. the per-node schemes of a sim run) reuse each other's inverted
/// matrices. The cache only short-circuits Gauss-Jordan elimination —
/// decoded bytes are identical with the cache on, off, warm, or cold.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
    /// The systematic generator matrix (n × k); top k rows are identity.
    generator: Matrix,
    /// LRU of inverted decode matrices keyed by the received-index set.
    cache: Arc<Mutex<DecodeCache>>,
    cache_capacity: usize,
}

impl ReedSolomon {
    /// Constructs the code with [`DEFAULT_DECODE_CACHE_CAPACITY`].
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadParameters`] unless `1 ≤ k ≤ n ≤ 255`.
    pub fn new(k: usize, n: usize) -> Result<Self, CodeError> {
        Self::with_cache_capacity(k, n, DEFAULT_DECODE_CACHE_CAPACITY)
    }

    /// Constructs the code with an explicit decode-matrix cache bound.
    /// A capacity of 0 disables caching (every parity decode re-inverts).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadParameters`] unless `1 ≤ k ≤ n ≤ 255`.
    pub fn with_cache_capacity(k: usize, n: usize, capacity: usize) -> Result<Self, CodeError> {
        if k == 0 || n < k || n > 255 {
            return Err(CodeError::BadParameters { k, n });
        }
        let v = Matrix::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverse()
            .expect("top Vandermonde block is always invertible");
        let generator = v.mul(&top_inv);
        Ok(ReedSolomon {
            k,
            n,
            generator,
            cache: Arc::new(Mutex::new(DecodeCache::default())),
            cache_capacity: capacity,
        })
    }

    /// The systematic generator matrix row for encoded block `idx`.
    fn gen_row(&self, idx: usize) -> &[Gf] {
        self.generator.row(idx)
    }

    /// Decode-matrix cache counters `(hits, misses)` since construction.
    pub fn cache_counters(&self) -> (u64, u64) {
        // Poison-tolerant: the cache is pure memoization, so state left
        // by a panicking thread (e.g. a crashed shard worker) is still
        // coherent and safe to read.
        let c = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        (c.hits, c.misses)
    }

    /// The inverted generator submatrix for the given (sorted, distinct)
    /// row indices, from cache when warm.
    fn inverse_for(&self, indices: &[usize]) -> Arc<Matrix> {
        let invert =
            || {
                Arc::new(self.generator.select_rows(indices).inverse().expect(
                    "any k rows of a systematic Vandermonde-derived matrix are independent",
                ))
            };
        if self.cache_capacity == 0 {
            return invert();
        }
        let key: Box<[u8]> = indices.iter().map(|&i| i as u8).collect();
        // Poison-tolerant for the same reason as `cache_counters`: every
        // mutation below leaves the map consistent at each step, so a
        // panicked holder cannot have left it half-updated in a way that
        // matters for a memo table.
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        cache.stamp += 1;
        let stamp = cache.stamp;
        if let Some((touched, inv)) = cache.map.get_mut(&key) {
            *touched = stamp;
            let inv = Arc::clone(inv);
            cache.hits += 1;
            return inv;
        }
        cache.misses += 1;
        let inv = invert();
        if cache.map.len() >= self.cache_capacity {
            if let Some(oldest) = cache
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                cache.map.remove(&oldest);
            }
        }
        cache.map.insert(key, (stamp, Arc::clone(&inv)));
        inv
    }

    /// Picks the `k`-row subset to decode from: systematic blocks first.
    ///
    /// Systematic indices (`< k`) sort before parity ones, so an
    /// ascending sort + truncate prefers them explicitly; whenever ≥ k
    /// systematic blocks are present — however interleaved with parity
    /// blocks in the input — the chosen subset is exactly `0..k` and the
    /// identity fast path applies. Any full-rank choice decodes to the
    /// same bytes (the code is MDS), so this only affects speed.
    fn choose_rows<'a>(&self, blocks: &[(usize, &'a [u8])]) -> Vec<(usize, &'a [u8])> {
        let mut chosen: Vec<(usize, &'a [u8])> = blocks.to_vec();
        chosen.sort_unstable_by_key(|(idx, _)| *idx);
        chosen.truncate(self.k);
        chosen
    }
}

impl ErasureCode for ReedSolomon {
    fn k(&self) -> usize {
        self.k
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k_prime(&self) -> usize {
        self.k
    }

    fn encode(&self, blocks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        if blocks.len() != self.k {
            return Err(CodeError::BadInput(format!(
                "expected {} source blocks, got {}",
                self.k,
                blocks.len()
            )));
        }
        let block_len = blocks[0].len();
        if blocks.iter().any(|b| b.len() != block_len) {
            return Err(CodeError::BadInput(
                "source blocks have unequal lengths".into(),
            ));
        }
        let mut out = Vec::with_capacity(self.n);
        // Systematic part: identity rows.
        out.extend(blocks.iter().cloned());
        // Parity part: each parity row is one fused generator-row
        // product over all k sources.
        let srcs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        for r in self.k..self.n {
            let mut acc = vec![0u8; block_len];
            slice_mul_add_accumulate(&mut acc, self.gen_row(r), &srcs);
            out.push(acc);
        }
        Ok(out)
    }

    fn decode_refs(
        &self,
        blocks: &[(usize, &[u8])],
        block_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        check_decode_input(blocks, self.n, block_len)?;
        if blocks.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                have: blocks.len(),
                need: self.k,
            });
        }
        let chosen = self.choose_rows(blocks);

        // Fast path: all k systematic blocks present (indices are
        // distinct and all < k, hence exactly 0..k in order).
        if chosen.last().is_some_and(|(idx, _)| *idx < self.k) {
            return Ok(chosen.into_iter().map(|(_, b)| b.to_vec()).collect());
        }

        let indices: Vec<usize> = chosen.iter().map(|(idx, _)| *idx).collect();
        let inv = self.inverse_for(&indices);
        let srcs: Vec<&[u8]> = chosen.iter().map(|(_, data)| *data).collect();
        let mut out = Vec::with_capacity(self.k);
        for r in 0..self.k {
            let mut acc = vec![0u8; block_len];
            slice_mul_add_accumulate(&mut acc, inv.row(r), &srcs);
            out.push(acc);
        }
        Ok(out)
    }

    fn decode_into(
        &self,
        blocks: &[(usize, &[u8])],
        block_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        check_decode_input(blocks, self.n, block_len)?;
        if blocks.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                have: blocks.len(),
                need: self.k,
            });
        }
        let chosen = self.choose_rows(blocks);
        out.clear();
        out.resize(self.k * block_len, 0);
        if block_len == 0 {
            return Ok(());
        }

        if chosen.last().is_some_and(|(idx, _)| *idx < self.k) {
            for (dst, (_, src)) in out.chunks_exact_mut(block_len).zip(&chosen) {
                dst.copy_from_slice(src);
            }
            return Ok(());
        }

        let indices: Vec<usize> = chosen.iter().map(|(idx, _)| *idx).collect();
        let inv = self.inverse_for(&indices);
        let srcs: Vec<&[u8]> = chosen.iter().map(|(_, data)| *data).collect();
        for (r, acc) in out.chunks_exact_mut(block_len).enumerate() {
            slice_mul_add_accumulate(acc, inv.row(r), &srcs);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blocks(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn systematic_prefix() {
        let code = ReedSolomon::new(4, 8).unwrap();
        let blocks = sample_blocks(4, 32);
        let enc = code.encode(&blocks).unwrap();
        assert_eq!(enc.len(), 8);
        assert_eq!(&enc[..4], &blocks[..]);
    }

    #[test]
    fn decode_from_any_k_subset_small() {
        let code = ReedSolomon::new(3, 6).unwrap();
        let blocks = sample_blocks(3, 10);
        let enc = code.encode(&blocks).unwrap();
        // Every 3-subset of 6 indices.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let subset: Vec<(usize, Vec<u8>)> =
                        [a, b, c].iter().map(|&i| (i, enc[i].clone())).collect();
                    let dec = code.decode(&subset, 10).unwrap();
                    assert_eq!(dec, blocks, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn paper_parameters_roundtrip() {
        // The paper's defaults: k = 32, n up to 64; k0 = 8, n0 = 16.
        for (k, n) in [(32usize, 48usize), (32, 64), (8, 16), (3, 6)] {
            let code = ReedSolomon::new(k, n).unwrap();
            let blocks = sample_blocks(k, 72);
            let enc = code.encode(&blocks).unwrap();
            // Take the last k blocks (worst case: all parity where possible).
            let subset: Vec<(usize, Vec<u8>)> = (n - k..n).map(|i| (i, enc[i].clone())).collect();
            assert_eq!(code.decode(&subset, 72).unwrap(), blocks, "k={k} n={n}");
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(5, 4).is_err());
        assert!(ReedSolomon::new(10, 256).is_err());
        assert!(ReedSolomon::new(1, 1).is_ok());
        assert!(ReedSolomon::new(255, 255).is_ok());
    }

    #[test]
    fn rejects_bad_inputs() {
        let code = ReedSolomon::new(3, 5).unwrap();
        assert!(code.encode(&sample_blocks(2, 8)).is_err());
        let mut uneven = sample_blocks(3, 8);
        uneven[1].push(0);
        assert!(code.encode(&uneven).is_err());
        let enc = code.encode(&sample_blocks(3, 8)).unwrap();
        let too_few: Vec<(usize, Vec<u8>)> = vec![(0, enc[0].clone()), (1, enc[1].clone())];
        assert!(matches!(
            code.decode(&too_few, 8),
            Err(CodeError::NotEnoughBlocks { have: 2, need: 3 })
        ));
    }

    #[test]
    fn encoding_is_deterministic_across_instances() {
        // Two independently constructed instances must agree (paper §IV-B:
        // all nodes hold "the same instance" of f).
        let a = ReedSolomon::new(16, 24).unwrap();
        let b = ReedSolomon::new(16, 24).unwrap();
        let blocks = sample_blocks(16, 40);
        assert_eq!(a.encode(&blocks).unwrap(), b.encode(&blocks).unwrap());
    }

    #[test]
    fn reencode_after_decode_matches() {
        // An intermediate node decodes from parity blocks, then re-encodes;
        // the regenerated packets must be byte-identical (their hash images
        // were fixed at preprocessing time).
        let code = ReedSolomon::new(8, 12).unwrap();
        let blocks = sample_blocks(8, 20);
        let enc = code.encode(&blocks).unwrap();
        let subset: Vec<(usize, Vec<u8>)> = (4..12).map(|i| (i, enc[i].clone())).collect();
        let dec = code.decode(&subset, 20).unwrap();
        assert_eq!(code.encode(&dec).unwrap(), enc);
    }

    #[test]
    fn roundtrip_random_erasures() {
        // Sampled geometries and erasure patterns under a fixed seed.
        let mut rng = lrs_rng::DetRng::seed_from_u64(0x5253_7274);
        for _ in 0..64 {
            let k = rng.gen_range(1usize..20);
            let n = k + rng.gen_range(0usize..20);
            let len = rng.gen_range(1usize..64);
            let code = ReedSolomon::new(k, n).unwrap();
            let blocks: Vec<Vec<u8>> = (0..k)
                .map(|_| {
                    let mut b = vec![0u8; len];
                    rng.fill_bytes(&mut b);
                    b
                })
                .collect();
            let enc = code.encode(&blocks).unwrap();
            // Choose a pseudo-random k-subset of indices.
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            let subset: Vec<(usize, Vec<u8>)> =
                order[..k].iter().map(|&i| (i, enc[i].clone())).collect();
            assert_eq!(
                code.decode(&subset, len).unwrap(),
                blocks,
                "k={k} n={n} len={len}"
            );
        }
    }

    #[test]
    fn paper_points_survive_any_max_erasure_pattern() {
        // Erase any n−k blocks at the paper's operating points and decode
        // from the survivors. Random subsets sampled per point keep the
        // debug-build runtime bounded while still crossing systematic and
        // parity positions.
        let mut rng = lrs_rng::DetRng::seed_from_u64(0x6b_6e_70);
        for (k, n) in [(32usize, 48usize), (32, 64), (8, 16), (3, 6)] {
            let code = ReedSolomon::new(k, n).unwrap();
            let blocks = sample_blocks(k, 48);
            let enc = code.encode(&blocks).unwrap();
            let trials = if n - k <= 3 { usize::MAX } else { 40 };
            if trials == usize::MAX {
                // Small enough to enumerate every k-subset via bitmasks.
                for mask in 0u32..(1 << n) {
                    if mask.count_ones() as usize != k {
                        continue;
                    }
                    let subset: Vec<(usize, Vec<u8>)> = (0..n)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| (i, enc[i].clone()))
                        .collect();
                    assert_eq!(
                        code.decode(&subset, 48).unwrap(),
                        blocks,
                        "k={k} n={n} mask={mask:b}"
                    );
                }
            } else {
                for _ in 0..trials {
                    let mut order: Vec<usize> = (0..n).collect();
                    rng.shuffle(&mut order);
                    let subset: Vec<(usize, Vec<u8>)> =
                        order[..k].iter().map(|&i| (i, enc[i].clone())).collect();
                    assert_eq!(code.decode(&subset, 48).unwrap(), blocks, "k={k} n={n}");
                }
            }
        }
    }
}

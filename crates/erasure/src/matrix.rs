//! Dense matrices over GF(2⁸) with Gaussian elimination.
//!
//! Used to build the systematic Reed-Solomon generator matrix and to
//! invert the received-row submatrix during decoding.

use crate::gf256::{slice_mul_add_assign, slice_scale, Gf};
use crate::CodeError;

/// Reinterprets a row of field elements as raw bytes so row operations
/// can go through the dispatched slice kernels. Sound because `Gf` is
/// `repr(transparent)` over `u8`.
#[inline]
fn row_bytes_mut(row: &mut [Gf]) -> &mut [u8] {
    // SAFETY: `Gf` is `#[repr(transparent)]` over `u8`, so the slices
    // have identical layout, and the lifetime is inherited from `row`.
    unsafe { std::slice::from_raw_parts_mut(row.as_mut_ptr() as *mut u8, row.len()) }
}

/// Shared-reference variant of [`row_bytes_mut`].
#[inline]
fn row_bytes(row: &[Gf]) -> &[u8] {
    // SAFETY: as in `row_bytes_mut`.
    unsafe { std::slice::from_raw_parts(row.as_ptr() as *const u8, row.len()) }
}

/// A dense row-major matrix over GF(256).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Gf::ZERO; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, Gf::ONE);
        }
        m
    }

    /// Builds a Vandermonde matrix with `rows` rows over evaluation
    /// points `g^0, g^1, …` (all distinct for rows ≤ 255).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let g = Gf::generator();
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            let x = g.pow(r as u32);
            for c in 0..cols {
                m.set(r, c, x.pow(c as u32));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Gf {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Gf) {
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[Gf] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix multiply");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a == Gf::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur.add(a.mul(rhs.get(l, j))));
                }
            }
        }
        out
    }

    /// Returns a new matrix made of the selected rows.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zero(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            for c in 0..self.cols {
                out.set(dst, c, self.get(src, c));
            }
        }
        out
    }

    /// Inverts a square matrix by Gauss-Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadInput`] if the matrix is singular or not
    /// square.
    pub fn inverse(&self) -> Result<Matrix, CodeError> {
        if self.rows != self.cols {
            return Err(CodeError::BadInput(format!(
                "cannot invert {}x{} matrix",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n)
                .find(|&r| a.get(r, col) != Gf::ZERO)
                .ok_or_else(|| CodeError::BadInput("singular matrix".to_string()))?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a.get(col, col);
            let pinv = p.inv();
            a.scale_row(col, pinv);
            inv.scale_row(col, pinv);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor != Gf::ZERO {
                    a.add_scaled_row(r, col, factor);
                    inv.add_scaled_row(r, col, factor);
                }
            }
        }
        Ok(inv)
    }

    /// A mutable view of row `r`.
    fn row_mut(&mut self, r: usize) -> &mut [Gf] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Disjoint mutable views of rows `a` and `b` (`a != b`).
    fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [Gf], &mut [Gf]) {
        debug_assert_ne!(a, b);
        let (lo, hi) = (a.min(b), a.max(b));
        let cols = self.cols;
        let (head, tail) = self.data.split_at_mut(hi * cols);
        let lo_row = &mut head[lo * cols..(lo + 1) * cols];
        let hi_row = &mut tail[..cols];
        if a < b {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        let (a, b) = self.two_rows_mut(r1, r2);
        a.swap_with_slice(b);
    }

    fn scale_row(&mut self, r: usize, factor: Gf) {
        slice_scale(row_bytes_mut(self.row_mut(r)), factor);
    }

    /// row[dst] += factor * row[src]
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: Gf) {
        if factor == Gf::ZERO {
            return;
        }
        let (d, s) = self.two_rows_mut(dst, src);
        slice_mul_add_assign(row_bytes_mut(d), factor, row_bytes(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let v = Matrix::vandermonde(4, 4);
        let i = Matrix::identity(4);
        assert_eq!(v.mul(&i), v);
        assert_eq!(i.mul(&v), v);
    }

    #[test]
    fn vandermonde_square_invertible() {
        for n in 1..=16usize {
            let v = Matrix::vandermonde(n, n);
            let inv = v
                .inverse()
                .expect("Vandermonde with distinct points is invertible");
            assert_eq!(v.mul(&inv), Matrix::identity(n), "n={n}");
            assert_eq!(inv.mul(&v), Matrix::identity(n), "n={n}");
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut m = Matrix::zero(3, 3);
        // Two identical rows.
        for c in 0..3 {
            m.set(0, c, Gf(c as u8 + 1));
            m.set(1, c, Gf(c as u8 + 1));
            m.set(2, c, Gf(7));
        }
        assert!(m.inverse().is_err());
    }

    #[test]
    fn non_square_inverse_rejected() {
        let m = Matrix::zero(2, 3);
        assert!(m.inverse().is_err());
    }

    #[test]
    fn select_rows_picks_rows() {
        let v = Matrix::vandermonde(5, 3);
        let s = v.select_rows(&[4, 0, 2]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(0));
        assert_eq!(s.row(2), v.row(2));
    }

    #[test]
    fn random_vandermonde_row_subsets_invertible() {
        // Any k distinct rows of a Vandermonde matrix over distinct
        // points form an invertible matrix.
        let mut rng = lrs_rng::DetRng::seed_from_u64(0x7664_6d31);
        for _ in 0..256 {
            let n = rng.gen_range(2usize..24);
            let k = (n / 2).max(1);
            let v = Matrix::vandermonde(n, k);
            let mut rows: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut rows);
            rows.truncate(k);
            let sub = v.select_rows(&rows);
            assert!(sub.inverse().is_ok(), "n={n} rows={rows:?}");
        }
    }
}

//! A random-XOR fixed-rate code with small reception overhead.
//!
//! This models the Tornado/LT-style codes the paper surveys in §II-C:
//! XOR-only encoding/decoding (attractive on 8-bit motes) at the price of
//! a reception threshold `k' > k`. Parity block `i ≥ k` is the XOR of a
//! pseudo-random subset of source blocks derived deterministically from
//! `i`, so every node generates identical encoded blocks (required for
//! hash chaining). Decoding is Gaussian elimination over GF(2).
//!
//! Unlike the MDS [`crate::ReedSolomon`], decoding from exactly `k`
//! blocks can fail (rank deficiency); `k'` is sized so that decoding from
//! `k'` random blocks succeeds with high probability, and the
//! dissemination protocol simply keeps requesting packets on failure.

use crate::gf256::slice_add_assign;
use crate::{check_decode_input, CodeError, ErasureCode};

/// Reception overhead added to `k` to obtain `k'`.
///
/// With dense random parities, `k + c` random rows are full rank with
/// probability about `1 − 2^{−(c+1)}`; 4 extra blocks give ≈ 97 %.
pub const DEFAULT_OVERHEAD: usize = 4;

/// A systematic `(k, n)` random-XOR code with `k' = k + overhead`.
#[derive(Clone, Debug)]
pub struct SparseXor {
    k: usize,
    n: usize,
    overhead: usize,
    /// Coefficient bitmask (over source blocks) for each encoded block.
    coeffs: Vec<Vec<u64>>,
}

impl SparseXor {
    /// Constructs the code with [`DEFAULT_OVERHEAD`].
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadParameters`] unless `1 ≤ k ≤ n ≤ 255`.
    pub fn new(k: usize, n: usize) -> Result<Self, CodeError> {
        Self::with_overhead(k, n, DEFAULT_OVERHEAD)
    }

    /// Constructs the code with an explicit reception overhead.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadParameters`] unless `1 ≤ k ≤ n ≤ 255`.
    pub fn with_overhead(k: usize, n: usize, overhead: usize) -> Result<Self, CodeError> {
        if k == 0 || n < k || n > 255 {
            return Err(CodeError::BadParameters { k, n });
        }
        let words = k.div_ceil(64);
        let mut coeffs = Vec::with_capacity(n);
        for i in 0..n {
            let mut mask = vec![0u64; words];
            if i < k {
                mask[i / 64] = 1u64 << (i % 64);
            } else {
                // Dense pseudo-random parity row from a splitmix64 stream
                // keyed by the block index; guaranteed nonzero.
                let mut s = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ 0x5ee1_0de5;
                loop {
                    for w in mask.iter_mut() {
                        s = s.wrapping_add(0x9e3779b97f4a7c15);
                        let mut z = s;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                        *w = z ^ (z >> 31);
                    }
                    // Clear bits beyond k.
                    let spare = words * 64 - k;
                    if spare > 0 {
                        let last = mask.last_mut().expect("k >= 1 implies words >= 1");
                        *last &= u64::MAX >> spare;
                    }
                    if mask.iter().any(|w| *w != 0) {
                        break;
                    }
                }
            }
            coeffs.push(mask);
        }
        Ok(SparseXor {
            k,
            n,
            overhead,
            coeffs,
        })
    }

    /// The coefficient bitmask for encoded block `idx`.
    fn mask(&self, idx: usize) -> &[u64] {
        &self.coeffs[idx]
    }
}

impl ErasureCode for SparseXor {
    fn k(&self) -> usize {
        self.k
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k_prime(&self) -> usize {
        (self.k + self.overhead).min(self.n)
    }

    fn encode(&self, blocks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        if blocks.len() != self.k {
            return Err(CodeError::BadInput(format!(
                "expected {} source blocks, got {}",
                self.k,
                blocks.len()
            )));
        }
        let block_len = blocks[0].len();
        if blocks.iter().any(|b| b.len() != block_len) {
            return Err(CodeError::BadInput(
                "source blocks have unequal lengths".into(),
            ));
        }
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.n {
            if i < self.k {
                out.push(blocks[i].clone());
                continue;
            }
            let mut acc = vec![0u8; block_len];
            let mask = self.mask(i);
            for (j, block) in blocks.iter().enumerate() {
                if mask[j / 64] >> (j % 64) & 1 == 1 {
                    slice_add_assign(&mut acc, block);
                }
            }
            out.push(acc);
        }
        Ok(out)
    }

    fn decode_refs(
        &self,
        blocks: &[(usize, &[u8])],
        block_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        check_decode_input(blocks, self.n, block_len)?;
        if blocks.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                have: blocks.len(),
                need: self.k_prime(),
            });
        }
        // Gaussian elimination over GF(2) on (mask, data) rows.
        let mut rows: Vec<(Vec<u64>, Vec<u8>)> = blocks
            .iter()
            .map(|(idx, data)| (self.mask(*idx).to_vec(), data.to_vec()))
            .collect();
        // pivot_of[col] = row index holding the pivot for that column.
        let mut pivot_of: Vec<Option<usize>> = vec![None; self.k];
        let mut next_row = 0usize;
        for (col, pivot) in pivot_of.iter_mut().enumerate() {
            let Some(found) =
                (next_row..rows.len()).find(|&r| rows[r].0[col / 64] >> (col % 64) & 1 == 1)
            else {
                continue;
            };
            rows.swap(next_row, found);
            // Eliminate this column from every other row.
            let (pivot_mask, pivot_data) = {
                let r = &rows[next_row];
                (r.0.clone(), r.1.clone())
            };
            for (r, row) in rows.iter_mut().enumerate() {
                if r != next_row && row.0[col / 64] >> (col % 64) & 1 == 1 {
                    for (rw, &pw) in row.0.iter_mut().zip(&pivot_mask) {
                        *rw ^= pw;
                    }
                    slice_add_assign(&mut row.1, &pivot_data);
                }
            }
            *pivot = Some(next_row);
            next_row += 1;
        }
        if pivot_of.iter().any(|p| p.is_none()) {
            let rank = pivot_of.iter().filter(|p| p.is_some()).count();
            return Err(CodeError::NotEnoughBlocks {
                have: rank,
                need: self.k_prime(),
            });
        }
        let mut out = Vec::with_capacity(self.k);
        for pivot in &pivot_of {
            let r = pivot.expect("checked above");
            out.push(rows[r].1.clone());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blocks(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 37 + j * 11 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn systematic_prefix() {
        let code = SparseXor::new(4, 10).unwrap();
        let blocks = sample_blocks(4, 16);
        let enc = code.encode(&blocks).unwrap();
        assert_eq!(&enc[..4], &blocks[..]);
    }

    #[test]
    fn decode_from_systematic() {
        let code = SparseXor::new(5, 12).unwrap();
        let blocks = sample_blocks(5, 8);
        let enc = code.encode(&blocks).unwrap();
        let subset: Vec<(usize, Vec<u8>)> = (0..5).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&subset, 8).unwrap(), blocks);
    }

    #[test]
    fn decode_from_parity_only_with_overhead() {
        let code = SparseXor::new(8, 32).unwrap();
        let blocks = sample_blocks(8, 24);
        let enc = code.encode(&blocks).unwrap();
        // Give it k' parity blocks; dense random rows make this succeed
        // for this fixed deterministic construction.
        let kp = code.k_prime();
        let subset: Vec<(usize, Vec<u8>)> = (8..8 + kp).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&subset, 24).unwrap(), blocks);
    }

    #[test]
    fn k_prime_capped_at_n() {
        let code = SparseXor::with_overhead(4, 5, 4).unwrap();
        assert_eq!(code.k_prime(), 5);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = SparseXor::new(16, 32).unwrap();
        let b = SparseXor::new(16, 32).unwrap();
        let blocks = sample_blocks(16, 12);
        assert_eq!(a.encode(&blocks).unwrap(), b.encode(&blocks).unwrap());
    }

    #[test]
    fn rank_deficiency_reported() {
        let code = SparseXor::new(4, 12).unwrap();
        let blocks = sample_blocks(4, 8);
        let enc = code.encode(&blocks).unwrap();
        // Fewer than k blocks can never decode.
        let subset: Vec<(usize, Vec<u8>)> = (0..3).map(|i| (i, enc[i].clone())).collect();
        assert!(matches!(
            code.decode(&subset, 8),
            Err(CodeError::NotEnoughBlocks { .. })
        ));
    }

    #[test]
    fn large_k_crossing_word_boundary() {
        // k > 64 exercises multi-word masks.
        let code = SparseXor::new(70, 100).unwrap();
        let blocks = sample_blocks(70, 4);
        let enc = code.encode(&blocks).unwrap();
        let kp = code.k_prime();
        let subset: Vec<(usize, Vec<u8>)> = (100 - kp..100).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&subset, 4).unwrap(), blocks);
    }

    #[test]
    fn roundtrip_random_subsets_of_kprime() {
        let mut rng = lrs_rng::DetRng::seed_from_u64(0x7370_7273);
        for _ in 0..48 {
            let k = rng.gen_range(1usize..24);
            let n = k + rng.gen_range(6usize..24);
            let code = SparseXor::new(k, n).unwrap();
            let blocks = sample_blocks(k, 16);
            let enc = code.encode(&blocks).unwrap();
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            let take = code.k_prime().min(n);
            let subset: Vec<(usize, Vec<u8>)> =
                order[..take].iter().map(|&i| (i, enc[i].clone())).collect();
            // With k' = k + 4 random blocks this succeeds with prob ≈ 97 %;
            // on the rare rank-deficient draw, adding the remaining blocks
            // must succeed (the full set always has rank k).
            match code.decode(&subset, 16) {
                Ok(dec) => assert_eq!(dec, blocks, "k={k} n={n}"),
                Err(CodeError::NotEnoughBlocks { .. }) => {
                    let all: Vec<(usize, Vec<u8>)> = (0..n).map(|i| (i, enc[i].clone())).collect();
                    assert_eq!(code.decode(&all, 16).unwrap(), blocks, "k={k} n={n}");
                }
                Err(e) => panic!("unexpected error {e} (k={k} n={n})"),
            }
        }
    }
}

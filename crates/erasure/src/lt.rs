//! A capped LT code (Luby, FOCS 2002) with a robust-soliton degree
//! distribution and a peeling (belief-propagation) decoder.
//!
//! LT codes are the rateless family the paper surveys in §II-C and the
//! reason LR-Seluge exists: rateless packets cannot be pre-authenticated,
//! so LR-Seluge caps the packet space at `n` predetermined symbols. This
//! implementation does exactly that — the first `k` symbols are the
//! systematic source blocks and the remaining `n − k` are LT parity
//! symbols drawn deterministically (per symbol index) from the robust
//! soliton distribution, so every node regenerates identical packets.
//! Decoding is O(edges) peeling instead of Gaussian elimination, which
//! is the property that made LT attractive on motes; the price is a
//! probabilistic reception threshold `k' > k`.

use crate::gf256::slice_add_assign;
use crate::{check_decode_input, CodeError, ErasureCode};

/// A systematic, capped LT code.
#[derive(Clone, Debug)]
pub struct Lt {
    k: usize,
    n: usize,
    /// Neighbor sets of the parity symbols (indices into the k sources).
    parity_neighbors: Vec<Vec<usize>>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Robust-soliton degree CDF for `k` source symbols.
fn robust_soliton_cdf(k: usize) -> Vec<f64> {
    let kf = k as f64;
    let c = 0.1f64;
    let delta = 0.5f64;
    let s = (c * (kf / delta).ln() * kf.sqrt()).max(1.0);
    let pivot = (kf / s).round().max(1.0) as usize;
    let mut weights = vec![0.0f64; k + 1];
    for (d, w) in weights.iter_mut().enumerate().skip(1) {
        // Ideal soliton.
        *w = if d == 1 {
            1.0 / kf
        } else {
            1.0 / (d as f64 * (d as f64 - 1.0))
        };
        // Robust correction tau.
        if d < pivot {
            *w += s / (kf * d as f64);
        } else if d == pivot {
            *w += s * (s / delta).ln() / kf;
        }
    }
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(k);
    let mut acc = 0.0;
    for w in &weights[1..] {
        acc += w / total;
        cdf.push(acc);
    }
    cdf
}

impl Lt {
    /// Constructs the code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadParameters`] unless `1 ≤ k ≤ n ≤ 255`.
    pub fn new(k: usize, n: usize) -> Result<Self, CodeError> {
        if k == 0 || n < k || n > 255 {
            return Err(CodeError::BadParameters { k, n });
        }
        let cdf = robust_soliton_cdf(k);
        let mut parity_neighbors = Vec::with_capacity(n - k);
        for i in k..n {
            let mut state = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ 0x17_2a9e;
            // Sample a degree from the robust soliton CDF.
            let u = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            let degree = cdf.iter().position(|&c| u <= c).map_or(k, |d| d + 1);
            // Sample `degree` distinct neighbors (partial Fisher-Yates).
            let mut pool: Vec<usize> = (0..k).collect();
            for j in 0..degree.min(k) {
                let pick = j + (splitmix(&mut state) as usize) % (k - j);
                pool.swap(j, pick);
            }
            let mut neighbors = pool[..degree.min(k)].to_vec();
            neighbors.sort_unstable();
            parity_neighbors.push(neighbors);
        }
        Ok(Lt {
            k,
            n,
            parity_neighbors,
        })
    }

    /// Neighbor set of encoded symbol `idx` (singleton for systematic).
    fn neighbors(&self, idx: usize) -> Vec<usize> {
        if idx < self.k {
            vec![idx]
        } else {
            self.parity_neighbors[idx - self.k].clone()
        }
    }

    /// Mean parity degree (diagnostic; ~`ln k` for soliton-like codes).
    pub fn mean_parity_degree(&self) -> f64 {
        if self.parity_neighbors.is_empty() {
            return 0.0;
        }
        self.parity_neighbors.iter().map(|n| n.len()).sum::<usize>() as f64
            / self.parity_neighbors.len() as f64
    }
}

impl ErasureCode for Lt {
    fn k(&self) -> usize {
        self.k
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k_prime(&self) -> usize {
        // Peeling needs a reception overhead; 15 % + 2 symbols is a
        // practical envelope for soliton codes at these block counts.
        ((self.k * 115).div_ceil(100) + 2).min(self.n)
    }

    fn encode(&self, blocks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        if blocks.len() != self.k {
            return Err(CodeError::BadInput(format!(
                "expected {} source blocks, got {}",
                self.k,
                blocks.len()
            )));
        }
        let block_len = blocks[0].len();
        if blocks.iter().any(|b| b.len() != block_len) {
            return Err(CodeError::BadInput(
                "source blocks have unequal lengths".into(),
            ));
        }
        let mut out: Vec<Vec<u8>> = blocks.to_vec();
        for neighbors in &self.parity_neighbors {
            let mut acc = vec![0u8; block_len];
            for &j in neighbors {
                slice_add_assign(&mut acc, &blocks[j]);
            }
            out.push(acc);
        }
        Ok(out)
    }

    fn decode_refs(
        &self,
        blocks: &[(usize, &[u8])],
        block_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        check_decode_input(blocks, self.n, block_len)?;
        if blocks.len() < self.k {
            return Err(CodeError::NotEnoughBlocks {
                have: blocks.len(),
                need: self.k_prime(),
            });
        }
        // Peeling decoder: maintain each received symbol's unresolved
        // neighbor set; repeatedly release degree-1 symbols.
        let mut decoded: Vec<Option<Vec<u8>>> = vec![None; self.k];
        let mut symbols: Vec<(Vec<usize>, Vec<u8>)> = blocks
            .iter()
            .map(|(idx, data)| (self.neighbors(*idx), data.to_vec()))
            .collect();
        // Source index -> symbol positions that reference it.
        let mut uses: Vec<Vec<usize>> = vec![Vec::new(); self.k];
        for (pos, (nbrs, _)) in symbols.iter().enumerate() {
            for &j in nbrs {
                uses[j].push(pos);
            }
        }
        let mut ripple: Vec<usize> = symbols
            .iter()
            .enumerate()
            .filter(|(_, (nbrs, _))| nbrs.len() == 1)
            .map(|(pos, _)| pos)
            .collect();
        let mut resolved = 0usize;
        while let Some(pos) = ripple.pop() {
            let (nbrs, data) = {
                let entry = &symbols[pos];
                (entry.0.clone(), entry.1.clone())
            };
            if nbrs.len() != 1 {
                continue; // already reduced further by another release
            }
            let src = nbrs[0];
            if decoded[src].is_some() {
                continue;
            }
            decoded[src] = Some(data.clone());
            resolved += 1;
            // Subtract the resolved source from every symbol using it.
            for &other in &uses[src] {
                if other == pos {
                    continue;
                }
                let entry = &mut symbols[other];
                if let Some(i) = entry.0.iter().position(|&j| j == src) {
                    entry.0.swap_remove(i);
                    slice_add_assign(&mut entry.1, &data);
                    if entry.0.len() == 1 {
                        ripple.push(other);
                    }
                }
            }
        }
        if resolved < self.k {
            return Err(CodeError::NotEnoughBlocks {
                have: resolved,
                need: self.k_prime(),
            });
        }
        Ok(decoded.into_iter().map(|d| d.expect("resolved")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blocks(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 89 + j * 7 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn systematic_prefix() {
        let code = Lt::new(8, 24).unwrap();
        let blocks = sample_blocks(8, 16);
        let enc = code.encode(&blocks).unwrap();
        assert_eq!(&enc[..8], &blocks[..]);
        assert_eq!(enc.len(), 24);
    }

    #[test]
    fn decode_from_systematic() {
        let code = Lt::new(8, 24).unwrap();
        let blocks = sample_blocks(8, 16);
        let enc = code.encode(&blocks).unwrap();
        let subset: Vec<(usize, Vec<u8>)> = (0..8).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&subset, 16).unwrap(), blocks);
    }

    #[test]
    fn decode_from_mixed_subsets() {
        let code = Lt::new(16, 48).unwrap();
        let blocks = sample_blocks(16, 12);
        let enc = code.encode(&blocks).unwrap();
        let mut successes = 0;
        let trials = 40;
        for seed in 0..trials {
            // Pseudo-random k' subset.
            let mut order: Vec<usize> = (0..48).collect();
            let mut s = seed as u64 + 1;
            for i in (1..order.len()).rev() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                order.swap(i, (s >> 33) as usize % (i + 1));
            }
            let take = code.k_prime();
            let subset: Vec<(usize, Vec<u8>)> =
                order[..take].iter().map(|&i| (i, enc[i].clone())).collect();
            match code.decode(&subset, 12) {
                Ok(dec) => {
                    assert_eq!(dec, blocks, "seed {seed}");
                    successes += 1;
                }
                Err(CodeError::NotEnoughBlocks { .. }) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // Peeling from k' random symbols succeeds most of the time.
        assert!(
            successes * 2 > trials,
            "peeling succeeded only {successes}/{trials}"
        );
    }

    #[test]
    fn full_reception_always_decodes() {
        let code = Lt::new(12, 36).unwrap();
        let blocks = sample_blocks(12, 8);
        let enc = code.encode(&blocks).unwrap();
        let all: Vec<(usize, Vec<u8>)> = (0..36).map(|i| (i, enc[i].clone())).collect();
        assert_eq!(code.decode(&all, 8).unwrap(), blocks);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = Lt::new(16, 40).unwrap();
        let b = Lt::new(16, 40).unwrap();
        let blocks = sample_blocks(16, 10);
        assert_eq!(a.encode(&blocks).unwrap(), b.encode(&blocks).unwrap());
    }

    #[test]
    fn degree_distribution_sane() {
        let code = Lt::new(64, 192).unwrap();
        let mean = code.mean_parity_degree();
        // Robust soliton mean degree is O(ln k); for k = 64 expect
        // something in the low-to-mid single digits up to ~15.
        assert!((1.5..=20.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn insufficient_symbols_reported() {
        let code = Lt::new(8, 24).unwrap();
        let blocks = sample_blocks(8, 16);
        let enc = code.encode(&blocks).unwrap();
        let subset: Vec<(usize, Vec<u8>)> = (8..14).map(|i| (i, enc[i].clone())).collect();
        assert!(matches!(
            code.decode(&subset, 16),
            Err(CodeError::NotEnoughBlocks { .. })
        ));
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(Lt::new(0, 10).is_err());
        assert!(Lt::new(10, 5).is_err());
        assert!(Lt::new(10, 300).is_err());
    }
}

//! GF(2⁸) arithmetic with log/exp tables.
//!
//! The field is constructed over the AES/Rijndael reduction polynomial
//! `x⁸ + x⁴ + x³ + x + 1` (0x11b) with generator 3. Multiplication and
//! division go through precomputed log/exp tables, which is how the
//! original mote implementations made Reed-Solomon affordable on 8-bit
//! microcontrollers.

/// A GF(2⁸) field element.
///
/// `repr(transparent)` guarantees `Gf` has the exact layout of `u8`, so
/// slices of field elements (matrix rows) can be reinterpreted as byte
/// slices and routed through the [`crate::kernel`] slice kernels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Gf(pub u8);

/// Log/exp tables for the field, built once.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().take(255).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u8;
            // Multiply by the generator 3 = x + 1: t = x*2 ^ x, reduced.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= 0x11b;
            }
        }
        // Extend exp to avoid a mod 255 in mul.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

// The arithmetic methods intentionally shadow the `std::ops` names:
// GF(256) "addition" is XOR and callers chain them by value, so the
// inherent methods stay explicit rather than overloading operators.
#[allow(clippy::should_implement_trait)]
impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// Field addition (XOR).
    #[inline]
    pub fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }

    /// Field subtraction (identical to addition in characteristic 2).
    #[inline]
    pub fn sub(self, rhs: Gf) -> Gf {
        self.add(rhs)
    }

    /// Field multiplication via log/exp tables.
    #[inline]
    pub fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    pub fn div(self, rhs: Gf) -> Gf {
        assert!(rhs.0 != 0, "GF(256) division by zero");
        if self.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = 255 + t.log[self.0 as usize] as usize - t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[inline]
    pub fn inv(self) -> Gf {
        Gf::ONE.div(self)
    }

    /// `self^e` (with `0^0 = 1`).
    pub fn pow(self, mut e: u32) -> Gf {
        let mut result = Gf::ONE;
        let mut base = self;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        result
    }

    /// The field generator used to build the tables (3).
    pub fn generator() -> Gf {
        Gf(3)
    }
}

/// Full 256 × 256 multiplication table: `MUL[c][b] = c · b`.
///
/// 64 KiB, built lazily on first use. A slice operation loads the one
/// 256-byte row for its coefficient and turns every byte into a single
/// branch-free lookup, instead of the two log lookups + add + exp lookup
/// (plus a zero test) of the log/exp path.
struct MulTable {
    rows: Box<[[u8; 256]; 256]>,
}

fn mul_table() -> &'static MulTable {
    use std::sync::OnceLock;
    static MUL: OnceLock<MulTable> = OnceLock::new();
    MUL.get_or_init(|| {
        let t = tables();
        let mut rows = vec![[0u8; 256]; 256].into_boxed_slice();
        for (c, row) in rows.iter_mut().enumerate().skip(1) {
            let log_c = t.log[c] as usize;
            for (b, out) in row.iter_mut().enumerate().skip(1) {
                *out = t.exp[log_c + t.log[b] as usize];
            }
        }
        let rows: Box<[[u8; 256]; 256]> = rows.try_into().expect("256 rows");
        MulTable { rows }
    })
}

/// The 256-entry multiplication row for `coeff`: `row[b] = coeff · b`.
#[inline]
pub(crate) fn mul_row(coeff: Gf) -> &'static [u8; 256] {
    &mul_table().rows[coeff.0 as usize]
}

/// 4-bit split tables for the shuffle kernels: for each coefficient `c`,
/// 32 bytes laid out as `lo ‖ hi` with `lo[i] = c · i` and
/// `hi[i] = c · (i << 4)`, so `c · b = lo[b & 0xf] ⊕ hi[b >> 4]`
/// (distributivity over the nibble split of `b`). Each 16-byte half is
/// exactly one `PSHUFB` lookup table. 8 KiB total, built lazily from the
/// full multiplication table.
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
struct NibTable {
    rows: Box<[[u8; 32]; 256]>,
}

#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
fn nib_table() -> &'static NibTable {
    use std::sync::OnceLock;
    static NIB: OnceLock<NibTable> = OnceLock::new();
    NIB.get_or_init(|| {
        let mul = &mul_table().rows;
        let mut rows = vec![[0u8; 32]; 256].into_boxed_slice();
        for (c, row) in rows.iter_mut().enumerate() {
            for i in 0..16 {
                row[i] = mul[c][i];
                row[16 + i] = mul[c][i << 4];
            }
        }
        let rows: Box<[[u8; 32]; 256]> = rows.try_into().expect("256 rows");
        NibTable { rows }
    })
}

/// The low/high nibble lookup tables for `coeff` (`lo` in bytes 0..16,
/// `hi` in bytes 16..32).
#[inline]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
pub(crate) fn nib_row(coeff: Gf) -> &'static [u8; 32] {
    &nib_table().rows[coeff.0 as usize]
}

/// XORs `src` into `dst` (vector addition over GF(256)), via the
/// process-wide kernel selected by [`crate::kernel::Kernel::active`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn slice_add_assign(dst: &mut [u8], src: &[u8]) {
    crate::kernel::add_assign(crate::kernel::Kernel::active(), dst, src);
}

/// Adds `coeff * src` into `dst` (the row operation of RS encoding and
/// Gaussian elimination), via the process-wide kernel selected by
/// [`crate::kernel::Kernel::active`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn slice_mul_add_assign(dst: &mut [u8], coeff: Gf, src: &[u8]) {
    crate::kernel::mul_add_assign(crate::kernel::Kernel::active(), dst, coeff, src);
}

/// Adds `Σ coeffs[i] * srcs[i]` into `dst` — one whole generator-row
/// product, fused so kernel dispatch and table setup are paid once per
/// output row rather than once per source (see
/// [`crate::kernel::mul_add_accumulate`]).
///
/// # Panics
///
/// Panics if `coeffs` and `srcs` have different lengths or any source
/// length differs from `dst`'s.
pub fn slice_mul_add_accumulate(dst: &mut [u8], coeffs: &[Gf], srcs: &[&[u8]]) {
    crate::kernel::mul_add_accumulate(crate::kernel::Kernel::active(), dst, coeffs, srcs);
}

/// Multiplies every byte of `buf` by `coeff` in place, via the
/// process-wide kernel selected by [`crate::kernel::Kernel::active`].
pub fn slice_scale(buf: &mut [u8], coeff: Gf) {
    crate::kernel::scale(crate::kernel::Kernel::active(), buf, coeff);
}

/// Scalar reference implementation of [`slice_mul_add_assign`] (the
/// original per-byte log/exp loop). Kept for equivalence property tests
/// and kernel microbenchmarks; not used on the hot path.
pub fn slice_mul_add_assign_scalar(dst: &mut [u8], coeff: Gf, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if coeff.0 == 0 {
        return;
    }
    if coeff.0 == 1 {
        slice_add_assign(dst, src);
        return;
    }
    let t = tables();
    let log_c = t.log[coeff.0 as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[log_c + t.log[*s as usize] as usize];
        }
    }
}

/// Scalar reference implementation of [`slice_scale`]. Kept for
/// equivalence property tests and kernel microbenchmarks.
pub fn slice_scale_scalar(buf: &mut [u8], coeff: Gf) {
    if coeff.0 == 1 {
        return;
    }
    for b in buf.iter_mut() {
        *b = Gf(*b).mul(coeff).0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference multiplication: carry-less shift-and-xor with reduction.
    fn slow_mul(a: u8, b: u8) -> u8 {
        let mut acc: u16 = 0;
        let mut a16 = a as u16;
        let mut b8 = b;
        while b8 > 0 {
            if b8 & 1 == 1 {
                acc ^= a16;
            }
            a16 <<= 1;
            if a16 & 0x100 != 0 {
                a16 ^= 0x11b;
            }
            b8 >>= 1;
        }
        acc as u8
    }

    #[test]
    fn table_mul_matches_slow_mul_exhaustive() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf(a).mul(Gf(b)).0, slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverses_exhaustive() {
        for a in 1..=255u8 {
            let inv = Gf(a).inv();
            assert_eq!(Gf(a).mul(inv), Gf::ONE, "a={a}");
        }
    }

    #[test]
    fn generator_has_full_order() {
        let g = Gf::generator();
        let mut seen = [false; 256];
        let mut x = Gf::ONE;
        for _ in 0..255 {
            assert!(!seen[x.0 as usize], "generator order < 255");
            seen[x.0 as usize] = true;
            x = x.mul(g);
        }
        assert_eq!(x, Gf::ONE);
    }

    #[test]
    fn pow_consistency() {
        let g = Gf::generator();
        assert_eq!(g.pow(0), Gf::ONE);
        assert_eq!(g.pow(1), g);
        assert_eq!(g.pow(255), Gf::ONE);
        assert_eq!(g.pow(256), g);
        assert_eq!(Gf::ZERO.pow(0), Gf::ONE);
        assert_eq!(Gf::ZERO.pow(3), Gf::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf(5).div(Gf::ZERO);
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn nibble_split_reconstructs_full_table() {
        for c in 0..=255u8 {
            let nib = nib_row(Gf(c));
            let (lo, hi) = nib.split_at(16);
            for b in 0..=255u8 {
                assert_eq!(
                    lo[(b & 0x0f) as usize] ^ hi[(b >> 4) as usize],
                    Gf(c).mul(Gf(b)).0,
                    "c={c} b={b}"
                );
            }
        }
    }

    #[test]
    fn slice_ops_match_scalar_ops() {
        let a: Vec<u8> = (0..=255u8).collect();
        let b: Vec<u8> = (0..=255u8).rev().collect();
        let mut dst = a.clone();
        slice_mul_add_assign(&mut dst, Gf(0x53), &b);
        for i in 0..256 {
            assert_eq!(Gf(dst[i]), Gf(a[i]).add(Gf(0x53).mul(Gf(b[i]))));
        }
        let mut scaled = a.clone();
        slice_scale(&mut scaled, Gf(0xca));
        for i in 0..256 {
            assert_eq!(Gf(scaled[i]), Gf(a[i]).mul(Gf(0xca)));
        }
    }

    #[test]
    fn pairwise_axioms_exhaustive() {
        // Every pairwise law holds over all 65 536 element pairs.
        for ai in 0..=255u8 {
            for bi in 0..=255u8 {
                let (a, b) = (Gf(ai), Gf(bi));
                // Commutativity.
                assert_eq!(a.mul(b), b.mul(a), "mul comm a={ai} b={bi}");
                assert_eq!(a.add(b), b.add(a), "add comm a={ai} b={bi}");
                // Identities.
                assert_eq!(a.mul(Gf::ONE), a);
                assert_eq!(a.add(Gf::ZERO), a);
                // Additive inverse (characteristic 2).
                assert_eq!(a.add(a), Gf::ZERO);
                // Division is multiplication by the inverse.
                if bi != 0 {
                    assert_eq!(a.div(b), a.mul(b.inv()), "div a={ai} b={bi}");
                    assert_eq!(a.div(b).mul(b), a, "div roundtrip a={ai} b={bi}");
                }
            }
        }
    }

    #[test]
    fn triple_axioms_sampled() {
        // Associativity and distributivity need triples; exhausting
        // 2^24 of them is slow in debug builds, so sample broadly with
        // a fixed-seed generator instead.
        let mut rng = lrs_rng::DetRng::seed_from_u64(0x6f25_6f25);
        for _ in 0..200_000 {
            let (a, b, c) = (Gf(rng.gen()), Gf(rng.gen()), Gf(rng.gen()));
            assert_eq!(
                a.mul(b).mul(c),
                a.mul(b.mul(c)),
                "mul assoc {a:?} {b:?} {c:?}"
            );
            assert_eq!(
                a.add(b).add(c),
                a.add(b.add(c)),
                "add assoc {a:?} {b:?} {c:?}"
            );
            assert_eq!(
                a.mul(b.add(c)),
                a.mul(b).add(a.mul(c)),
                "distributivity {a:?} {b:?} {c:?}"
            );
        }
    }
}

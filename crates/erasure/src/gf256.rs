//! GF(2⁸) arithmetic with log/exp tables.
//!
//! The field is constructed over the AES/Rijndael reduction polynomial
//! `x⁸ + x⁴ + x³ + x + 1` (0x11b) with generator 3. Multiplication and
//! division go through precomputed log/exp tables, which is how the
//! original mote implementations made Reed-Solomon affordable on 8-bit
//! microcontrollers.

/// A GF(2⁸) field element.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug, PartialOrd, Ord)]
pub struct Gf(pub u8);

/// Log/exp tables for the field, built once.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().take(255).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u8;
            // Multiply by the generator 3 = x + 1: t = x*2 ^ x, reduced.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= 0x11b;
            }
        }
        // Extend exp to avoid a mod 255 in mul.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

// The arithmetic methods intentionally shadow the `std::ops` names:
// GF(256) "addition" is XOR and callers chain them by value, so the
// inherent methods stay explicit rather than overloading operators.
#[allow(clippy::should_implement_trait)]
impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// Field addition (XOR).
    #[inline]
    pub fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }

    /// Field subtraction (identical to addition in characteristic 2).
    #[inline]
    pub fn sub(self, rhs: Gf) -> Gf {
        self.add(rhs)
    }

    /// Field multiplication via log/exp tables.
    #[inline]
    pub fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    pub fn div(self, rhs: Gf) -> Gf {
        assert!(rhs.0 != 0, "GF(256) division by zero");
        if self.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = 255 + t.log[self.0 as usize] as usize - t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[inline]
    pub fn inv(self) -> Gf {
        Gf::ONE.div(self)
    }

    /// `self^e` (with `0^0 = 1`).
    pub fn pow(self, mut e: u32) -> Gf {
        let mut result = Gf::ONE;
        let mut base = self;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        result
    }

    /// The field generator used to build the tables (3).
    pub fn generator() -> Gf {
        Gf(3)
    }
}

/// Full 256 × 256 multiplication table: `MUL[c][b] = c · b`.
///
/// 64 KiB, built lazily on first use. A slice operation loads the one
/// 256-byte row for its coefficient and turns every byte into a single
/// branch-free lookup, instead of the two log lookups + add + exp lookup
/// (plus a zero test) of the log/exp path.
struct MulTable {
    rows: Box<[[u8; 256]; 256]>,
}

fn mul_table() -> &'static MulTable {
    use std::sync::OnceLock;
    static MUL: OnceLock<MulTable> = OnceLock::new();
    MUL.get_or_init(|| {
        let t = tables();
        let mut rows = vec![[0u8; 256]; 256].into_boxed_slice();
        for (c, row) in rows.iter_mut().enumerate().skip(1) {
            let log_c = t.log[c] as usize;
            for (b, out) in row.iter_mut().enumerate().skip(1) {
                *out = t.exp[log_c + t.log[b] as usize];
            }
        }
        let rows: Box<[[u8; 256]; 256]> = rows.try_into().expect("256 rows");
        MulTable { rows }
    })
}

/// The 256-entry multiplication row for `coeff`: `row[b] = coeff · b`.
#[inline]
pub(crate) fn mul_row(coeff: Gf) -> &'static [u8; 256] {
    &mul_table().rows[coeff.0 as usize]
}

/// XORs `src` into `dst` (vector addition over GF(256)).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn slice_add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Adds `coeff * src` into `dst` (the row operation of RS encoding and
/// Gaussian elimination), via the per-coefficient multiplication row.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn slice_mul_add_assign(dst: &mut [u8], coeff: Gf, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if coeff.0 == 0 {
        return;
    }
    if coeff.0 == 1 {
        slice_add_assign(dst, src);
        return;
    }
    let row = mul_row(coeff);
    // Unrolled 8-byte chunks keep the single-row lookups pipelined.
    let mut d_chunks = dst.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (d, s) in d_chunks.by_ref().zip(s_chunks.by_ref()) {
        d[0] ^= row[s[0] as usize];
        d[1] ^= row[s[1] as usize];
        d[2] ^= row[s[2] as usize];
        d[3] ^= row[s[3] as usize];
        d[4] ^= row[s[4] as usize];
        d[5] ^= row[s[5] as usize];
        d[6] ^= row[s[6] as usize];
        d[7] ^= row[s[7] as usize];
    }
    for (d, s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *d ^= row[*s as usize];
    }
}

/// Multiplies every byte of `buf` by `coeff` in place, via the
/// per-coefficient multiplication row.
pub fn slice_scale(buf: &mut [u8], coeff: Gf) {
    if coeff.0 == 1 {
        return;
    }
    let row = mul_row(coeff);
    let mut chunks = buf.chunks_exact_mut(8);
    for b in chunks.by_ref() {
        b[0] = row[b[0] as usize];
        b[1] = row[b[1] as usize];
        b[2] = row[b[2] as usize];
        b[3] = row[b[3] as usize];
        b[4] = row[b[4] as usize];
        b[5] = row[b[5] as usize];
        b[6] = row[b[6] as usize];
        b[7] = row[b[7] as usize];
    }
    for b in chunks.into_remainder() {
        *b = row[*b as usize];
    }
}

/// Scalar reference implementation of [`slice_mul_add_assign`] (the
/// original per-byte log/exp loop). Kept for equivalence property tests
/// and kernel microbenchmarks; not used on the hot path.
pub fn slice_mul_add_assign_scalar(dst: &mut [u8], coeff: Gf, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if coeff.0 == 0 {
        return;
    }
    if coeff.0 == 1 {
        slice_add_assign(dst, src);
        return;
    }
    let t = tables();
    let log_c = t.log[coeff.0 as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[log_c + t.log[*s as usize] as usize];
        }
    }
}

/// Scalar reference implementation of [`slice_scale`]. Kept for
/// equivalence property tests and kernel microbenchmarks.
pub fn slice_scale_scalar(buf: &mut [u8], coeff: Gf) {
    if coeff.0 == 1 {
        return;
    }
    for b in buf.iter_mut() {
        *b = Gf(*b).mul(coeff).0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference multiplication: carry-less shift-and-xor with reduction.
    fn slow_mul(a: u8, b: u8) -> u8 {
        let mut acc: u16 = 0;
        let mut a16 = a as u16;
        let mut b8 = b;
        while b8 > 0 {
            if b8 & 1 == 1 {
                acc ^= a16;
            }
            a16 <<= 1;
            if a16 & 0x100 != 0 {
                a16 ^= 0x11b;
            }
            b8 >>= 1;
        }
        acc as u8
    }

    #[test]
    fn table_mul_matches_slow_mul_exhaustive() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf(a).mul(Gf(b)).0, slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverses_exhaustive() {
        for a in 1..=255u8 {
            let inv = Gf(a).inv();
            assert_eq!(Gf(a).mul(inv), Gf::ONE, "a={a}");
        }
    }

    #[test]
    fn generator_has_full_order() {
        let g = Gf::generator();
        let mut seen = [false; 256];
        let mut x = Gf::ONE;
        for _ in 0..255 {
            assert!(!seen[x.0 as usize], "generator order < 255");
            seen[x.0 as usize] = true;
            x = x.mul(g);
        }
        assert_eq!(x, Gf::ONE);
    }

    #[test]
    fn pow_consistency() {
        let g = Gf::generator();
        assert_eq!(g.pow(0), Gf::ONE);
        assert_eq!(g.pow(1), g);
        assert_eq!(g.pow(255), Gf::ONE);
        assert_eq!(g.pow(256), g);
        assert_eq!(Gf::ZERO.pow(0), Gf::ONE);
        assert_eq!(Gf::ZERO.pow(3), Gf::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf(5).div(Gf::ZERO);
    }

    #[test]
    fn slice_ops_match_scalar_ops() {
        let a: Vec<u8> = (0..=255u8).collect();
        let b: Vec<u8> = (0..=255u8).rev().collect();
        let mut dst = a.clone();
        slice_mul_add_assign(&mut dst, Gf(0x53), &b);
        for i in 0..256 {
            assert_eq!(Gf(dst[i]), Gf(a[i]).add(Gf(0x53).mul(Gf(b[i]))));
        }
        let mut scaled = a.clone();
        slice_scale(&mut scaled, Gf(0xca));
        for i in 0..256 {
            assert_eq!(Gf(scaled[i]), Gf(a[i]).mul(Gf(0xca)));
        }
    }

    #[test]
    fn pairwise_axioms_exhaustive() {
        // Every pairwise law holds over all 65 536 element pairs.
        for ai in 0..=255u8 {
            for bi in 0..=255u8 {
                let (a, b) = (Gf(ai), Gf(bi));
                // Commutativity.
                assert_eq!(a.mul(b), b.mul(a), "mul comm a={ai} b={bi}");
                assert_eq!(a.add(b), b.add(a), "add comm a={ai} b={bi}");
                // Identities.
                assert_eq!(a.mul(Gf::ONE), a);
                assert_eq!(a.add(Gf::ZERO), a);
                // Additive inverse (characteristic 2).
                assert_eq!(a.add(a), Gf::ZERO);
                // Division is multiplication by the inverse.
                if bi != 0 {
                    assert_eq!(a.div(b), a.mul(b.inv()), "div a={ai} b={bi}");
                    assert_eq!(a.div(b).mul(b), a, "div roundtrip a={ai} b={bi}");
                }
            }
        }
    }

    #[test]
    fn triple_axioms_sampled() {
        // Associativity and distributivity need triples; exhausting
        // 2^24 of them is slow in debug builds, so sample broadly with
        // a fixed-seed generator instead.
        let mut rng = lrs_rng::DetRng::seed_from_u64(0x6f25_6f25);
        for _ in 0..200_000 {
            let (a, b, c) = (Gf(rng.gen()), Gf(rng.gen()), Gf(rng.gen()));
            assert_eq!(
                a.mul(b).mul(c),
                a.mul(b.mul(c)),
                "mul assoc {a:?} {b:?} {c:?}"
            );
            assert_eq!(
                a.add(b).add(c),
                a.add(b.add(c)),
                "add assoc {a:?} {b:?} {c:?}"
            );
            assert_eq!(
                a.mul(b.add(c)),
                a.mul(b).add(a.mul(c)),
                "distributivity {a:?} {b:?} {c:?}"
            );
        }
    }
}

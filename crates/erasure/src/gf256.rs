//! GF(2⁸) arithmetic with log/exp tables.
//!
//! The field is constructed over the AES/Rijndael reduction polynomial
//! `x⁸ + x⁴ + x³ + x + 1` (0x11b) with generator 3. Multiplication and
//! division go through precomputed log/exp tables, which is how the
//! original mote implementations made Reed-Solomon affordable on 8-bit
//! microcontrollers.

/// A GF(2⁸) field element.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug, PartialOrd, Ord)]
pub struct Gf(pub u8);

/// Log/exp tables for the field, built once.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().take(255).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u8;
            // Multiply by the generator 3 = x + 1: t = x*2 ^ x, reduced.
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= 0x11b;
            }
        }
        // Extend exp to avoid a mod 255 in mul.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

// The arithmetic methods intentionally shadow the `std::ops` names:
// GF(256) "addition" is XOR and callers chain them by value, so the
// inherent methods stay explicit rather than overloading operators.
#[allow(clippy::should_implement_trait)]
impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// Field addition (XOR).
    #[inline]
    pub fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }

    /// Field subtraction (identical to addition in characteristic 2).
    #[inline]
    pub fn sub(self, rhs: Gf) -> Gf {
        self.add(rhs)
    }

    /// Field multiplication via log/exp tables.
    #[inline]
    pub fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    pub fn div(self, rhs: Gf) -> Gf {
        assert!(rhs.0 != 0, "GF(256) division by zero");
        if self.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = 255 + t.log[self.0 as usize] as usize - t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[inline]
    pub fn inv(self) -> Gf {
        Gf::ONE.div(self)
    }

    /// `self^e` (with `0^0 = 1`).
    pub fn pow(self, mut e: u32) -> Gf {
        let mut result = Gf::ONE;
        let mut base = self;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        result
    }

    /// The field generator used to build the tables (3).
    pub fn generator() -> Gf {
        Gf(3)
    }
}

/// XORs `src` into `dst` (vector addition over GF(256)).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn slice_add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Adds `coeff * src` into `dst` (the row operation of RS encoding and
/// Gaussian elimination).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn slice_mul_add_assign(dst: &mut [u8], coeff: Gf, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if coeff.0 == 0 {
        return;
    }
    if coeff.0 == 1 {
        slice_add_assign(dst, src);
        return;
    }
    let t = tables();
    let log_c = t.log[coeff.0 as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[log_c + t.log[*s as usize] as usize];
        }
    }
}

/// Multiplies every byte of `buf` by `coeff` in place.
pub fn slice_scale(buf: &mut [u8], coeff: Gf) {
    if coeff.0 == 1 {
        return;
    }
    for b in buf.iter_mut() {
        *b = Gf(*b).mul(coeff).0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference multiplication: carry-less shift-and-xor with reduction.
    fn slow_mul(a: u8, b: u8) -> u8 {
        let mut acc: u16 = 0;
        let mut a16 = a as u16;
        let mut b8 = b;
        while b8 > 0 {
            if b8 & 1 == 1 {
                acc ^= a16;
            }
            a16 <<= 1;
            if a16 & 0x100 != 0 {
                a16 ^= 0x11b;
            }
            b8 >>= 1;
        }
        acc as u8
    }

    #[test]
    fn table_mul_matches_slow_mul_exhaustive() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf(a).mul(Gf(b)).0, slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverses_exhaustive() {
        for a in 1..=255u8 {
            let inv = Gf(a).inv();
            assert_eq!(Gf(a).mul(inv), Gf::ONE, "a={a}");
        }
    }

    #[test]
    fn generator_has_full_order() {
        let g = Gf::generator();
        let mut seen = [false; 256];
        let mut x = Gf::ONE;
        for _ in 0..255 {
            assert!(!seen[x.0 as usize], "generator order < 255");
            seen[x.0 as usize] = true;
            x = x.mul(g);
        }
        assert_eq!(x, Gf::ONE);
    }

    #[test]
    fn pow_consistency() {
        let g = Gf::generator();
        assert_eq!(g.pow(0), Gf::ONE);
        assert_eq!(g.pow(1), g);
        assert_eq!(g.pow(255), Gf::ONE);
        assert_eq!(g.pow(256), g);
        assert_eq!(Gf::ZERO.pow(0), Gf::ONE);
        assert_eq!(Gf::ZERO.pow(3), Gf::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf(5).div(Gf::ZERO);
    }

    #[test]
    fn slice_ops_match_scalar_ops() {
        let a: Vec<u8> = (0..=255u8).collect();
        let b: Vec<u8> = (0..=255u8).rev().collect();
        let mut dst = a.clone();
        slice_mul_add_assign(&mut dst, Gf(0x53), &b);
        for i in 0..256 {
            assert_eq!(Gf(dst[i]), Gf(a[i]).add(Gf(0x53).mul(Gf(b[i]))));
        }
        let mut scaled = a.clone();
        slice_scale(&mut scaled, Gf(0xca));
        for i in 0..256 {
            assert_eq!(Gf(scaled[i]), Gf(a[i]).mul(Gf(0xca)));
        }
    }

    #[test]
    fn pairwise_axioms_exhaustive() {
        // Every pairwise law holds over all 65 536 element pairs.
        for ai in 0..=255u8 {
            for bi in 0..=255u8 {
                let (a, b) = (Gf(ai), Gf(bi));
                // Commutativity.
                assert_eq!(a.mul(b), b.mul(a), "mul comm a={ai} b={bi}");
                assert_eq!(a.add(b), b.add(a), "add comm a={ai} b={bi}");
                // Identities.
                assert_eq!(a.mul(Gf::ONE), a);
                assert_eq!(a.add(Gf::ZERO), a);
                // Additive inverse (characteristic 2).
                assert_eq!(a.add(a), Gf::ZERO);
                // Division is multiplication by the inverse.
                if bi != 0 {
                    assert_eq!(a.div(b), a.mul(b.inv()), "div a={ai} b={bi}");
                    assert_eq!(a.div(b).mul(b), a, "div roundtrip a={ai} b={bi}");
                }
            }
        }
    }

    #[test]
    fn triple_axioms_sampled() {
        // Associativity and distributivity need triples; exhausting
        // 2^24 of them is slow in debug builds, so sample broadly with
        // a fixed-seed generator instead.
        let mut rng = lrs_rng::DetRng::seed_from_u64(0x6f25_6f25);
        for _ in 0..200_000 {
            let (a, b, c) = (Gf(rng.gen()), Gf(rng.gen()), Gf(rng.gen()));
            assert_eq!(
                a.mul(b).mul(c),
                a.mul(b.mul(c)),
                "mul assoc {a:?} {b:?} {c:?}"
            );
            assert_eq!(
                a.add(b).add(c),
                a.add(b.add(c)),
                "add assoc {a:?} {b:?} {c:?}"
            );
            assert_eq!(
                a.mul(b.add(c)),
                a.mul(b).add(a.mul(c)),
                "distributivity {a:?} {b:?} {c:?}"
            );
        }
    }
}

//! Runtime-dispatched SIMD kernels for the GF(256) slice operations.
//!
//! The inner loop of Reed-Solomon encode/decode and of Gauss-Jordan
//! elimination is `dst[i] ^= c · src[i]` over whole block slices. This
//! module provides four interchangeable implementations of that loop
//! and of `buf[i] = c · buf[i]` / `dst[i] ^= src[i]`:
//!
//! * [`Kernel::Scalar`] — the full-mul-table row kernel (one 256-byte
//!   table row per coefficient, one load + XOR per byte). This is the
//!   reference anchor every other kernel is property-tested against.
//! * [`Kernel::Swar`] — a portable 64-bit SWAR path: four 8-byte lanes
//!   per round, multiplying by the coefficient bit-by-bit with a
//!   branch-predictable carry-less doubling step. No `std::arch`
//!   intrinsics, so it runs on every target — and no tables, so it
//!   costs no cache footprint. Measured on cached cores the full-table
//!   scalar kernel still outruns it (one L1 load + XOR per byte beats
//!   ~7 doubling rounds per 8 bytes), so auto-dispatch ranks SWAR
//!   *below* scalar; it is selected explicitly (`LRS_GF_KERNEL=swar`)
//!   by the forced-kernel CI jobs and by anyone trading speed for a
//!   table-free memory profile.
//! * [`Kernel::Ssse3`] / [`Kernel::Avx2`] — the classic 4-bit
//!   split-table shuffle kernels (`PSHUFB`/`VPSHUFB`): the product
//!   `c · b` is `c·lo(b) ⊕ c·(hi(b)·16)`, so two 16-entry nibble tables
//!   looked up with a byte shuffle multiply 16 (SSSE3) or 32 (AVX2)
//!   bytes per instruction pair.
//!
//! Selection happens once per process via [`Kernel::active`]: the
//! best path supported by the CPU (`is_x86_feature_detected!`), unless
//! the `LRS_GF_KERNEL` environment variable (`scalar`, `swar`, `ssse3`,
//! `avx2`) forces a specific one — the hook the forced-kernel CI jobs
//! and the microbenchmarks use. Every kernel produces bit-identical
//! output (GF(256) arithmetic is exact), so dispatch can never change
//! simulation results; `erasure/tests/kernel_equivalence.rs` pins each
//! reachable path against the scalar reference.

use crate::gf256::{mul_row, Gf};
use std::sync::OnceLock;

/// One of the interchangeable GF(256) slice-kernel implementations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kernel {
    /// Full-mul-table scalar kernel (the reference anchor).
    Scalar,
    /// Portable 64-bit SWAR kernel (no intrinsics).
    Swar,
    /// 4-bit split-table shuffle kernel over 128-bit registers.
    Ssse3,
    /// 4-bit split-table shuffle kernel over 256-bit registers.
    Avx2,
}

impl Kernel {
    /// All kernels, slowest first (as measured on cached cores: the
    /// table-free SWAR path trails the L1-resident full-table scalar
    /// kernel, so scalar outranks it for auto-dispatch).
    pub const ALL: [Kernel; 4] = [Kernel::Swar, Kernel::Scalar, Kernel::Ssse3, Kernel::Avx2];

    /// The kernel's name as used by `LRS_GF_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            Kernel::Ssse3 => "ssse3",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Parses an `LRS_GF_KERNEL` value.
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether this kernel can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            Kernel::Scalar | Kernel::Swar => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Ssse3 => is_x86_feature_detected!("ssse3"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Ssse3 | Kernel::Avx2 => false,
        }
    }

    /// The kernels the current CPU can run, slowest first.
    pub fn supported() -> Vec<Kernel> {
        Kernel::ALL
            .into_iter()
            .filter(|k| k.is_supported())
            .collect()
    }

    /// The fastest kernel supported by the current CPU.
    pub fn best_supported() -> Kernel {
        *Kernel::supported().last().expect("scalar always supported")
    }

    /// The kernel the public slice operations dispatch to, resolved
    /// once per process: `LRS_GF_KERNEL` when set to a kernel the CPU
    /// supports (unsupported or unknown values are ignored), otherwise
    /// the best supported path.
    pub fn active() -> Kernel {
        static ACTIVE: OnceLock<Kernel> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            if let Ok(name) = std::env::var("LRS_GF_KERNEL") {
                match Kernel::from_name(&name) {
                    Some(k) if k.is_supported() => return k,
                    Some(k) => eprintln!(
                        "LRS_GF_KERNEL={} is not supported on this CPU; using {}",
                        k.name(),
                        Kernel::best_supported().name()
                    ),
                    None => eprintln!(
                        "LRS_GF_KERNEL={name} is not a kernel (scalar|swar|ssse3|avx2); \
                         using {}",
                        Kernel::best_supported().name()
                    ),
                }
            }
            Kernel::best_supported()
        })
    }
}

/// `dst ^= coeff · src` with an explicit kernel (the property suite and
/// the microbenchmarks pin each path through this entry point).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_assign(kernel: Kernel, dst: &mut [u8], coeff: Gf, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if coeff.0 == 0 {
        return;
    }
    if coeff.0 == 1 {
        add_assign(kernel, dst, src);
        return;
    }
    match kernel {
        Kernel::Scalar => mul_add_table(dst, coeff, src),
        Kernel::Swar => mul_add_swar(dst, coeff, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only selects these kernels after
        // `is_x86_feature_detected!` confirmed the feature.
        Kernel::Ssse3 => unsafe { x86::mul_add_ssse3(dst, coeff, src) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { x86::mul_add_avx2(dst, coeff, src) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Ssse3 | Kernel::Avx2 => mul_add_swar(dst, coeff, src),
    }
}

/// `dst ^= Σ coeffs[i] · srcs[i]` — the fused generator-row product at
/// the heart of RS encode (one parity row over all `k` sources) and
/// decode (one inverse-matrix row over the chosen blocks). Fusing the
/// whole row into one kernel call amortizes dispatch and table setup
/// across all sources, which dominates at the paper's 72-byte blocks:
/// a per-source `mul_add_assign` call can't be inlined across the
/// `#[target_feature]` boundary and reloads its tables every time.
///
/// # Panics
///
/// Panics if `coeffs` and `srcs` have different lengths or any source
/// length differs from `dst`'s.
pub fn mul_add_accumulate(kernel: Kernel, dst: &mut [u8], coeffs: &[Gf], srcs: &[&[u8]]) {
    assert_eq!(
        coeffs.len(),
        srcs.len(),
        "coefficient/source count mismatch"
    );
    for src in srcs {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
    }
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `mul_add_assign`.
        Kernel::Ssse3 => unsafe { x86::mul_add_accumulate_ssse3(dst, coeffs, srcs) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { x86::mul_add_accumulate_avx2(dst, coeffs, srcs) },
        _ => {
            for (coeff, src) in coeffs.iter().zip(srcs) {
                mul_add_assign(kernel, dst, *coeff, src);
            }
        }
    }
}

/// `buf[i] = coeff · buf[i]` with an explicit kernel.
pub fn scale(kernel: Kernel, buf: &mut [u8], coeff: Gf) {
    if coeff.0 == 1 {
        return;
    }
    match kernel {
        Kernel::Scalar => scale_table(buf, coeff),
        Kernel::Swar => scale_swar(buf, coeff),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `mul_add_assign`.
        Kernel::Ssse3 => unsafe { x86::scale_ssse3(buf, coeff) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { x86::scale_avx2(buf, coeff) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Ssse3 | Kernel::Avx2 => scale_swar(buf, coeff),
    }
}

/// `dst ^= src` (vector addition) with an explicit kernel.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign(kernel: Kernel, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    match kernel {
        Kernel::Scalar => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= s;
            }
        }
        // One XOR implementation serves every wide kernel: the u64
        // chunk loop below autovectorizes to the widest available
        // registers, and XOR has no table to split.
        _ => {
            let mut d = dst.chunks_exact_mut(8);
            let mut s = src.chunks_exact(8);
            for (d8, s8) in d.by_ref().zip(s.by_ref()) {
                let x = u64::from_le_bytes(d8.try_into().expect("8-byte chunk"))
                    ^ u64::from_le_bytes(s8.try_into().expect("8-byte chunk"));
                d8.copy_from_slice(&x.to_le_bytes());
            }
            for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
                *d1 ^= s1;
            }
        }
    }
}

/// Full-mul-table kernel: one 256-byte row lookup per byte, unrolled in
/// 8-byte chunks to keep the loads pipelined.
fn mul_add_table(dst: &mut [u8], coeff: Gf, src: &[u8]) {
    let row = mul_row(coeff);
    let mut d_chunks = dst.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (d, s) in d_chunks.by_ref().zip(s_chunks.by_ref()) {
        d[0] ^= row[s[0] as usize];
        d[1] ^= row[s[1] as usize];
        d[2] ^= row[s[2] as usize];
        d[3] ^= row[s[3] as usize];
        d[4] ^= row[s[4] as usize];
        d[5] ^= row[s[5] as usize];
        d[6] ^= row[s[6] as usize];
        d[7] ^= row[s[7] as usize];
    }
    for (d, s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder())
    {
        *d ^= row[*s as usize];
    }
}

fn scale_table(buf: &mut [u8], coeff: Gf) {
    let row = mul_row(coeff);
    let mut chunks = buf.chunks_exact_mut(8);
    for b in chunks.by_ref() {
        b[0] = row[b[0] as usize];
        b[1] = row[b[1] as usize];
        b[2] = row[b[2] as usize];
        b[3] = row[b[3] as usize];
        b[4] = row[b[4] as usize];
        b[5] = row[b[5] as usize];
        b[6] = row[b[6] as usize];
        b[7] = row[b[7] as usize];
    }
    for b in chunks.into_remainder() {
        *b = row[*b as usize];
    }
}

/// Doubles all eight GF(256) bytes of `x` at once: shift each byte left
/// and reduce the bytes that carried out by `0x1b` (the low byte of the
/// AES polynomial `0x11b`). The reduction is spelled as shift-XORs of
/// the per-byte carry bit (`0x1b = 0b11011`) rather than a 64-bit
/// multiply so the four-lane loops below stay autovectorizable.
#[inline]
fn gf8_double(x: u64) -> u64 {
    let carries = (x & 0x8080_8080_8080_8080) >> 7;
    ((x & 0x7f7f_7f7f_7f7f_7f7f) << 1) ^ (carries << 4) ^ (carries << 3) ^ (carries << 1) ^ carries
}

/// SWAR product of the eight bytes of `x` by `coeff`, bit-by-bit over
/// the coefficient. At most 8 rounds, each ~4 ALU ops for 8 bytes; the
/// branch pattern depends only on `coeff`, so it predicts perfectly
/// inside a slice loop.
#[inline]
fn gf8_mul(mut x: u64, coeff: u8) -> u64 {
    let mut acc = if coeff & 1 != 0 { x } else { 0 };
    let mut bits = coeff >> 1;
    while bits != 0 {
        x = gf8_double(x);
        if bits & 1 != 0 {
            acc ^= x;
        }
        bits >>= 1;
    }
    acc
}

/// Four-lane SWAR product: 32 bytes per call. A single `gf8_mul` chain
/// is latency-bound (every doubling depends on the previous one); four
/// independent lanes per round give a scalar core instruction-level
/// parallelism and let LLVM autovectorize the lane loops where wider
/// registers exist.
#[inline]
fn gf32_mul(x: &mut [u64; 4], coeff: u8) -> [u64; 4] {
    let mut acc = if coeff & 1 != 0 { *x } else { [0u64; 4] };
    let mut bits = coeff >> 1;
    while bits != 0 {
        for lane in x.iter_mut() {
            *lane = gf8_double(*lane);
        }
        if bits & 1 != 0 {
            for (a, lane) in acc.iter_mut().zip(x.iter()) {
                *a ^= lane;
            }
        }
        bits >>= 1;
    }
    acc
}

fn mul_add_swar(dst: &mut [u8], coeff: Gf, src: &[u8]) {
    let mut d = dst.chunks_exact_mut(32);
    let mut s = src.chunks_exact(32);
    for (d32, s32) in d.by_ref().zip(s.by_ref()) {
        let mut x = [0u64; 4];
        for (lane, s8) in x.iter_mut().zip(s32.chunks_exact(8)) {
            *lane = u64::from_le_bytes(s8.try_into().expect("8-byte lane"));
        }
        let prod = gf32_mul(&mut x, coeff.0);
        for (p, d8) in prod.iter().zip(d32.chunks_exact_mut(8)) {
            let cur = u64::from_le_bytes((&*d8).try_into().expect("8-byte lane"));
            d8.copy_from_slice(&(cur ^ p).to_le_bytes());
        }
    }
    let mut d = d.into_remainder().chunks_exact_mut(8);
    let mut s = s.remainder().chunks_exact(8);
    for (d8, s8) in d.by_ref().zip(s.by_ref()) {
        let x = u64::from_le_bytes(s8.try_into().expect("8-byte chunk"));
        let cur = u64::from_le_bytes((&*d8).try_into().expect("8-byte chunk"));
        d8.copy_from_slice(&(cur ^ gf8_mul(x, coeff.0)).to_le_bytes());
    }
    let row = mul_row(coeff);
    for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d1 ^= row[*s1 as usize];
    }
}

fn scale_swar(buf: &mut [u8], coeff: Gf) {
    let mut chunks = buf.chunks_exact_mut(32);
    for b32 in chunks.by_ref() {
        let mut x = [0u64; 4];
        for (lane, b8) in x.iter_mut().zip(b32.chunks_exact(8)) {
            *lane = u64::from_le_bytes(b8.try_into().expect("8-byte lane"));
        }
        let prod = gf32_mul(&mut x, coeff.0);
        for (p, b8) in prod.iter().zip(b32.chunks_exact_mut(8)) {
            b8.copy_from_slice(&p.to_le_bytes());
        }
    }
    let mut chunks = chunks.into_remainder().chunks_exact_mut(8);
    for b8 in chunks.by_ref() {
        let x = u64::from_le_bytes((&*b8).try_into().expect("8-byte chunk"));
        b8.copy_from_slice(&gf8_mul(x, coeff.0).to_le_bytes());
    }
    let row = mul_row(coeff);
    for b in chunks.into_remainder() {
        *b = row[*b as usize];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use crate::gf256::{nib_row, Gf};
    use core::arch::x86_64::*;

    /// One 8-byte `dst ^= c·src` step: `_mm_loadl_epi64` reads exactly
    /// eight bytes (no over-read past the slice end), so sub-16-byte
    /// tails can use the shuffle tables instead of byte-wise lookups —
    /// the paper's 72-byte blocks end in exactly such a tail on every
    /// kernel call.
    ///
    /// # Safety
    ///
    /// SSSE3 must be available and `dp`/`sp` must be valid for 8 bytes.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_add_8(dp: *mut u8, sp: *const u8, lo_tbl: __m128i, hi_tbl: __m128i) {
        let mask = _mm_set1_epi8(0x0f);
        let x = _mm_loadl_epi64(sp as *const __m128i);
        let lo = _mm_and_si128(x, mask);
        let hi = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
        let prod = _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi));
        let d = _mm_loadl_epi64(dp as *const __m128i);
        _mm_storel_epi64(dp as *mut __m128i, _mm_xor_si128(d, prod));
    }

    /// # Safety
    ///
    /// Caller must have verified SSSE3 support.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_add_ssse3(dst: &mut [u8], coeff: Gf, src: &[u8]) {
        let tbl = nib_row(coeff);
        let lo_tbl = _mm_loadu_si128(tbl.as_ptr() as *const __m128i);
        let hi_tbl = _mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let body = dst.len() & !15;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < body {
            let x = _mm_loadu_si128(sp.add(i) as *const __m128i);
            let lo = _mm_and_si128(x, mask);
            let hi = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi));
            let d = _mm_loadu_si128(dp.add(i) as *const __m128i);
            _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm_xor_si128(d, prod));
            i += 16;
        }
        // Sub-16-byte tail: 8-byte steps through the same shuffle
        // tables, then byte-wise from the nibble table for the last
        // 0–7 bytes — never the 64 KiB full-mul table, whose extra
        // table walk dominated small-slice cost.
        while i + 8 <= dst.len() {
            mul_add_8(dp.add(i), sp.add(i), lo_tbl, hi_tbl);
            i += 8;
        }
        for j in i..dst.len() {
            let s = src[j];
            dst[j] ^= tbl[(s & 0x0f) as usize] ^ tbl[16 + (s >> 4) as usize];
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_add_avx2(dst: &mut [u8], coeff: Gf, src: &[u8]) {
        let tbl = nib_row(coeff);
        let lo_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(tbl.as_ptr() as *const __m128i));
        let hi_tbl =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        let body = dst.len() & !31;
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < body {
            let x = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            let lo = _mm256_and_si256(x, mask);
            let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(x), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_tbl, lo),
                _mm256_shuffle_epi8(hi_tbl, hi),
            );
            let d = _mm256_loadu_si256(dp.add(i) as *const __m256i);
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_xor_si256(d, prod));
            i += 32;
        }
        // AVX2 implies SSSE3: mop up 16..31 remaining bytes at 128-bit
        // width, then the scalar row takes the final tail.
        mul_add_ssse3(&mut dst[body..], coeff, &src[body..]);
    }

    /// Fused `dst ^= Σ c_i · src_i`: one `#[target_feature]` region and
    /// one mask constant for the whole generator row; each source pays
    /// only its own nibble-table loads.
    ///
    /// # Safety
    ///
    /// Caller must have verified SSSE3 support; slice lengths must
    /// already be validated (`mul_add_accumulate` asserts them).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_add_accumulate_ssse3(dst: &mut [u8], coeffs: &[Gf], srcs: &[&[u8]]) {
        let mask = _mm_set1_epi8(0x0f);
        let body = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        for (coeff, src) in coeffs.iter().zip(srcs) {
            if coeff.0 == 0 {
                continue;
            }
            let tbl = nib_row(*coeff);
            let lo_tbl = _mm_loadu_si128(tbl.as_ptr() as *const __m128i);
            let hi_tbl = _mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i);
            let sp = src.as_ptr();
            let mut i = 0;
            while i < body {
                let x = _mm_loadu_si128(sp.add(i) as *const __m128i);
                let lo = _mm_and_si128(x, mask);
                let hi = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
                let prod =
                    _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi));
                let d = _mm_loadu_si128(dp.add(i) as *const __m128i);
                _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm_xor_si128(d, prod));
                i += 16;
            }
            while i + 8 <= dst.len() {
                mul_add_8(dp.add(i), sp.add(i), lo_tbl, hi_tbl);
                i += 8;
            }
            for j in i..dst.len() {
                let s = src[j];
                dst[j] ^= tbl[(s & 0x0f) as usize] ^ tbl[16 + (s >> 4) as usize];
            }
        }
    }

    /// # Safety
    ///
    /// As in [`mul_add_accumulate_ssse3`], for AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_add_accumulate_avx2(dst: &mut [u8], coeffs: &[Gf], srcs: &[&[u8]]) {
        let mask = _mm256_set1_epi8(0x0f);
        let mask128 = _mm_set1_epi8(0x0f);
        let body = dst.len() & !31;
        let half = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        for (coeff, src) in coeffs.iter().zip(srcs) {
            if coeff.0 == 0 {
                continue;
            }
            let tbl = nib_row(*coeff);
            let tbl_lo128 = _mm_loadu_si128(tbl.as_ptr() as *const __m128i);
            let tbl_hi128 = _mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i);
            let lo_tbl = _mm256_broadcastsi128_si256(tbl_lo128);
            let hi_tbl = _mm256_broadcastsi128_si256(tbl_hi128);
            let sp = src.as_ptr();
            let mut i = 0;
            while i < body {
                let x = _mm256_loadu_si256(sp.add(i) as *const __m256i);
                let lo = _mm256_and_si256(x, mask);
                let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(x), mask);
                let prod = _mm256_xor_si256(
                    _mm256_shuffle_epi8(lo_tbl, lo),
                    _mm256_shuffle_epi8(hi_tbl, hi),
                );
                let d = _mm256_loadu_si256(dp.add(i) as *const __m256i);
                _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_xor_si256(d, prod));
                i += 32;
            }
            if i < half {
                let x = _mm_loadu_si128(sp.add(i) as *const __m128i);
                let lo = _mm_and_si128(x, mask128);
                let hi = _mm_and_si128(_mm_srli_epi64::<4>(x), mask128);
                let prod = _mm_xor_si128(
                    _mm_shuffle_epi8(tbl_lo128, lo),
                    _mm_shuffle_epi8(tbl_hi128, hi),
                );
                let d = _mm_loadu_si128(dp.add(i) as *const __m128i);
                _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm_xor_si128(d, prod));
                i += 16;
            }
            while i + 8 <= dst.len() {
                mul_add_8(dp.add(i), sp.add(i), tbl_lo128, tbl_hi128);
                i += 8;
            }
            for j in i..dst.len() {
                let s = src[j];
                dst[j] ^= tbl[(s & 0x0f) as usize] ^ tbl[16 + (s >> 4) as usize];
            }
        }
    }

    /// # Safety
    ///
    /// Caller must have verified SSSE3 support.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn scale_ssse3(buf: &mut [u8], coeff: Gf) {
        let tbl = nib_row(coeff);
        let lo_tbl = _mm_loadu_si128(tbl.as_ptr() as *const __m128i);
        let hi_tbl = _mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let body = buf.len() & !15;
        let bp = buf.as_mut_ptr();
        let mut i = 0;
        while i < body {
            let x = _mm_loadu_si128(bp.add(i) as *const __m128i);
            let lo = _mm_and_si128(x, mask);
            let hi = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi));
            _mm_storeu_si128(bp.add(i) as *mut __m128i, prod);
            i += 16;
        }
        // Byte-wise tail from the in-register nibble table (see
        // `mul_add_ssse3`).
        for slot in buf.iter_mut().skip(body) {
            let b = *slot;
            *slot = tbl[(b & 0x0f) as usize] ^ tbl[16 + (b >> 4) as usize];
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_avx2(buf: &mut [u8], coeff: Gf) {
        let tbl = nib_row(coeff);
        let lo_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(tbl.as_ptr() as *const __m128i));
        let hi_tbl =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(tbl.as_ptr().add(16) as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        let body = buf.len() & !31;
        let bp = buf.as_mut_ptr();
        let mut i = 0;
        while i < body {
            let x = _mm256_loadu_si256(bp.add(i) as *const __m256i);
            let lo = _mm256_and_si256(x, mask);
            let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(x), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_tbl, lo),
                _mm256_shuffle_epi8(hi_tbl, hi),
            );
            _mm256_storeu_si256(bp.add(i) as *mut __m256i, prod);
            i += 32;
        }
        scale_ssse3(&mut buf[body..], coeff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        assert_eq!(Kernel::from_name("neon"), None);
    }

    #[test]
    fn scalar_and_swar_always_supported() {
        assert!(Kernel::Scalar.is_supported());
        assert!(Kernel::Swar.is_supported());
        assert!(Kernel::supported().contains(&Kernel::best_supported()));
        assert!(Kernel::active().is_supported());
    }

    #[test]
    fn gf8_double_matches_per_byte_doubling() {
        for b in 0..=255u8 {
            let x = u64::from_le_bytes([b, b ^ 0x5a, 0, 1, 0x80, 0x7f, b.wrapping_add(1), 0xff]);
            let doubled = gf8_double(x);
            for (lane, &src) in x.to_le_bytes().iter().enumerate() {
                assert_eq!(
                    doubled.to_le_bytes()[lane],
                    Gf(src).mul(Gf(2)).0,
                    "b={b} lane={lane}"
                );
            }
        }
    }

    #[test]
    fn gf8_mul_matches_table_mul() {
        for c in 0..=255u8 {
            let x = u64::from_le_bytes([0, 1, 2, 0x53, 0x80, 0xca, 0xfe, 0xff]);
            let prod = gf8_mul(x, c);
            for (lane, &src) in x.to_le_bytes().iter().enumerate() {
                assert_eq!(
                    prod.to_le_bytes()[lane],
                    Gf(src).mul(Gf(c)).0,
                    "c={c} lane={lane}"
                );
            }
        }
    }
}

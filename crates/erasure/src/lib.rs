//! Fixed-rate erasure codes for LR-Seluge, implemented from scratch.
//!
//! LR-Seluge (paper §II-C, §IV) deliberately uses a *fixed-rate*
//! `k`-`n`-`k'` erasure code rather than a rateless one: a code that maps
//! `k` equal-length blocks to `n ≥ k` encoded blocks such that the
//! originals can be recovered from any `k'` encoded blocks
//! (`k ≤ k' ≤ n`). Because the `n` encoded packets are *predetermined*,
//! their hash images can be chained into the previous page, giving
//! immediate per-packet authentication — the property rateless codes
//! cannot offer.
//!
//! Two implementations are provided:
//!
//! * [`ReedSolomon`] — a systematic MDS code over GF(2⁸) (`k' = k`,
//!   optimal reception efficiency). This is the default code used by the
//!   experiments.
//! * [`SparseXor`] — a dense random-XOR code with a small reception
//!   overhead (`k' > k`) but XOR-only (Gaussian) decoding.
//! * [`Lt`] — a capped LT code (robust soliton degrees, O(edges)
//!   peeling decoder): the rateless family of §II-C with its packet
//!   space capped at `n`, exercising the paper's general `k'` model.
//!
//! # Example
//!
//! ```
//! use lrs_erasure::{ErasureCode, ReedSolomon};
//!
//! let code = ReedSolomon::new(4, 7)?;
//! let blocks: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 16]).collect();
//! let encoded = code.encode(&blocks)?;
//! // Any k' = 4 of the 7 encoded blocks recover the originals.
//! let subset: Vec<(usize, Vec<u8>)> =
//!     [6, 2, 5, 0].iter().map(|&i| (i, encoded[i].clone())).collect();
//! assert_eq!(code.decode(&subset, 16)?, blocks);
//! # Ok::<(), lrs_erasure::CodeError>(())
//! ```

pub mod gf256;
pub mod kernel;
pub mod lt;
pub mod matrix;
pub mod rs;
pub mod sparse;

pub use lt::Lt;
pub use rs::ReedSolomon;
pub use sparse::SparseXor;

use std::error::Error;
use std::fmt;

/// Errors returned by erasure-code operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// Parameters violate `1 ≤ k ≤ n ≤ 255` (GF(256) index space).
    BadParameters {
        /// Requested number of source blocks.
        k: usize,
        /// Requested number of encoded blocks.
        n: usize,
    },
    /// The number or shape of input blocks does not match the code.
    BadInput(String),
    /// Not enough (or not usable) encoded blocks to decode.
    NotEnoughBlocks {
        /// Usable blocks supplied.
        have: usize,
        /// Blocks required (`k'` for the worst case).
        need: usize,
    },
    /// The same block index was supplied twice.
    DuplicateIndex(usize),
    /// A supplied block index is outside `0..n`.
    IndexOutOfRange(usize),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::BadParameters { k, n } => {
                write!(
                    f,
                    "invalid code parameters k={k}, n={n} (need 1 <= k <= n <= 255)"
                )
            }
            CodeError::BadInput(msg) => write!(f, "bad input blocks: {msg}"),
            CodeError::NotEnoughBlocks { have, need } => {
                write!(f, "not enough encoded blocks: have {have}, need {need}")
            }
            CodeError::DuplicateIndex(i) => write!(f, "duplicate encoded block index {i}"),
            CodeError::IndexOutOfRange(i) => write!(f, "encoded block index {i} out of range"),
        }
    }
}

impl Error for CodeError {}

/// A fixed-rate `k`-`n`-`k'` erasure code (paper §II-C).
///
/// Implementations must be deterministic: every node preloaded with "the
/// same instance" must produce identical encoded blocks from identical
/// inputs (paper §IV-B), since packet hash images are computed over the
/// encoded blocks.
pub trait ErasureCode {
    /// Number of source blocks per page.
    fn k(&self) -> usize;

    /// Number of encoded blocks per page.
    fn n(&self) -> usize;

    /// Reception threshold: any `k'` encoded blocks suffice to decode.
    /// For an MDS code `k' = k`.
    fn k_prime(&self) -> usize;

    /// Encodes `k` equal-length source blocks into `n` encoded blocks of
    /// the same length.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadInput`] if the block count or shapes are
    /// wrong.
    fn encode(&self, blocks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError>;

    /// Decodes the original `k` blocks from borrowed `(index, block)`
    /// pairs. This is the primary decode entry point: callers that
    /// already hold the received blocks elsewhere (e.g. a scheme's
    /// reception buffer) can decode without cloning each block first.
    ///
    /// `block_len` is the expected block length (used to validate input).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEnoughBlocks`] if fewer than the required
    /// number of distinct valid blocks are provided, and other variants
    /// for malformed input.
    fn decode_refs(
        &self,
        blocks: &[(usize, &[u8])],
        block_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodeError>;

    /// Decodes from owned `(index, block)` pairs by forwarding to
    /// [`ErasureCode::decode_refs`].
    ///
    /// # Errors
    ///
    /// Same as [`ErasureCode::decode_refs`].
    fn decode(
        &self,
        blocks: &[(usize, Vec<u8>)],
        block_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        let refs: Vec<(usize, &[u8])> = blocks.iter().map(|(i, b)| (*i, b.as_slice())).collect();
        self.decode_refs(&refs, block_len)
    }

    /// Decodes directly into a contiguous page buffer (`k * block_len`
    /// bytes), replacing the contents of `out`. Lets callers reuse a
    /// scratch buffer across decodes instead of concatenating `k`
    /// freshly allocated blocks.
    ///
    /// The default implementation concatenates the blocks from
    /// [`ErasureCode::decode_refs`]; implementations may write rows
    /// in place.
    ///
    /// # Errors
    ///
    /// Same as [`ErasureCode::decode_refs`].
    fn decode_into(
        &self,
        blocks: &[(usize, &[u8])],
        block_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), CodeError> {
        let decoded = self.decode_refs(blocks, block_len)?;
        out.clear();
        out.reserve(decoded.len() * block_len);
        for b in &decoded {
            out.extend_from_slice(b);
        }
        Ok(())
    }
}

/// Validates common decode-input invariants shared by implementations.
pub(crate) fn check_decode_input(
    blocks: &[(usize, &[u8])],
    n: usize,
    block_len: usize,
) -> Result<(), CodeError> {
    let mut seen = vec![false; n];
    for (idx, data) in blocks {
        if *idx >= n {
            return Err(CodeError::IndexOutOfRange(*idx));
        }
        if seen[*idx] {
            return Err(CodeError::DuplicateIndex(*idx));
        }
        seen[*idx] = true;
        if data.len() != block_len {
            return Err(CodeError::BadInput(format!(
                "block {idx} has length {}, expected {block_len}",
                data.len()
            )));
        }
    }
    Ok(())
}

/// Splits `data` into exactly `k` blocks of equal length (zero-padded),
/// as the base station does when partitioning a page (paper §IV-C).
pub fn split_into_blocks(data: &[u8], k: usize) -> Vec<Vec<u8>> {
    assert!(k >= 1, "k must be at least 1");
    let block_len = data.len().div_ceil(k).max(1);
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let start = (i * block_len).min(data.len());
        let end = ((i + 1) * block_len).min(data.len());
        let mut block = data[start..end].to_vec();
        block.resize(block_len, 0);
        out.push(block);
    }
    out
}

/// Reassembles blocks produced by [`split_into_blocks`], truncating the
/// zero padding back to `original_len`.
pub fn join_blocks(blocks: &[Vec<u8>], original_len: usize) -> Vec<u8> {
    let mut out: Vec<u8> = blocks.iter().flatten().copied().collect();
    out.truncate(original_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_join_roundtrip() {
        for len in [0usize, 1, 7, 16, 17, 100] {
            for k in [1usize, 2, 3, 8] {
                let data: Vec<u8> = (0..len as u32).map(|i| (i % 251) as u8).collect();
                let blocks = split_into_blocks(&data, k);
                assert_eq!(blocks.len(), k, "len={len} k={k}");
                let lens: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
                assert!(lens.windows(2).all(|w| w[0] == w[1]), "unequal blocks");
                assert_eq!(join_blocks(&blocks, len), data, "len={len} k={k}");
            }
        }
    }

    #[test]
    fn check_decode_input_catches_errors() {
        let b4: &[u8] = &[0u8; 4];
        let b3: &[u8] = &[0u8; 3];
        let ok = vec![(0usize, b4), (2, b4)];
        assert!(check_decode_input(&ok, 4, 4).is_ok());
        let dup = vec![(1usize, b4), (1, b4)];
        assert_eq!(
            check_decode_input(&dup, 4, 4),
            Err(CodeError::DuplicateIndex(1))
        );
        let oor = vec![(9usize, b4)];
        assert_eq!(
            check_decode_input(&oor, 4, 4),
            Err(CodeError::IndexOutOfRange(9))
        );
        let short = vec![(0usize, b3)];
        assert!(matches!(
            check_decode_input(&short, 4, 4),
            Err(CodeError::BadInput(_))
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            CodeError::BadParameters { k: 0, n: 0 },
            CodeError::BadInput("x".into()),
            CodeError::NotEnoughBlocks { have: 1, need: 2 },
            CodeError::DuplicateIndex(3),
            CodeError::IndexOutOfRange(4),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

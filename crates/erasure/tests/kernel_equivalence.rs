//! Equivalence properties for the optimized hot-path kernels.
//!
//! The table-driven GF(256) slice kernels and the decode-matrix cache
//! are pure speed changes: this suite pins them to the scalar reference
//! implementation and to cache-off decoding, byte for byte, so any
//! future kernel change that alters results fails loudly.

use lrs_erasure::gf256::{
    slice_mul_add_assign, slice_mul_add_assign_scalar, slice_scale, slice_scale_scalar, Gf,
};
use lrs_erasure::kernel::{self, Kernel};
use lrs_erasure::{ErasureCode, ReedSolomon};
use lrs_rng::DetRng;

/// The paper's (k, n) operating points: defaults k = 32 with n = 48/64,
/// the hash-page code k0 = 8, n0 = 16, and the worked example (3, 6).
const PAPER_POINTS: [(usize, usize); 4] = [(32, 48), (32, 64), (8, 16), (3, 6)];

/// Lengths that straddle every kernel's internal boundaries: the 8-byte
/// SWAR chunk, the 16-byte SSSE3 vector, the 32-byte AVX2 vector, and a
/// large body with a ragged tail.
const ADVERSARIAL_LENS: [usize; 13] = [0, 1, 7, 8, 15, 16, 17, 31, 32, 63, 64, 65, 4096 + 29];

#[test]
fn every_supported_kernel_matches_scalar_on_adversarial_lengths() {
    let mut rng = DetRng::seed_from_u64(0x6b65_726e);
    let kernels = Kernel::supported();
    assert!(kernels.contains(&Kernel::Scalar));
    assert!(kernels.contains(&Kernel::Swar));
    for &len in &ADVERSARIAL_LENS {
        for trial in 0..8 {
            let coeff = match trial {
                // Force the degenerate coefficients alongside random ones.
                0 => Gf(0),
                1 => Gf(1),
                2 => Gf(255),
                _ => Gf(rng.gen_range(0usize..256) as u8),
            };
            let mut src = vec![0u8; len];
            rng.fill_bytes(&mut src);
            let mut base = vec![0u8; len];
            rng.fill_bytes(&mut base);

            let mut mul_ref = base.clone();
            kernel::mul_add_assign(Kernel::Scalar, &mut mul_ref, coeff, &src);
            let mut scale_ref = base.clone();
            kernel::scale(Kernel::Scalar, &mut scale_ref, coeff);
            let mut add_ref = base.clone();
            kernel::add_assign(Kernel::Scalar, &mut add_ref, &src);

            for &k in &kernels {
                let mut out = base.clone();
                kernel::mul_add_assign(k, &mut out, coeff, &src);
                assert_eq!(
                    out,
                    mul_ref,
                    "mul_add {} coeff={} len={len}",
                    k.name(),
                    coeff.0
                );
                let mut out = base.clone();
                kernel::scale(k, &mut out, coeff);
                assert_eq!(
                    out,
                    scale_ref,
                    "scale {} coeff={} len={len}",
                    k.name(),
                    coeff.0
                );
                let mut out = base.clone();
                kernel::add_assign(k, &mut out, &src);
                assert_eq!(out, add_ref, "add {} len={len}", k.name());
            }
        }
    }
}

#[test]
fn every_supported_kernel_matches_scalar_on_unaligned_subslices() {
    // SIMD kernels use unaligned loads; prove it by operating on
    // sub-slices at every offset 0..32 of an over-aligned buffer, with
    // lengths that leave ragged tails.
    let mut rng = DetRng::seed_from_u64(0x756e_616c);
    let kernels = Kernel::supported();
    let mut src_buf = vec![0u8; 512];
    rng.fill_bytes(&mut src_buf);
    let mut dst_buf = vec![0u8; 512];
    rng.fill_bytes(&mut dst_buf);
    for offset in 0..32usize {
        for &len in &[33usize, 48, 100, 257] {
            let coeff = Gf(rng.gen_range(2usize..256) as u8);
            let src = &src_buf[offset..offset + len];
            let base = &dst_buf[offset..offset + len];

            let mut mul_ref = base.to_vec();
            slice_mul_add_assign_scalar(&mut mul_ref, coeff, src);

            for &k in &kernels {
                // The destination keeps the original buffer's alignment
                // by mutating in place at the same offset.
                let mut work = dst_buf.clone();
                kernel::mul_add_assign(k, &mut work[offset..offset + len], coeff, src);
                assert_eq!(
                    &work[offset..offset + len],
                    mul_ref.as_slice(),
                    "mul_add {} offset={offset} len={len}",
                    k.name()
                );
                assert_eq!(&work[..offset], &dst_buf[..offset], "head clobbered");
                assert_eq!(
                    &work[offset + len..],
                    &dst_buf[offset + len..],
                    "tail clobbered"
                );

                let mut work = dst_buf.clone();
                kernel::scale(k, &mut work[offset..offset + len], coeff);
                let mut scale_ref = base.to_vec();
                slice_scale_scalar(&mut scale_ref, coeff);
                assert_eq!(
                    &work[offset..offset + len],
                    scale_ref.as_slice(),
                    "scale {} offset={offset} len={len}",
                    k.name()
                );
            }
        }
    }
}

#[test]
fn every_supported_kernel_exhaustive_over_coefficients() {
    // All 256 coefficients × all supported kernels on one
    // boundary-straddling slice (65 bytes: two AVX2 vectors + 1).
    let src: Vec<u8> = (0..65u16).map(|i| (i * 53 % 256) as u8).collect();
    let base: Vec<u8> = (0..65u16).map(|i| (i * 29 % 256) as u8).collect();
    for c in 0..=255u8 {
        let coeff = Gf(c);
        let mut mul_ref = base.clone();
        slice_mul_add_assign_scalar(&mut mul_ref, coeff, &src);
        let mut scale_ref = src.clone();
        slice_scale_scalar(&mut scale_ref, coeff);
        for k in Kernel::supported() {
            let mut out = base.clone();
            kernel::mul_add_assign(k, &mut out, coeff, &src);
            assert_eq!(out, mul_ref, "mul_add {} coeff={c}", k.name());
            let mut out = src.clone();
            kernel::scale(k, &mut out, coeff);
            assert_eq!(out, scale_ref, "scale {} coeff={c}", k.name());
        }
    }
}

#[test]
fn every_supported_kernel_matches_scalar_on_fused_row_products() {
    // The fused `mul_add_accumulate` (one generator row over many
    // sources) has its own SIMD loops and tail handling — pin it, per
    // kernel, against source-by-source scalar `mul_add_assign` across
    // adversarial lengths and source counts (including 0 sources and
    // coefficient 0/1 mixed into random rows).
    let mut rng = DetRng::seed_from_u64(0x6163_636d);
    let kernels = Kernel::supported();
    for &len in &ADVERSARIAL_LENS {
        for &n_src in &[0usize, 1, 2, 3, 32] {
            let srcs_data: Vec<Vec<u8>> = (0..n_src)
                .map(|_| {
                    let mut s = vec![0u8; len];
                    rng.fill_bytes(&mut s);
                    s
                })
                .collect();
            let srcs: Vec<&[u8]> = srcs_data.iter().map(|s| s.as_slice()).collect();
            let coeffs: Vec<Gf> = (0..n_src)
                .map(|i| match i {
                    0 => Gf(0),
                    1 => Gf(1),
                    _ => Gf(rng.gen_range(0usize..256) as u8),
                })
                .collect();
            let mut base = vec![0u8; len];
            rng.fill_bytes(&mut base);

            let mut reference = base.clone();
            for (coeff, src) in coeffs.iter().zip(&srcs) {
                kernel::mul_add_assign(Kernel::Scalar, &mut reference, *coeff, src);
            }
            for &k in &kernels {
                let mut out = base.clone();
                kernel::mul_add_accumulate(k, &mut out, &coeffs, &srcs);
                assert_eq!(
                    out,
                    reference,
                    "accumulate {} len={len} n_src={n_src}",
                    k.name()
                );
            }
        }
    }
}

#[test]
fn active_kernel_honors_env_override_or_is_best() {
    // `Kernel::active` is process-wide; this test only asserts the
    // contract that holds under any LRS_GF_KERNEL value the CI matrix
    // sets: the active kernel is supported, and when the env var names
    // a supported kernel it is the one selected.
    let active = Kernel::active();
    assert!(active.is_supported());
    if let Ok(name) = std::env::var("LRS_GF_KERNEL") {
        if let Some(forced) = Kernel::from_name(&name) {
            if forced.is_supported() {
                assert_eq!(active, forced, "env override must win");
            }
        }
    }
}

#[test]
fn table_mul_add_matches_scalar_on_random_slices() {
    let mut rng = DetRng::seed_from_u64(0x6766_6d61);
    for trial in 0..512 {
        // Lengths straddle the unrolled 8-byte chunking, including 0
        // and non-multiples of 8.
        let len = (trial % 67) + usize::from(trial % 3 == 0) * (rng.gen_range(0usize..64));
        let coeff = Gf(rng.gen_range(0usize..256) as u8);
        let mut src = vec![0u8; len];
        rng.fill_bytes(&mut src);
        let mut dst = vec![0u8; len];
        rng.fill_bytes(&mut dst);

        let mut fast = dst.clone();
        slice_mul_add_assign(&mut fast, coeff, &src);
        let mut reference = dst;
        slice_mul_add_assign_scalar(&mut reference, coeff, &src);
        assert_eq!(fast, reference, "coeff={} len={len}", coeff.0);
    }
}

#[test]
fn table_scale_matches_scalar_on_random_slices() {
    let mut rng = DetRng::seed_from_u64(0x6766_7363);
    for trial in 0..512 {
        let len = (trial % 61) + rng.gen_range(0usize..9);
        let coeff = Gf(rng.gen_range(0usize..256) as u8);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);

        let mut fast = buf.clone();
        slice_scale(&mut fast, coeff);
        slice_scale_scalar(&mut buf, coeff);
        assert_eq!(fast, buf, "coeff={} len={len}", coeff.0);
    }
}

#[test]
fn kernels_exhaustive_over_coefficients() {
    // Every coefficient, one mixed-content slice: the mul table row must
    // agree with log/exp math everywhere, including the 0 and 1 rows.
    let src: Vec<u8> = (0..96u16).map(|i| (i * 53 % 256) as u8).collect();
    let base: Vec<u8> = (0..96u16).map(|i| (i * 29 % 256) as u8).collect();
    for c in 0..=255u8 {
        let coeff = Gf(c);
        let mut fast = base.clone();
        let mut reference = base.clone();
        slice_mul_add_assign(&mut fast, coeff, &src);
        slice_mul_add_assign_scalar(&mut reference, coeff, &src);
        assert_eq!(fast, reference, "mul_add coeff={c}");

        let mut fast = src.clone();
        let mut reference = src.clone();
        slice_scale(&mut fast, coeff);
        slice_scale_scalar(&mut reference, coeff);
        assert_eq!(fast, reference, "scale coeff={c}");
    }
}

fn random_blocks(rng: &mut DetRng, k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| {
            let mut b = vec![0u8; len];
            rng.fill_bytes(&mut b);
            b
        })
        .collect()
}

#[test]
fn decode_cache_on_off_bit_identical_at_paper_points() {
    let mut rng = DetRng::seed_from_u64(0x6361_6368);
    for (k, n) in PAPER_POINTS {
        let cached = ReedSolomon::new(k, n).unwrap();
        let uncached = ReedSolomon::with_cache_capacity(k, n, 0).unwrap();
        let blocks = random_blocks(&mut rng, k, 72);
        let enc = cached.encode(&blocks).unwrap();
        assert_eq!(enc, uncached.encode(&blocks).unwrap());

        for _ in 0..40 {
            // Random erasure pattern: keep a random k-subset.
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            let subset: Vec<(usize, &[u8])> =
                order[..k].iter().map(|&i| (i, enc[i].as_slice())).collect();
            let a = cached.decode_refs(&subset, 72).unwrap();
            let b = uncached.decode_refs(&subset, 72).unwrap();
            assert_eq!(a, b, "k={k} n={n}");
            assert_eq!(a, blocks, "k={k} n={n}");
        }
        let (hits, misses) = cached.cache_counters();
        let (u_hits, _) = uncached.cache_counters();
        assert_eq!(u_hits, 0, "capacity-0 cache must never hit");
        // Repeated patterns across 40 draws make at least one hit
        // overwhelmingly likely for the small points; for all points the
        // totals must account for every non-identity decode.
        assert!(hits + misses > 0 || n == k, "k={k} n={n}");
    }
}

#[test]
fn warm_cache_decodes_repeated_pattern_identically() {
    let mut rng = DetRng::seed_from_u64(0x7761_726d);
    let (k, n) = (32, 48);
    let code = ReedSolomon::new(k, n).unwrap();
    let blocks = random_blocks(&mut rng, k, 72);
    let enc = code.encode(&blocks).unwrap();
    // One fixed all-parity-heavy pattern decoded repeatedly: the first
    // decode misses, later ones hit, and every result is identical.
    let subset: Vec<(usize, &[u8])> = (n - k..n).map(|i| (i, enc[i].as_slice())).collect();
    let first = code.decode_refs(&subset, 72).unwrap();
    assert_eq!(first, blocks);
    for _ in 0..5 {
        assert_eq!(code.decode_refs(&subset, 72).unwrap(), first);
    }
    let (hits, misses) = code.cache_counters();
    assert_eq!(misses, 1, "one inversion for one pattern");
    assert_eq!(hits, 5, "subsequent decodes served from cache");
}

#[test]
fn clones_share_the_decode_cache() {
    let (k, n) = (8, 16);
    let code = ReedSolomon::new(k, n).unwrap();
    let clone = code.clone();
    let blocks: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; 24]).collect();
    let enc = code.encode(&blocks).unwrap();
    let subset: Vec<(usize, &[u8])> = (n - k..n).map(|i| (i, enc[i].as_slice())).collect();
    assert_eq!(code.decode_refs(&subset, 24).unwrap(), blocks);
    assert_eq!(clone.decode_refs(&subset, 24).unwrap(), blocks);
    let (hits, misses) = code.cache_counters();
    assert_eq!((hits, misses), (1, 1), "clone reused the original's entry");
}

#[test]
fn decode_entry_points_agree() {
    // decode (owned), decode_refs (borrowed) and decode_into (scratch)
    // must produce the same bytes for identical inputs.
    let mut rng = DetRng::seed_from_u64(0x656e_7472);
    for (k, n) in PAPER_POINTS {
        let code = ReedSolomon::new(k, n).unwrap();
        let blocks = random_blocks(&mut rng, k, 40);
        let enc = code.encode(&blocks).unwrap();
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let owned: Vec<(usize, Vec<u8>)> =
            order[..k].iter().map(|&i| (i, enc[i].clone())).collect();
        let refs: Vec<(usize, &[u8])> =
            order[..k].iter().map(|&i| (i, enc[i].as_slice())).collect();
        let from_owned = code.decode(&owned, 40).unwrap();
        let from_refs = code.decode_refs(&refs, 40).unwrap();
        let mut scratch = Vec::new();
        code.decode_into(&refs, 40, &mut scratch).unwrap();
        assert_eq!(from_owned, from_refs, "k={k} n={n}");
        assert_eq!(scratch, from_refs.concat(), "k={k} n={n}");
    }
}

#[test]
fn interleaved_systematic_blocks_take_identity_path() {
    // >= k systematic blocks interleaved with parity blocks: no
    // inversion may happen (the cache sees neither hit nor miss).
    let (k, n) = (8, 16);
    let code = ReedSolomon::new(k, n).unwrap();
    let blocks: Vec<Vec<u8>> = (0..k).map(|i| vec![(i * 3) as u8; 16]).collect();
    let enc = code.encode(&blocks).unwrap();
    // All k systematic blocks plus interleaved parity blocks, shuffled.
    let indices = [9usize, 0, 12, 4, 1, 15, 2, 3, 10, 5, 6, 7];
    let subset: Vec<(usize, &[u8])> = indices.iter().map(|&i| (i, enc[i].as_slice())).collect();
    assert_eq!(code.decode_refs(&subset, 16).unwrap(), blocks);
    let mut scratch = Vec::new();
    code.decode_into(&subset, 16, &mut scratch).unwrap();
    assert_eq!(scratch, blocks.concat());
    assert_eq!(
        code.cache_counters(),
        (0, 0),
        "identity path must not invert"
    );
}

//! Node identities, the protocol trait, and the execution context.
//!
//! Dissemination protocols (Deluge, Seluge, LR-Seluge) are written
//! against [`Protocol`]; the host — the discrete-event simulator or a
//! real-time socket loop — delivers packets and timer expirations, and
//! the protocol reacts by broadcasting packets and (re)arming timers
//! through the [`Context`]. The host drains the resulting [`Action`]s
//! after each callback returns.

use crate::time::{Duration, SimTime};
use lrs_rng::DetRng;

/// A node identifier (index into the deployment's node list).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol-chosen timer identifier. Re-arming the same id replaces the
/// pending expiration (only the latest arm fires).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u32);

/// Classification of packets for the metric counters (the paper reports
/// data, SNACK, and advertisement counts separately, plus the signature
/// packet).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PacketKind {
    /// Periodic Trickle advertisement.
    Adv,
    /// Selective-NACK request.
    Snack,
    /// Code-image data packet.
    Data,
    /// Hash-page (`M0`) packet.
    HashPage,
    /// The signed Merkle-root packet.
    Signature,
}

impl PacketKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [PacketKind; 5] = [
        PacketKind::Adv,
        PacketKind::Snack,
        PacketKind::Data,
        PacketKind::HashPage,
        PacketKind::Signature,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            PacketKind::Adv => "adv",
            PacketKind::Snack => "snack",
            PacketKind::Data => "data",
            PacketKind::HashPage => "hashpage",
            PacketKind::Signature => "sig",
        }
    }
}

/// Actions a protocol can request; collected by the [`Context`] and
/// executed by the host after the handler returns.
#[derive(Debug)]
pub enum Action {
    /// Transmit a packet to all one-hop neighbors.
    Broadcast {
        /// Metric classification of the packet.
        kind: PacketKind,
        /// Encoded packet bytes (a `Message` encoding; no envelope).
        data: Vec<u8>,
    },
    /// Arm (or re-arm) a timer.
    SetTimer {
        /// The timer to arm.
        timer: TimerId,
        /// Delay until expiration.
        delay: Duration,
    },
    /// Cancel a pending timer (no-op if not armed).
    CancelTimer {
        /// The timer to cancel.
        timer: TimerId,
    },
    /// Observational trace annotation; never changes a run.
    Note {
        /// Static label naming the annotation.
        label: &'static str,
        /// First payload value.
        a: u64,
        /// Second payload value.
        b: u64,
    },
}

/// The environment handed to every protocol callback.
pub struct Context<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node being executed.
    pub id: NodeId,
    rng: &'a mut DetRng,
    actions: &'a mut Vec<Action>,
    /// Airtime per byte, for protocols that pace their transmissions.
    us_per_byte: u64,
    per_packet_overhead_us: u64,
}

impl<'a> Context<'a> {
    /// Builds a context for one protocol callback. The host supplies the
    /// node's deterministic RNG stream and an action buffer it drains
    /// (in push order) once the callback returns.
    pub fn new(
        now: SimTime,
        id: NodeId,
        rng: &'a mut DetRng,
        actions: &'a mut Vec<Action>,
        us_per_byte: u64,
        per_packet_overhead_us: u64,
    ) -> Self {
        Context {
            now,
            id,
            rng,
            actions,
            us_per_byte,
            per_packet_overhead_us,
        }
    }

    /// Broadcasts a packet to all one-hop neighbors.
    ///
    /// Delivery is host-dependent: the simulator applies CSMA deferral,
    /// airtime, collisions, per-link loss, and the application-layer
    /// drop probability; a real transport applies whatever the network
    /// does.
    pub fn broadcast(&mut self, kind: PacketKind, data: Vec<u8>) {
        self.actions.push(Action::Broadcast { kind, data });
    }

    /// Arms (or re-arms) timer `timer` to fire after `delay`.
    pub fn set_timer(&mut self, timer: TimerId, delay: Duration) {
        self.actions.push(Action::SetTimer { timer, delay });
    }

    /// Cancels a pending timer (no-op if not armed).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.actions.push(Action::CancelTimer { timer });
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Emits a protocol-level trace annotation (SNACK round, page
    /// completion, scheduler decision, …). Purely observational: the
    /// event reaches an attached trace sink, if the host has one, and
    /// is otherwise dropped, so noting never changes a run.
    pub fn note(&mut self, label: &'static str, a: u64, b: u64) {
        self.actions.push(Action::Note { label, a, b });
    }

    /// Time a packet of `bytes` occupies the channel.
    pub fn airtime(&self, bytes: usize) -> Duration {
        Duration::from_micros(self.per_packet_overhead_us + self.us_per_byte * bytes as u64)
    }
}

/// A per-node protocol state machine.
///
/// Implementations must be deterministic given the [`Context`] RNG; the
/// simulator guarantees reproducible runs for a fixed seed.
pub trait Protocol {
    /// Called once at time zero.
    fn on_init(&mut self, ctx: &mut Context<'_>);

    /// Called when a packet is received (after all loss processes).
    fn on_packet(&mut self, ctx: &mut Context<'_>, from: NodeId, data: &[u8]);

    /// Called when an armed timer fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId);

    /// Whether this node has finished its dissemination goal; the
    /// host records the first time this becomes true and can stop
    /// early once every node is complete.
    fn is_complete(&self) -> bool;

    /// Called when the node restarts after a crash fault. The protocol
    /// must drop whatever its model considers volatile RAM state and
    /// resume from what survives in "flash". The default treats the
    /// whole protocol as flash-resident and simply re-runs
    /// [`on_init`](Self::on_init).
    fn on_reboot(&mut self, ctx: &mut Context<'_>) {
        self.on_init(ctx);
    }

    /// A monotone-per-node goodput indicator for the host's stall
    /// watchdog: any genuine forward progress (a buffered packet, a
    /// completed page) must eventually increase it. The default only
    /// distinguishes incomplete from complete.
    fn progress(&self) -> u64 {
        u64::from(self.is_complete())
    }

    /// One-line state description (page/packet bit-vectors and the
    /// like) included in the watchdog's diagnostic dump. Empty by
    /// default.
    fn diagnostic(&self) -> String {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_formula() {
        let mut rng = DetRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let ctx = Context::new(SimTime::ZERO, NodeId(0), &mut rng, &mut actions, 416, 1000);
        assert_eq!(ctx.airtime(36), Duration::from_micros(1000 + 36 * 416));
    }

    #[test]
    fn actions_queue_in_order() {
        let mut rng = DetRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut ctx = Context::new(SimTime::ZERO, NodeId(1), &mut rng, &mut actions, 1, 0);
        ctx.broadcast(PacketKind::Adv, vec![1]);
        ctx.set_timer(TimerId(7), Duration::from_secs(1));
        ctx.cancel_timer(TimerId(7));
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Broadcast { .. }));
        assert!(matches!(
            actions[1],
            Action::SetTimer {
                timer: TimerId(7),
                ..
            }
        ));
        assert!(matches!(
            actions[2],
            Action::CancelTimer { timer: TimerId(7) }
        ));
    }

    #[test]
    fn packet_kind_labels() {
        for kind in PacketKind::ALL {
            assert!(!kind.label().is_empty());
        }
    }
}

//! A generation-checked timer wheel for real-time hosts.
//!
//! Mirrors the simulator's `set_timer`/`cancel_timer` semantics exactly:
//! every arm of a [`TimerId`] bumps that timer's generation and enqueues
//! an expiration stamped with it; cancel bumps the generation without
//! enqueueing. An expiration whose stamp no longer matches the current
//! generation is stale — superseded by a later arm or a cancel — and is
//! discarded when popped. Only the latest arm ever fires.

use crate::node::TimerId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Pending timer expirations for one node.
#[derive(Default)]
pub struct TimerWheel {
    /// Current generation per timer id; stale heap entries carry an
    /// older stamp.
    gens: HashMap<u32, u64>,
    /// Min-heap of (deadline, timer, generation stamp).
    heap: BinaryHeap<Reverse<(SimTime, u32, u64)>>,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel::default()
    }

    /// Arms (or re-arms) `timer` to fire at `deadline`; any previously
    /// pending expiration of the same timer becomes stale.
    pub fn arm(&mut self, timer: TimerId, deadline: SimTime) {
        let gen = self.gens.entry(timer.0).or_insert(0);
        *gen += 1;
        self.heap.push(Reverse((deadline, timer.0, *gen)));
    }

    /// Cancels `timer` (no-op if not armed).
    pub fn cancel(&mut self, timer: TimerId) {
        *self.gens.entry(timer.0).or_insert(0) += 1;
    }

    /// The earliest live deadline, if any (stale entries are pruned).
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        while let Some(Reverse((deadline, timer, gen))) = self.heap.peek().copied() {
            if self.gens.get(&timer) == Some(&gen) {
                return Some(deadline);
            }
            self.heap.pop();
        }
        None
    }

    /// Pops the earliest live expiration with `deadline <= now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<TimerId> {
        while let Some(Reverse((deadline, timer, gen))) = self.heap.peek().copied() {
            if self.gens.get(&timer) != Some(&gen) {
                self.heap.pop();
                continue;
            }
            if deadline > now {
                return None;
            }
            self.heap.pop();
            return Some(TimerId(timer));
        }
        None
    }

    /// Whether any live expiration is pending.
    pub fn is_empty(&mut self) -> bool {
        self.next_deadline().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_arm_wins() {
        let mut w = TimerWheel::new();
        w.arm(TimerId(3), SimTime(100));
        w.arm(TimerId(3), SimTime(500));
        // The first arm is stale: nothing is due at its deadline.
        assert_eq!(w.pop_due(SimTime(100)), None);
        assert_eq!(w.pop_due(SimTime(499)), None);
        assert_eq!(w.pop_due(SimTime(500)), Some(TimerId(3)));
        assert_eq!(w.pop_due(SimTime(10_000)), None);
    }

    #[test]
    fn cancel_invalidates() {
        let mut w = TimerWheel::new();
        w.arm(TimerId(1), SimTime(50));
        w.cancel(TimerId(1));
        assert_eq!(w.pop_due(SimTime(1_000)), None);
        assert!(w.is_empty());
        // Re-arming after cancel fires normally.
        w.arm(TimerId(1), SimTime(2_000));
        assert_eq!(w.pop_due(SimTime(2_000)), Some(TimerId(1)));
    }

    #[test]
    fn independent_timers_fire_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.arm(TimerId(2), SimTime(300));
        w.arm(TimerId(1), SimTime(100));
        w.arm(TimerId(0), SimTime(200));
        assert_eq!(w.next_deadline(), Some(SimTime(100)));
        assert_eq!(w.pop_due(SimTime(1_000)), Some(TimerId(1)));
        assert_eq!(w.pop_due(SimTime(1_000)), Some(TimerId(0)));
        assert_eq!(w.pop_due(SimTime(1_000)), Some(TimerId(2)));
        assert_eq!(w.pop_due(SimTime(1_000)), None);
    }

    #[test]
    fn next_deadline_skips_stale() {
        let mut w = TimerWheel::new();
        w.arm(TimerId(0), SimTime(10));
        w.arm(TimerId(0), SimTime(900));
        w.arm(TimerId(5), SimTime(400));
        w.cancel(TimerId(5));
        assert_eq!(w.next_deadline(), Some(SimTime(900)));
    }
}

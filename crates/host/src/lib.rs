//! Host-agnostic protocol contract and real-time host runtime.
//!
//! Dissemination protocols (Deluge, Seluge, LR-Seluge) are written
//! against the [`Protocol`] trait: a pure state machine that reacts to
//! packets and timer expirations by emitting [`Action`]s through a
//! [`Context`]. Nothing in the contract names a simulator — which is
//! the point. Two hosts drive the identical protocol code:
//!
//! * **`lrs-netsim`** — the discrete-event simulator: virtual time,
//!   modeled airtime/CSMA/collisions, deterministic loss processes,
//!   bit-exact replay.
//! * **[`Host`]** (this crate) — a real-time event loop over a
//!   [`Transport`] (UDP sockets, in-process channels): monotonic-clock
//!   virtual time via a configurable [`time scale`](HostConfig::time_scale),
//!   a [`TimerWheel`] mirroring the simulator's `set_timer`/`cancel_timer`
//!   generation semantics, and the [`envelope`] framing that carries
//!   protocol packets between processes.
//!
//! The envelope (magic + version + sender + length) lives strictly at
//! the transport layer: the bytes handed to `Protocol::on_packet` are
//! the same `Message` encodings the simulator delivers, so packet
//! digests — and therefore every sim golden and capsule replay — are
//! unaffected by how the packet traveled.

pub mod envelope;
pub mod host;
pub mod node;
pub mod time;
pub mod timer;

pub use envelope::{decode_frame, encode_frame, Frame};
pub use host::{ChannelTransport, Host, HostConfig, HostReport, Transport, UdpTransport};
pub use node::{Action, Context, NodeId, PacketKind, Protocol, TimerId};
pub use time::{Duration, SimTime};
pub use timer::TimerWheel;

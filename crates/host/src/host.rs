//! The real-time host: drives a [`Protocol`] over a [`Transport`].
//!
//! This is driver (b) for the protocol contract — the same state
//! machines the discrete-event simulator executes, but clocked by the
//! OS monotonic clock and fed by real sockets or in-process channels.
//!
//! Virtual time is derived from wall time through a configurable
//! [`time scale`](HostConfig::time_scale): `virtual_us = wall_us ×
//! scale`. Protocols are written against radio-era constants (multi-
//! second Trickle intervals, a 2.5 s retry timer); scaling time rather
//! than patching constants preserves every protocol ratio — timer
//! relative ordering, pacing vs. timeout proportions — while letting a
//! localhost swarm disseminate in wall-clock seconds.
//!
//! Timer semantics mirror the simulator exactly via the generation-
//! checked [`TimerWheel`]; broadcasts are wrapped in the transport
//! [`envelope`](crate::envelope) and handed to the transport, and
//! inbound datagrams are unwrapped (malformed or self-originated
//! frames dropped and counted) before reaching `on_packet`.

use crate::envelope::{decode_frame, encode_frame};
use crate::node::{Action, Context, NodeId, Protocol};
use crate::time::SimTime;
use crate::timer::TimerWheel;
use lrs_rng::DetRng;
use std::io;
use std::sync::mpsc;
use std::time::Instant;

/// How a host maps wall time onto protocol time and airtime.
#[derive(Clone, Copy, Debug)]
pub struct HostConfig {
    /// Airtime per payload byte reported to the protocol (µs); matches
    /// the simulator's default 19.2 kbps radio model so pacing
    /// decisions are identical.
    pub us_per_byte: u64,
    /// Fixed per-packet overhead reported to the protocol (µs).
    pub per_packet_overhead_us: u64,
    /// Virtual microseconds per wall microsecond (≥ 1). At 10, the
    /// protocol's 2.5 s retry timer fires after 250 ms of wall time.
    pub time_scale: u64,
    /// Longest wall-clock block in one receive call when no timer is
    /// pending sooner.
    pub poll: std::time::Duration,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            us_per_byte: 416,
            per_packet_overhead_us: 2_000,
            time_scale: 10,
            poll: std::time::Duration::from_millis(20),
        }
    }
}

/// How a host reaches its peers. `send` carries one encoded envelope
/// frame toward every other node (broadcast semantics); `recv` waits up
/// to `wait` of wall time for the next inbound datagram.
pub trait Transport {
    /// Broadcasts one frame to all peers (never back to the sender).
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Receives the next datagram, or `None` if `wait` elapses first.
    fn recv(&mut self, wait: std::time::Duration) -> io::Result<Option<Vec<u8>>>;
}

/// Counters and final state from a host run.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostReport {
    /// Whether the protocol reported completion.
    pub complete: bool,
    /// Virtual time when the run ended.
    pub finished_at: SimTime,
    /// Frames handed to the transport.
    pub tx_frames: u64,
    /// Well-formed frames delivered to the protocol.
    pub rx_frames: u64,
    /// Datagrams dropped at the envelope (malformed, wrong version,
    /// or self-originated).
    pub rx_rejected: u64,
}

/// A real-time event loop driving one [`Protocol`] instance.
pub struct Host<P: Protocol, T: Transport> {
    id: NodeId,
    protocol: P,
    transport: T,
    cfg: HostConfig,
    rng: DetRng,
    wheel: TimerWheel,
    epoch: Instant,
    actions: Vec<Action>,
    tx_frames: u64,
    rx_frames: u64,
    rx_rejected: u64,
}

impl<P: Protocol, T: Transport> Host<P, T> {
    /// Builds a host for node `id`. The RNG stream is seeded exactly
    /// like the simulator seeds per-node streams would be — callers
    /// pick the mixing; determinism across hosts is not required (real
    /// networks are not deterministic), only per-node reproducibility
    /// of protocol-internal choices.
    pub fn new(id: NodeId, protocol: P, transport: T, seed: u64, cfg: HostConfig) -> Self {
        assert!(cfg.time_scale >= 1, "time_scale must be >= 1");
        Host {
            id,
            protocol,
            transport,
            cfg,
            rng: DetRng::seed_from_u64(seed ^ u64::from(id.0).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            wheel: TimerWheel::new(),
            epoch: Instant::now(),
            actions: Vec::new(),
            tx_frames: 0,
            rx_frames: 0,
            rx_rejected: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64 * self.cfg.time_scale)
    }

    /// The node this host runs.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol state machine.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Whether the protocol reports completion.
    pub fn is_complete(&self) -> bool {
        self.protocol.is_complete()
    }

    /// Counters so far.
    pub fn report(&self) -> HostReport {
        HostReport {
            complete: self.protocol.is_complete(),
            finished_at: self.now(),
            tx_frames: self.tx_frames,
            rx_frames: self.rx_frames,
            rx_rejected: self.rx_rejected,
        }
    }

    fn dispatch(&mut self, f: impl FnOnce(&mut P, &mut Context<'_>)) -> io::Result<()> {
        let now = self.now();
        {
            let mut ctx = Context::new(
                now,
                self.id,
                &mut self.rng,
                &mut self.actions,
                self.cfg.us_per_byte,
                self.cfg.per_packet_overhead_us,
            );
            f(&mut self.protocol, &mut ctx);
        }
        let actions = std::mem::take(&mut self.actions);
        for action in actions {
            match action {
                Action::Broadcast { kind, data } => {
                    let frame = encode_frame(self.id, kind, &data);
                    self.transport.send(&frame)?;
                    self.tx_frames += 1;
                }
                Action::SetTimer { timer, delay } => self.wheel.arm(timer, now + delay),
                Action::CancelTimer { timer } => self.wheel.cancel(timer),
                // Observational only; real hosts have no trace sink yet.
                Action::Note { .. } => {}
            }
        }
        Ok(())
    }

    /// Runs `on_init`. Call once before stepping.
    pub fn init(&mut self) -> io::Result<()> {
        self.dispatch(|p, ctx| p.on_init(ctx))
    }

    /// Fires every due timer, then waits for at most one inbound
    /// datagram (bounded by the next timer deadline or the poll
    /// interval) and delivers it.
    pub fn step(&mut self) -> io::Result<()> {
        loop {
            let now = self.now();
            match self.wheel.pop_due(now) {
                Some(timer) => self.dispatch(|p, ctx| p.on_timer(ctx, timer))?,
                None => break,
            }
        }
        let wait = match self.wheel.next_deadline() {
            Some(deadline) => {
                let virtual_gap = deadline.saturating_since(self.now()).as_micros();
                // Round the wall wait up so we do not spin short of the
                // deadline; pop_due tolerates firing late.
                let wall_us = virtual_gap.div_ceil(self.cfg.time_scale);
                std::time::Duration::from_micros(wall_us).min(self.cfg.poll)
            }
            None => self.cfg.poll,
        };
        if let Some(datagram) = self.transport.recv(wait)? {
            match decode_frame(&datagram) {
                Some(frame) if frame.from != self.id => {
                    self.rx_frames += 1;
                    let (from, payload) = (frame.from, frame.payload.to_vec());
                    self.dispatch(|p, ctx| p.on_packet(ctx, from, &payload))?;
                }
                _ => self.rx_rejected += 1,
            }
        }
        Ok(())
    }

    /// Steps until the protocol completes or `wall_deadline` elapses;
    /// returns the final report.
    pub fn run(&mut self, wall_deadline: std::time::Duration) -> io::Result<HostReport> {
        let start = Instant::now();
        self.init()?;
        while !self.protocol.is_complete() && start.elapsed() < wall_deadline {
            self.step()?;
        }
        Ok(self.report())
    }

    /// Keeps answering peers for `linger` after completion — a
    /// completed node is a seeder: its advertisements and data answers
    /// are what finish the stragglers.
    pub fn linger(&mut self, linger: std::time::Duration) -> io::Result<()> {
        let start = Instant::now();
        while start.elapsed() < linger {
            self.step()?;
        }
        Ok(())
    }
}

/// [`Transport`] over a UDP socket: broadcast fans out one `send_to`
/// per peer address (typically just the swarm proxy, which applies the
/// loss model and fans out to everyone else).
pub struct UdpTransport {
    socket: std::net::UdpSocket,
    peers: Vec<std::net::SocketAddr>,
}

impl UdpTransport {
    /// Binds `addr` and remembers the peer list.
    pub fn bind(
        addr: std::net::SocketAddr,
        peers: Vec<std::net::SocketAddr>,
    ) -> io::Result<UdpTransport> {
        let socket = std::net::UdpSocket::bind(addr)?;
        Ok(UdpTransport { socket, peers })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.socket.local_addr()
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        for peer in &self.peers {
            match self.socket.send_to(frame, peer) {
                Ok(_) => {}
                // A peer that is not bound yet surfaces as a reflected
                // ICMP error on Linux; dissemination is loss-tolerant,
                // so treat it as a dropped packet.
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn recv(&mut self, wait: std::time::Duration) -> io::Result<Option<Vec<u8>>> {
        // set_read_timeout rejects a zero duration.
        let wait = wait.max(std::time::Duration::from_micros(100));
        self.socket.set_read_timeout(Some(wait))?;
        let mut buf = [0u8; 2048];
        match self.socket.recv_from(&mut buf) {
            Ok((n, _src)) => Ok(Some(buf[..n].to_vec())),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::ConnectionRefused
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// [`Transport`] over in-process mpsc channels, for loopback swarms in
/// tests: a router thread owns the receiving ends of every node's `tx`
/// and forwards frames (minus the sender, minus whatever its loss
/// model drops) into the other nodes' `rx` queues.
pub struct ChannelTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Wraps an outbound sender (to the router) and an inbound receiver.
    pub fn new(tx: mpsc::Sender<Vec<u8>>, rx: mpsc::Receiver<Vec<u8>>) -> ChannelTransport {
        ChannelTransport { tx, rx }
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "router hung up"))
    }

    fn recv(&mut self, wait: std::time::Duration) -> io::Result<Option<Vec<u8>>> {
        match self.rx.recv_timeout(wait) {
            Ok(frame) => Ok(Some(frame)),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "router hung up"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{PacketKind, TimerId};
    use crate::time::Duration;

    /// Node 0 floods a token once; everyone else re-floods on first
    /// receipt. The host-loop analog of the netsim doc example.
    struct Flood {
        seen: bool,
        origin: bool,
    }

    impl Protocol for Flood {
        fn on_init(&mut self, ctx: &mut Context<'_>) {
            if self.origin {
                self.seen = true;
                ctx.broadcast(PacketKind::Data, b"token".to_vec());
            }
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, _from: NodeId, data: &[u8]) {
            if !self.seen && data == b"token" {
                self.seen = true;
                ctx.broadcast(PacketKind::Data, b"token".to_vec());
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerId) {}
        fn is_complete(&self) -> bool {
            self.seen
        }
    }

    /// Completes when its timer has fired twice; re-arms itself.
    struct TwoTicks {
        fired: u32,
    }

    impl Protocol for TwoTicks {
        fn on_init(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(TimerId(0), Duration::from_millis(5));
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: NodeId, _: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, t: TimerId) {
            self.fired += 1;
            if self.fired < 2 {
                ctx.set_timer(t, Duration::from_millis(5));
            }
        }
        fn is_complete(&self) -> bool {
            self.fired >= 2
        }
    }

    /// A transport wired to nothing: sends vanish, receives time out.
    struct NullTransport;
    impl Transport for NullTransport {
        fn send(&mut self, _frame: &[u8]) -> io::Result<()> {
            Ok(())
        }
        fn recv(&mut self, wait: std::time::Duration) -> io::Result<Option<Vec<u8>>> {
            std::thread::sleep(wait.min(std::time::Duration::from_millis(1)));
            Ok(None)
        }
    }

    #[test]
    fn timers_fire_on_the_scaled_clock() {
        let cfg = HostConfig {
            time_scale: 100,
            ..HostConfig::default()
        };
        let mut host = Host::new(NodeId(0), TwoTicks { fired: 0 }, NullTransport, 7, cfg);
        let report = host
            .run(std::time::Duration::from_secs(2))
            .expect("null transport cannot fail");
        assert!(report.complete, "both ticks fired");
    }

    #[test]
    fn two_hosts_flood_over_channels() {
        // Direct cross-wiring: each host's outbound channel is the
        // other's inbound queue.
        let (tx_a, rx_b) = mpsc::channel();
        let (tx_b, rx_a) = mpsc::channel();
        let cfg = HostConfig::default();
        let mut a = Host::new(
            NodeId(0),
            Flood {
                seen: false,
                origin: true,
            },
            ChannelTransport::new(tx_a, rx_a),
            1,
            cfg,
        );
        let mut b = Host::new(
            NodeId(1),
            Flood {
                seen: false,
                origin: false,
            },
            ChannelTransport::new(tx_b, rx_b),
            1,
            cfg,
        );
        let t = std::thread::spawn(move || b.run(std::time::Duration::from_secs(5)));
        let ra = a.run(std::time::Duration::from_secs(5)).expect("host a");
        let rb = t.join().expect("join").expect("host b");
        assert!(ra.complete && rb.complete);
        assert_eq!(rb.rx_frames, 1, "b received exactly the token");
    }

    #[test]
    fn malformed_and_self_frames_are_rejected() {
        let (tx, rx) = mpsc::channel();
        let (tx_out, _rx_sink) = mpsc::channel();
        // Garbage, then a valid frame claiming to be from ourselves,
        // then the real token.
        tx.send(b"not an envelope".to_vec()).unwrap();
        tx.send(encode_frame(NodeId(5), PacketKind::Data, b"token"))
            .unwrap();
        tx.send(encode_frame(NodeId(1), PacketKind::Data, b"token"))
            .unwrap();
        let mut host = Host::new(
            NodeId(5),
            Flood {
                seen: false,
                origin: false,
            },
            ChannelTransport::new(tx_out, rx),
            3,
            HostConfig::default(),
        );
        let report = host.run(std::time::Duration::from_secs(5)).expect("run");
        assert!(report.complete);
        assert_eq!(report.rx_frames, 1);
        assert_eq!(report.rx_rejected, 2);
    }
}

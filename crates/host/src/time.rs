//! Virtual time for protocol hosts.
//!
//! Time is measured in microseconds from host start. Newtypes keep
//! instants ([`SimTime`]) and spans ([`Duration`]) from being mixed up.
//! The discrete-event simulator advances `SimTime` by popping events;
//! the real-time [`Host`](crate::host::Host) derives it from a
//! monotonic clock. Protocol code sees the same type either way.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (microseconds since host start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// Host start.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since host start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since host start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a span from microseconds.
    pub fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Builds a span from milliseconds.
    pub fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Builds a span from seconds.
    pub fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// Microseconds in the span.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in the span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor.
    // Scalar scaling, not `Duration * Duration`; the `std::ops::Mul` name
    // clash is intentional.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, factor: u64) -> Duration {
        Duration(self.0 * factor)
    }

    /// Halves the span.
    pub fn half(self) -> Duration {
        Duration(self.0 / 2)
    }

    /// The smaller of two spans.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        let t2 = t + Duration::from_secs(1);
        assert_eq!(t2 - t, Duration::from_secs(1));
        assert_eq!(t.saturating_since(t2), Duration::ZERO);
        assert_eq!(t2.saturating_since(t), Duration::from_secs(1));
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(2).as_micros(), 2_000_000);
        assert!((Duration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Duration::from_secs(3).half(), Duration::from_millis(1500));
        assert_eq!(Duration::from_secs(3).mul(2), Duration::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn min_max() {
        let a = Duration::from_secs(1);
        let b = Duration::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime(3).max(SimTime(5)), SimTime(5));
    }
}

//! The transport-layer envelope for protocol packets.
//!
//! Between processes a protocol packet travels as
//!
//! ```text
//! +-------+---------+------+------------+---------+---------+
//! | magic | version | kind | from (u32) | len u16 | payload |
//! |  4 B  |   1 B   | 1 B  |    BE      |   BE    |  len B  |
//! +-------+---------+------+------------+---------+---------+
//! ```
//!
//! The payload is the exact `Message` encoding the protocol asked to
//! broadcast — the same bytes the simulator delivers in-process. The
//! envelope exists **only** at the transport layer: it is stripped
//! before `Protocol::on_packet`, so packet digests (and with them every
//! sim golden and capsule replay) are independent of the framing. The
//! explicit `len` rejects datagrams truncated or padded in flight, and
//! `decode_frame` is total — any malformed input returns `None`, never
//! panics — because UDP peers are untrusted.

use crate::node::{NodeId, PacketKind};

/// Envelope magic: identifies LR-Seluge swarm traffic.
pub const MAGIC: [u8; 4] = *b"LRSW";
/// Envelope version; bumped on any framing change.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 4 + 1 + 1 + 4 + 2;
/// Maximum payload length carried by one frame.
pub const MAX_PAYLOAD: usize = u16::MAX as usize;

/// A decoded envelope: who sent it, what metric class, and the raw
/// protocol packet bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The sending node.
    pub from: NodeId,
    /// Metric classification (mirrors the simulator's per-kind counters).
    pub kind: PacketKind,
    /// The protocol packet, exactly as the sender's protocol encoded it.
    pub payload: &'a [u8],
}

fn kind_tag(kind: PacketKind) -> u8 {
    match kind {
        PacketKind::Adv => 1,
        PacketKind::Snack => 2,
        PacketKind::Data => 3,
        PacketKind::HashPage => 4,
        PacketKind::Signature => 5,
    }
}

fn tag_kind(tag: u8) -> Option<PacketKind> {
    Some(match tag {
        1 => PacketKind::Adv,
        2 => PacketKind::Snack,
        3 => PacketKind::Data,
        4 => PacketKind::HashPage,
        5 => PacketKind::Signature,
        _ => return None,
    })
}

/// Wraps a protocol packet in the transport envelope.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`]; protocol packets are
/// radio-sized (well under a kilobyte), so this indicates a bug.
pub fn encode_frame(from: NodeId, kind: PacketKind, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "oversized frame payload");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind_tag(kind));
    out.extend_from_slice(&from.0.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses a datagram into a [`Frame`]. Returns `None` for anything that
/// is not a well-formed envelope: wrong magic or version, unknown kind
/// tag, or a length field that disagrees with the datagram size.
pub fn decode_frame(bytes: &[u8]) -> Option<Frame<'_>> {
    if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC || bytes[4] != VERSION {
        return None;
    }
    let kind = tag_kind(bytes[5])?;
    let from = NodeId(u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]));
    let len = u16::from_be_bytes([bytes[10], bytes[11]]) as usize;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != len {
        return None;
    }
    Some(Frame {
        from,
        kind,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_kinds() {
        for kind in PacketKind::ALL {
            let payload = vec![0xA5; 37];
            let frame = encode_frame(NodeId(12), kind, &payload);
            let decoded = decode_frame(&frame).expect("round trip");
            assert_eq!(decoded.from, NodeId(12));
            assert_eq!(decoded.kind, kind);
            assert_eq!(decoded.payload, &payload[..]);
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = encode_frame(NodeId(0), PacketKind::Adv, &[]);
        let decoded = decode_frame(&frame).expect("round trip");
        assert!(decoded.payload.is_empty());
    }

    #[test]
    fn rejects_malformed() {
        let good = encode_frame(NodeId(3), PacketKind::Data, b"payload");
        // Truncation at every prefix length.
        for cut in 0..good.len() {
            assert!(decode_frame(&good[..cut]).is_none(), "cut={cut}");
        }
        // Wrong magic / version / kind tag.
        for (idx, label) in [(0, "magic"), (4, "version"), (5, "kind")] {
            let mut bad = good.clone();
            bad[idx] ^= 0xFF;
            assert!(decode_frame(&bad).is_none(), "corrupt {label}");
        }
        // Length field disagreeing with the datagram (both directions).
        let mut short_len = good.clone();
        short_len[11] = short_len[11].wrapping_sub(1);
        assert!(decode_frame(&short_len).is_none());
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_frame(&padded).is_none());
    }
}

//! Property-based tests across the crypto substrate.

use lrs_crypto::bignum::U256;
use lrs_crypto::ec::{fadd, finv, fmul, fsub, generator, mul_generator, Jacobian};
use lrs_crypto::merkle::MerkleTree;
use lrs_crypto::schnorr::Keypair;
use proptest::prelude::*;

fn u256_small() -> impl Strategy<Value = U256> {
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| U256([a, b, 0, 0]))
}

fn u256_any() -> impl Strategy<Value = U256> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(a, b, c, d)| U256([a, b, c, d]))
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (sum, carry) = U256::from(a).overflowing_add(U256::from(b));
        prop_assert!(!carry);
        prop_assert_eq!(sum.0[0] as u128 + ((sum.0[1] as u128) << 64), a as u128 + b as u128);
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = U256::from(a).full_mul(U256::from(b));
        let want = a as u128 * b as u128;
        prop_assert_eq!(prod.0[0], want as u64);
        prop_assert_eq!(prod.0[1], (want >> 64) as u64);
        prop_assert_eq!(prod.0[2], 0);
    }

    #[test]
    fn sub_is_inverse_of_add(a in u256_any(), b in u256_any()) {
        let (sum, _carry) = a.overflowing_add(b);
        // Wrapping arithmetic: (a + b) - b == a mod 2^256.
        prop_assert_eq!(sum.wrapping_sub(b), a);
    }

    #[test]
    fn modular_mul_is_homomorphic(a in u256_small(), b in u256_small()) {
        // (a*b) mod m == ((a mod m)*(b mod m)) mod m
        let m = U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
        let lhs = a.mul_mod(b, &m);
        let ar = a.full_mul(U256::ONE).reduce(&m);
        let br = b.full_mul(U256::ONE).reduce(&m);
        let rhs = ar.mul_mod(br, &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn field_axioms_hold(a in u256_small(), b in u256_small()) {
        // Work with reduced elements of the secp256k1 field.
        let x = fmul(a, U256::ONE);
        let y = fmul(b, U256::ONE);
        prop_assert_eq!(fadd(x, y), fadd(y, x));
        prop_assert_eq!(fmul(x, y), fmul(y, x));
        prop_assert_eq!(fsub(fadd(x, y), y), x);
        if !x.is_zero() {
            prop_assert_eq!(fmul(x, finv(x)), U256::ONE);
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn scalar_mult_respects_addition(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        // (a + b)G == aG + bG for small scalars.
        let left = mul_generator(&U256::from(a + b));
        let right = Jacobian::from_affine(mul_generator(&U256::from(a)))
            .add(&Jacobian::from_affine(mul_generator(&U256::from(b))))
            .to_affine();
        prop_assert_eq!(left, right);
        prop_assert!(left.is_on_curve());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn schnorr_roundtrip_random_keys(seed in any::<[u8; 16]>(), msg in any::<[u8; 24]>()) {
        let kp = Keypair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig));
        let mut other = msg;
        other[0] ^= 1;
        prop_assert!(!kp.public().verify(&other, &sig));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn merkle_accepts_honest_rejects_flipped(
        depth in 0u32..5,
        idx_seed in any::<u64>(),
        flip_byte in any::<u8>(),
    ) {
        let n = 1usize << depth;
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 9]).collect();
        let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice()));
        let idx = (idx_seed as usize) % n;
        let proof = tree.proof(idx);
        prop_assert!(proof.verify(&leaves[idx], &tree.root()));
        let mut forged = leaves[idx].clone();
        let pos = flip_byte as usize % forged.len();
        forged[pos] ^= 0x01;
        prop_assert!(!proof.verify(&forged, &tree.root()));
    }
}

#[test]
fn generator_is_fixed_point_of_one() {
    assert_eq!(mul_generator(&U256::ONE), generator());
}

//! Property-style tests across the crypto substrate, driven by a
//! fixed-seed deterministic generator (the registry is unreachable in
//! this environment, so `proptest` is unavailable).

use lrs_crypto::bignum::U256;
use lrs_crypto::ec::{fadd, finv, fmul, fsub, generator, mul_generator, Jacobian};
use lrs_crypto::hash::{hash_image, hash_image_batch};
use lrs_crypto::merkle::MerkleTree;
use lrs_crypto::schnorr::Keypair;
use lrs_crypto::sha256::sha256;
use lrs_crypto::sha256_mb::{sha256_batch, sha256_batch_parts_with, ShaKernel};
use lrs_rng::DetRng;

fn u256_small(rng: &mut DetRng) -> U256 {
    U256([rng.gen(), rng.gen(), 0, 0])
}

fn u256_any(rng: &mut DetRng) -> U256 {
    U256([rng.gen(), rng.gen(), rng.gen(), rng.gen()])
}

#[test]
fn add_matches_u128() {
    let mut rng = DetRng::seed_from_u64(0xadd0);
    for _ in 0..256 {
        let (a, b): (u64, u64) = (rng.gen(), rng.gen());
        let (sum, carry) = U256::from(a).overflowing_add(U256::from(b));
        assert!(!carry);
        assert_eq!(
            sum.0[0] as u128 + ((sum.0[1] as u128) << 64),
            a as u128 + b as u128
        );
    }
}

#[test]
fn mul_matches_u128() {
    let mut rng = DetRng::seed_from_u64(0x4d55);
    for _ in 0..256 {
        let (a, b): (u64, u64) = (rng.gen(), rng.gen());
        let prod = U256::from(a).full_mul(U256::from(b));
        let want = a as u128 * b as u128;
        assert_eq!(prod.0[0], want as u64);
        assert_eq!(prod.0[1], (want >> 64) as u64);
        assert_eq!(prod.0[2], 0);
    }
}

#[test]
fn sub_is_inverse_of_add() {
    let mut rng = DetRng::seed_from_u64(0x5b5b);
    for _ in 0..256 {
        let (a, b) = (u256_any(&mut rng), u256_any(&mut rng));
        let (sum, _carry) = a.overflowing_add(b);
        // Wrapping arithmetic: (a + b) - b == a mod 2^256.
        assert_eq!(sum.wrapping_sub(b), a);
    }
}

#[test]
fn modular_mul_is_homomorphic() {
    // (a*b) mod m == ((a mod m)*(b mod m)) mod m
    let m = U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
    let mut rng = DetRng::seed_from_u64(0x4d4d);
    for _ in 0..128 {
        let (a, b) = (u256_small(&mut rng), u256_small(&mut rng));
        let lhs = a.mul_mod(b, &m);
        let ar = a.full_mul(U256::ONE).reduce(&m);
        let br = b.full_mul(U256::ONE).reduce(&m);
        let rhs = ar.mul_mod(br, &m);
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn field_axioms_hold() {
    let mut rng = DetRng::seed_from_u64(0xf1e1d);
    for _ in 0..128 {
        let (a, b) = (u256_small(&mut rng), u256_small(&mut rng));
        // Work with reduced elements of the secp256k1 field.
        let x = fmul(a, U256::ONE);
        let y = fmul(b, U256::ONE);
        assert_eq!(fadd(x, y), fadd(y, x));
        assert_eq!(fmul(x, y), fmul(y, x));
        assert_eq!(fsub(fadd(x, y), y), x);
        if !x.is_zero() {
            assert_eq!(fmul(x, finv(x)), U256::ONE);
        }
    }
}

#[test]
fn scalar_mult_respects_addition() {
    let mut rng = DetRng::seed_from_u64(0x5ca1a5);
    for _ in 0..16 {
        // (a + b)G == aG + bG for small scalars.
        let a = rng.gen_range(1u64..1_000_000);
        let b = rng.gen_range(1u64..1_000_000);
        let left = mul_generator(&U256::from(a + b));
        let right = Jacobian::from_affine(mul_generator(&U256::from(a)))
            .add(&Jacobian::from_affine(mul_generator(&U256::from(b))))
            .to_affine();
        assert_eq!(left, right);
        assert!(left.is_on_curve());
    }
}

#[test]
fn schnorr_roundtrip_random_keys() {
    let mut rng = DetRng::seed_from_u64(0x5c40);
    for _ in 0..8 {
        let mut seed = [0u8; 16];
        let mut msg = [0u8; 24];
        rng.fill_bytes(&mut seed);
        rng.fill_bytes(&mut msg);
        let kp = Keypair::from_seed(&seed);
        let sig = kp.sign(&msg);
        assert!(kp.public().verify(&msg, &sig));
        let mut other = msg;
        other[0] ^= 1;
        assert!(!kp.public().verify(&other, &sig));
    }
}

#[test]
fn merkle_accepts_honest_rejects_flipped() {
    let mut rng = DetRng::seed_from_u64(0x4d65_726b);
    for _ in 0..32 {
        let depth = rng.gen_range(0u32..5);
        let n = 1usize << depth;
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 9]).collect();
        let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice()));
        let idx = rng.gen_range(0usize..n);
        let proof = tree.proof(idx);
        assert!(proof.verify(&leaves[idx], &tree.root()));
        let mut forged = leaves[idx].clone();
        let pos = rng.gen_range(0usize..forged.len());
        forged[pos] ^= 0x01;
        assert!(!proof.verify(&forged, &tree.root()));
    }
}

#[test]
fn generator_is_fixed_point_of_one() {
    assert_eq!(mul_generator(&U256::ONE), generator());
}

#[test]
fn sha256_batch_matches_sequential_on_every_kernel() {
    // Random batches of random-length multi-part messages: every
    // supported multi-buffer kernel must produce exactly the digests
    // the one-at-a-time hasher produces, for every message, in order.
    let mut rng = DetRng::seed_from_u64(0x6d62_7368);
    for trial in 0..24 {
        let batch_len = match trial {
            0 => 0,
            1 => 1,
            _ => rng.gen_range(2usize..30),
        };
        let msgs: Vec<Vec<u8>> = (0..batch_len)
            .map(|_| {
                // Lengths straddle the 64-byte block and 55/56-byte
                // padding boundaries, plus larger multi-block messages.
                let len = match rng.gen_range(0usize..4) {
                    0 => rng.gen_range(0usize..9),
                    1 => rng.gen_range(50usize..70),
                    2 => rng.gen_range(118usize..130),
                    _ => rng.gen_range(0usize..1500),
                };
                let mut m = vec![0u8; len];
                rng.fill_bytes(&mut m);
                m
            })
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let expect: Vec<_> = refs.iter().map(|m| sha256(m)).collect();

        assert_eq!(sha256_batch(&refs), expect, "active kernel, trial {trial}");
        for kernel in ShaKernel::supported() {
            // Single-part messages.
            let wrapped: Vec<[&[u8]; 1]> = refs.iter().map(|m| [*m]).collect();
            assert_eq!(
                sha256_batch_parts_with(kernel, &wrapped),
                expect,
                "kernel {} trial {trial}",
                kernel.name()
            );
            // The same messages re-split into random parts must hash
            // identically (streamed padding, no concatenation).
            let split: Vec<Vec<&[u8]>> = refs
                .iter()
                .map(|m| {
                    let cut = if m.is_empty() {
                        0
                    } else {
                        rng.gen_range(0usize..m.len())
                    };
                    vec![&m[..cut], &m[cut..]]
                })
                .collect();
            assert_eq!(
                sha256_batch_parts_with(kernel, &split),
                expect,
                "split parts, kernel {} trial {trial}",
                kernel.name()
            );
        }
    }
}

#[test]
fn hash_image_batch_matches_hash_image() {
    let mut rng = DetRng::seed_from_u64(0x6869_6221);
    let version = 7u32.to_be_bytes();
    let msgs: Vec<(Vec<u8>, [u8; 2])> = (0..17)
        .map(|i| {
            let mut payload = vec![0u8; rng.gen_range(10usize..90)];
            rng.fill_bytes(&mut payload);
            (payload, (i as u16).to_be_bytes())
        })
        .collect();
    let parts: Vec<[&[u8]; 3]> = msgs
        .iter()
        .map(|(payload, idx)| [&version[..], &idx[..], payload.as_slice()])
        .collect();
    let batched = hash_image_batch(&parts);
    for (p, b) in parts.iter().zip(&batched) {
        assert_eq!(hash_image(p), *b);
    }
}

//! Merkle hash trees with authentication paths.
//!
//! LR-Seluge builds a Merkle hash tree of depth `d` over the `n0 = 2^d`
//! erasure-encoded blocks of the hash page `M0` (paper §IV-C-3, Fig. 2).
//! Each `M0` packet carries its block plus the sibling hashes on the path
//! to the root, so that the packet can be authenticated immediately upon
//! arrival against the signed root:
//!
//! ```text
//! v_{1-8} = H( H( H(e_{0,1}) || v_2 ) || v_{3-4} ) || v_{5-8} )
//! ```

use crate::hash::Digest;
use crate::sha256::{sha256, sha256_concat};
use crate::sha256_mb::{sha256_batch, sha256_batch_parts};

/// A complete binary Merkle hash tree over `2^d` leaves.
///
/// Leaves are hashed with `H(leaf)`; internal nodes are `H(left || right)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, levels.last() = [root].
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree over the given leaves.
    ///
    /// # Panics
    ///
    /// Panics if the number of leaves is zero or not a power of two; the
    /// paper fixes `n0 = 2^d` for exactly this reason.
    pub fn build<'a, I>(leaves: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        // Leaves and the node pairs within a level are independent
        // messages, so every level is one multi-buffer batch hash.
        let leaf_slices: Vec<&[u8]> = leaves.into_iter().collect();
        let leaf_hashes = sha256_batch(&leaf_slices);
        assert!(
            !leaf_hashes.is_empty() && leaf_hashes.len().is_power_of_two(),
            "Merkle tree requires a power-of-two leaf count, got {}",
            leaf_hashes.len()
        );
        let mut levels = vec![leaf_hashes];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let pairs: Vec<[&[u8]; 2]> = prev
                .chunks_exact(2)
                .map(|pair| [&pair[0].0[..], &pair[1].0[..]])
                .collect();
            let next = sha256_batch_parts(&pairs);
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The signed root of the tree.
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// The tree depth `d` (number of sibling hashes in each proof).
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }

    /// Number of leaves (`n0 = 2^d`).
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Authentication path for leaf `index`: the sibling hashes from the
    /// leaf level up to (but excluding) the root.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn proof(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut siblings = Vec::with_capacity(self.depth());
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            siblings.push(level[idx ^ 1]);
            idx >>= 1;
        }
        MerkleProof { index, siblings }
    }
}

/// An authentication path proving that a leaf belongs to a tree with a
/// known root. This is the `v_1, v_{3-4}, v_{5-8}` material carried inside
/// each hash-page packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    index: usize,
    siblings: Vec<Digest>,
}

impl MerkleProof {
    /// Reconstructs a proof from its wire components.
    pub fn from_parts(index: usize, siblings: Vec<Digest>) -> Self {
        MerkleProof { index, siblings }
    }

    /// The leaf index this proof authenticates.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The sibling hashes, leaf level first.
    pub fn siblings(&self) -> &[Digest] {
        &self.siblings
    }

    /// Serialized length in bytes when embedded in a packet.
    pub fn wire_len(&self) -> usize {
        self.siblings.len() * 32
    }

    /// Verifies that `leaf` hashes up to `root` along this path.
    pub fn verify(&self, leaf: &[u8], root: &Digest) -> bool {
        self.compute_root(leaf) == *root
    }

    /// Computes the root implied by `leaf` and this path.
    pub fn compute_root(&self, leaf: &[u8]) -> Digest {
        let mut acc = sha256(leaf);
        let mut idx = self.index;
        for sib in &self.siblings {
            acc = if idx & 1 == 0 {
                sha256_concat(&[&acc.0, &sib.0])
            } else {
                sha256_concat(&[&sib.0, &acc.0])
            };
            idx >>= 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("e_0_{i}").into_bytes()).collect()
    }

    #[test]
    fn all_proofs_verify() {
        for n in [1usize, 2, 4, 8, 16, 32] {
            let data = leaves(n);
            let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
            assert_eq!(tree.leaf_count(), n);
            assert_eq!(tree.depth(), n.trailing_zeros() as usize);
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.proof(i);
                assert_eq!(proof.index(), i);
                assert_eq!(proof.siblings().len(), tree.depth());
                assert!(proof.verify(leaf, &tree.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn tampered_leaf_rejected() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
        let proof = tree.proof(3);
        assert!(!proof.verify(b"bogus block", &tree.root()));
    }

    #[test]
    fn wrong_index_rejected() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
        let proof = tree.proof(3);
        // Using leaf 4's data with leaf 3's proof must fail.
        assert!(!proof.verify(&data[4], &tree.root()));
    }

    #[test]
    fn tampered_sibling_rejected() {
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
        let proof = tree.proof(5);
        let mut siblings = proof.siblings().to_vec();
        siblings[1].0[0] ^= 0x01;
        let forged = MerkleProof::from_parts(5, siblings);
        assert!(!forged.verify(&data[5], &tree.root()));
    }

    #[test]
    fn paper_fig2_structure() {
        // Fig. 2: depth-3 tree over 8 encoded blocks; P_{0,2}'s proof is
        // (v_1, v_{3-4}, v_{5-8}). Check the verification equation shape:
        // root = H(H(H(H(e2) ... with v_1 on the left at the first level.
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
        // leaf index 1 corresponds to e_{0,2} in 1-based paper numbering.
        let proof = tree.proof(1);
        let v1 = sha256(&data[0]);
        assert_eq!(proof.siblings()[0], v1);
        let l01 = sha256_concat(&[&v1.0, &sha256(&data[1]).0]);
        let l23 = sha256_concat(&[&sha256(&data[2]).0, &sha256(&data[3]).0]);
        assert_eq!(proof.siblings()[1], l23);
        let l03 = sha256_concat(&[&l01.0, &l23.0]);
        let l45 = sha256_concat(&[&sha256(&data[4]).0, &sha256(&data[5]).0]);
        let l67 = sha256_concat(&[&sha256(&data[6]).0, &sha256(&data[7]).0]);
        let l47 = sha256_concat(&[&l45.0, &l67.0]);
        assert_eq!(proof.siblings()[2], l47);
        assert_eq!(tree.root(), sha256_concat(&[&l03.0, &l47.0]));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let data = leaves(3);
        MerkleTree::build(data.iter().map(|l| l.as_slice()));
    }

    #[test]
    fn single_leaf_tree() {
        let data = leaves(1);
        let tree = MerkleTree::build(data.iter().map(|l| l.as_slice()));
        assert_eq!(tree.root(), sha256(&data[0]));
        let proof = tree.proof(0);
        assert_eq!(proof.wire_len(), 0);
        assert!(proof.verify(&data[0], &tree.root()));
    }
}

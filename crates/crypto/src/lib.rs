//! From-scratch cryptographic substrate for the LR-Seluge reproduction.
//!
//! LR-Seluge (Zhang & Zhang, ICDCS 2011) relies on a small set of
//! cryptographic building blocks:
//!
//! * a public cryptographic hash function `H(·)` used for packet hash
//!   images and hash chaining ([`sha256`], [`hash`]),
//! * Merkle hash trees with per-leaf authentication paths used to protect
//!   the hash page `M0` ([`merkle`]),
//! * a digital signature scheme with which the base station signs the
//!   Merkle-tree root ([`schnorr`], built on [`bignum`] and [`ec`]),
//! * *message-specific puzzles* used as weak authenticators that shield
//!   sensor nodes from signature-verification DoS floods ([`puzzle`]), and
//! * *cluster keys* used to authenticate advertisement and SNACK control
//!   packets among one-hop neighbors ([`cluster`], built on [`hmac`]).
//!
//! Everything here is implemented from scratch for the reproduction. The
//! implementations are functionally correct (SHA-256 matches FIPS 180-4
//! test vectors; the curve is the standard secp256k1 group) but are **not
//! hardened production cryptography**: no constant-time guarantees, no
//! side-channel defenses. The paper's protocol logic only needs the
//! functional behaviour and the relative cost profile (hashes cheap,
//! signature verification expensive), which these provide.
//!
//! # Example
//!
//! ```
//! use lrs_crypto::{sha256::sha256, schnorr::Keypair, merkle::MerkleTree};
//!
//! let digest = sha256(b"code image");
//! let kp = Keypair::from_seed(b"base station key");
//! let sig = kp.sign(&digest.0);
//! assert!(kp.public().verify(&digest.0, &sig));
//!
//! let leaves: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 16]).collect();
//! let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice()));
//! let proof = tree.proof(3);
//! assert!(proof.verify(&leaves[3], &tree.root()));
//! ```

pub mod bignum;
pub mod cluster;
pub mod ec;
pub mod hash;
pub mod hmac;
pub mod leap;
pub mod merkle;
pub mod puzzle;
pub mod schnorr;
pub mod sha256;
pub mod sha256_mb;

pub use hash::{hash_image, Digest, HashImage, HASH_IMAGE_LEN};
pub use leap::LeapKeyring;
pub use merkle::{MerkleProof, MerkleTree};
pub use puzzle::{Puzzle, PuzzleKeyChain, PuzzleSolution};
pub use schnorr::{Keypair, PublicKey, Signature};
pub use sha256_mb::{sha256_batch, sha256_batch_parts, ShaKernel};

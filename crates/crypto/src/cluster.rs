//! Cluster-key authentication for control packets.
//!
//! Seluge (and LR-Seluge, which inherits the mechanism, paper §IV-E)
//! authenticates advertisement and SNACK packets with a *cluster key*
//! shared among one-hop neighbors, so an outside adversary cannot forge
//! control traffic to trigger spurious transmissions or suppress real
//! ones. We model the end state of cluster-key establishment — every
//! legitimate node in a neighborhood holds the key; the adversary does
//! not — and provide MAC generation/verification with a truncated tag as
//! carried on the air.

use crate::hmac::hmac_sha256_parts;

/// Truncated MAC tag length in bytes as carried in control packets.
pub const MAC_LEN: usize = 4;

/// A MAC tag over a control packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MacTag(pub [u8; MAC_LEN]);

/// A shared cluster key.
///
/// # Example
///
/// ```
/// use lrs_crypto::cluster::ClusterKey;
/// let key = ClusterKey::derive(b"deployment secret", 7);
/// let tag = key.tag(&[b"ADV", &[2, 0, 5]]);
/// assert!(key.check(&[b"ADV", &[2, 0, 5]], &tag));
/// assert!(!key.check(&[b"ADV", &[2, 0, 6]], &tag));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct ClusterKey {
    key: [u8; 32],
}

impl std::fmt::Debug for ClusterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ClusterKey(…)")
    }
}

impl ClusterKey {
    /// Derives the cluster key for `cluster_id` from a deployment master
    /// secret (stands in for the key-establishment protocol's output).
    pub fn derive(master: &[u8], cluster_id: u32) -> Self {
        let d = hmac_sha256_parts(master, &[b"cluster", &cluster_id.to_be_bytes()]);
        ClusterKey { key: d.0 }
    }

    /// Wraps already-derived key material (used by the LEAP pairwise
    /// keys, which share this MAC interface).
    pub fn from_raw(key: [u8; 32]) -> Self {
        ClusterKey { key }
    }

    /// Computes the truncated MAC tag over the packet `parts`.
    pub fn tag(&self, parts: &[&[u8]]) -> MacTag {
        let d = hmac_sha256_parts(&self.key, parts);
        let mut out = [0u8; MAC_LEN];
        out.copy_from_slice(&d.0[..MAC_LEN]);
        MacTag(out)
    }

    /// Verifies a tag over the packet `parts`.
    pub fn check(&self, parts: &[&[u8]], tag: &MacTag) -> bool {
        self.tag(parts) == *tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        let k = ClusterKey::derive(b"master", 1);
        let tag = k.tag(&[b"SNACK", &[3], &[0b0110]]);
        assert!(k.check(&[b"SNACK", &[3], &[0b0110]], &tag));
    }

    #[test]
    fn different_cluster_keys_differ() {
        let k1 = ClusterKey::derive(b"master", 1);
        let k2 = ClusterKey::derive(b"master", 2);
        let tag = k1.tag(&[b"ADV"]);
        assert!(!k2.check(&[b"ADV"], &tag));
    }

    #[test]
    fn tampered_content_rejected() {
        let k = ClusterKey::derive(b"master", 1);
        let tag = k.tag(&[b"ADV", &[5]]);
        assert!(!k.check(&[b"ADV", &[6]], &tag));
    }

    #[test]
    fn attacker_without_key_cannot_forge() {
        let k = ClusterKey::derive(b"master", 1);
        let forged = MacTag([0u8; MAC_LEN]);
        assert!(!k.check(&[b"ADV", &[1]], &forged));
    }
}

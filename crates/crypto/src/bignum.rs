//! Fixed-width 256/512-bit unsigned integer arithmetic.
//!
//! Just enough multi-precision arithmetic to implement the Schnorr
//! signature over secp256k1 in [`crate::ec`] and [`crate::schnorr`]:
//! addition/subtraction with carry, full 256×256→512 multiplication,
//! generic modular reduction (binary long division), and modular
//! exponentiation. Limbs are little-endian `u64`s.

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer (four little-endian `u64` limbs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

/// A 512-bit unsigned integer, produced by full multiplication.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U512(pub [u64; 8]);

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{})", self.to_hex())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(")?;
        for limb in self.0.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Parses a big-endian 32-byte array.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[32 - 8 * (i + 1)..32 - 8 * i]);
            limbs[i] = u64::from_be_bytes(w);
        }
        U256(limbs)
    }

    /// Serializes to a big-endian 32-byte array.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[32 - 8 * (i + 1)..32 - 8 * i].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses a (possibly shorter than 64 nibbles) hex string.
    ///
    /// # Panics
    ///
    /// Panics on invalid hex or overly long input; this is only used for
    /// compile-time-known constants and tests.
    pub fn from_hex(s: &str) -> Self {
        let s = s.trim_start_matches("0x");
        assert!(s.len() <= 64, "hex literal too long for U256");
        let mut bytes = [0u8; 32];
        let padded = format!("{s:0>64}");
        for i in 0..32 {
            bytes[i] = u8::from_str_radix(&padded[2 * i..2 * i + 2], 16).expect("invalid hex");
        }
        Self::from_be_bytes(&bytes)
    }

    /// Lowercase hex rendering (64 nibbles).
    pub fn to_hex(self) -> String {
        self.to_be_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Whether the value is odd.
    pub fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Addition with carry-out.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for ((o, &a), &b) in out.iter_mut().zip(&self.0).zip(&rhs.0) {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *o = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Subtraction with borrow-out.
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for ((o, &a), &b) in out.iter_mut().zip(&self.0).zip(&rhs.0) {
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *o = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping (mod 2^256) subtraction.
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Full 256×256 → 512-bit product.
    pub fn full_mul(self, rhs: U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let acc = out[i + j] as u128 + self.0[i] as u128 * rhs.0[j] as u128 + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512(out)
    }

    /// `(self + rhs) mod m`, assuming `self, rhs < m`.
    pub fn add_mod(self, rhs: U256, m: &U256) -> U256 {
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || sum >= *m {
            sum.wrapping_sub(*m)
        } else {
            sum
        }
    }

    /// `(self - rhs) mod m`, assuming `self, rhs < m`.
    pub fn sub_mod(self, rhs: U256, m: &U256) -> U256 {
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.overflowing_add(*m).0
        } else {
            diff
        }
    }

    /// `(self * rhs) mod m` using generic binary reduction.
    pub fn mul_mod(self, rhs: U256, m: &U256) -> U256 {
        self.full_mul(rhs).reduce(m)
    }

    /// `self^exp mod m` by square-and-multiply.
    pub fn pow_mod(self, exp: &U256, m: &U256) -> U256 {
        let mut result = U256::ONE.reduce_small(m);
        let mut base = self;
        let nbits = exp.bits();
        for i in 0..nbits {
            if exp.bit(i) {
                result = result.mul_mod(base, m);
            }
            base = base.mul_mod(base, m);
        }
        result
    }

    /// Reduces `self` (which may be ≥ m) modulo `m` by repeated subtraction
    /// of shifted `m`; cheap because `self < 2^256`.
    fn reduce_small(self, m: &U256) -> U256 {
        let mut r = self;
        while r >= *m {
            r = r.wrapping_sub(*m);
        }
        r
    }

    /// Modular inverse via Fermat's little theorem; `m` must be prime and
    /// `self` nonzero mod `m`.
    pub fn inv_mod_prime(self, m: &U256) -> U256 {
        let exp = m.wrapping_sub(U256::from(2));
        self.pow_mod(&exp, m)
    }
}

impl U512 {
    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The low 256 bits.
    pub fn low(&self) -> U256 {
        U256([self.0[0], self.0[1], self.0[2], self.0[3]])
    }

    /// The high 256 bits.
    pub fn high(&self) -> U256 {
        U256([self.0[4], self.0[5], self.0[6], self.0[7]])
    }

    /// Generic `self mod m` via binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn reduce(&self, m: &U256) -> U256 {
        assert!(!m.is_zero(), "reduction modulo zero");
        // Remainder accumulator; never exceeds 2*m < 2^257, held in 5 limbs.
        let mut r = [0u64; 5];
        for i in (0..self.bits()).rev() {
            // r = (r << 1) | bit(i)
            let mut carry = if self.bit(i) { 1u64 } else { 0u64 };
            for limb in r.iter_mut() {
                let new_carry = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = new_carry;
            }
            // if r >= m { r -= m }
            if ge5(&r, m) {
                sub5(&mut r, m);
            }
        }
        U256([r[0], r[1], r[2], r[3]])
    }
}

fn ge5(r: &[u64; 5], m: &U256) -> bool {
    if r[4] != 0 {
        return true;
    }
    for i in (0..4).rev() {
        match r[i].cmp(&m.0[i]) {
            Ordering::Greater => return true,
            Ordering::Less => return false,
            Ordering::Equal => continue,
        }
    }
    true
}

fn sub5(r: &mut [u64; 5], m: &U256) {
    let mut borrow = false;
    for (ri, &mi) in r.iter_mut().zip(&m.0) {
        let (d1, b1) = ri.overflowing_sub(mi);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        *ri = d2;
        borrow = b1 || b2;
    }
    r[4] = r[4].wrapping_sub(borrow as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let x = U256::from_hex("deadbeef00000000000000000000000000000000000000000000000012345678");
        assert_eq!(
            x.to_hex(),
            "deadbeef00000000000000000000000000000000000000000000000012345678"
        );
        assert_eq!(U256::from_hex("0"), U256::ZERO);
        assert_eq!(U256::from_hex("1"), U256::ONE);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let x = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
        assert_eq!(U256::from_be_bytes(&x.to_be_bytes()), x);
    }

    #[test]
    fn add_sub_carries() {
        let max = U256([u64::MAX; 4]);
        let (s, c) = max.overflowing_add(U256::ONE);
        assert!(c);
        assert_eq!(s, U256::ZERO);
        let (d, b) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(b);
        assert_eq!(d, max);
    }

    #[test]
    fn mul_small() {
        let a = U256::from(0xffff_ffff_ffff_ffffu64);
        let prod = a.full_mul(a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(prod.0[0], 1);
        assert_eq!(prod.0[1], 0xffff_ffff_ffff_fffe);
        assert_eq!(prod.0[2], 0);
    }

    #[test]
    fn mul_shift_structure() {
        // (2^128) * (2^128) = 2^256
        let a = U256([0, 0, 1, 0]);
        let p = a.full_mul(a);
        assert_eq!(p.high(), U256::ONE);
        assert_eq!(p.low(), U256::ZERO);
    }

    #[test]
    fn reduce_matches_u128_arithmetic() {
        // Cross-check against native 128-bit arithmetic on small values.
        let m = U256::from(0xfffffffbu64); // a prime
        for a in [3u64, 1 << 40, u64::MAX, 0x123456789abcdef] {
            for b in [7u64, 1 << 33, u64::MAX - 1] {
                let prod = U256::from(a).full_mul(U256::from(b));
                let got = prod.reduce(&m);
                let want = ((a as u128 * b as u128) % 0xfffffffbu128) as u64;
                assert_eq!(got, U256::from(want), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn pow_mod_fermat() {
        // a^(p-1) = 1 mod p for prime p not dividing a.
        let p = U256::from(1_000_000_007u64);
        let a = U256::from(123_456_789u64);
        let exp = p.wrapping_sub(U256::ONE);
        assert_eq!(a.pow_mod(&exp, &p), U256::ONE);
    }

    #[test]
    fn inv_mod_prime_works() {
        let p = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        let a = U256::from_hex("deadbeefcafebabe123456789abcdef0fedcba987654321011223344556677aa");
        let inv = a.inv_mod_prime(&p);
        assert_eq!(a.mul_mod(inv, &p), U256::ONE);
    }

    #[test]
    fn add_mod_sub_mod_roundtrip() {
        let m = U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
        let a = U256::from_hex("8000000000000000000000000000000000000000000000000000000000000001");
        let b = U256::from_hex("7fffffffffffffffffffffffffffffff00000000000000000000000000000000");
        let s = a.add_mod(b, &m);
        assert!(s < m);
        assert_eq!(s.sub_mod(b, &m), a);
        assert_eq!(s.sub_mod(a, &m), b);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        let x = U256([0, 0, 0, 1]);
        assert_eq!(x.bits(), 193);
        assert!(x.bit(192));
        assert!(!x.bit(191));
    }
}

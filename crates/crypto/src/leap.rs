//! LEAP-style pairwise keys (Zhu, Setia & Jajodia).
//!
//! The paper's §IV-E mitigation for the *denial-of-receipt* attack
//! counts SNACKs per neighbor — but a cluster key only proves membership,
//! not identity: a compromised insider can spoof other nodes' ids and
//! evade any per-neighbor budget. The paper therefore proposes
//! "a local authentication scheme like LEAP to simultaneously
//! authenticate and identify the source of any SNACK packet".
//!
//! We model LEAP's end state: during the bootstrap window every node
//! derives, from a short-lived initial network key `K_I`, a pairwise key
//! with each neighbor:
//!
//! ```text
//! K_uv = HMAC( HMAC(K_I, min(u,v)), max(u,v) )
//! ```
//!
//! after which `K_I` is erased — a later-compromised node learns only its
//! own pairwise keys. A SNACK then carries, besides the cluster-key MAC
//! that any overhearer can check, a pairwise MAC that only the claimed
//! sender could have produced for this target.

use crate::cluster::{ClusterKey, MacTag};
use crate::hmac::hmac_sha256_parts;

/// A node's LEAP keyring: its id plus the material to derive pairwise
/// keys with any peer (derived during bootstrap; `K_I` conceptually
/// erased afterwards).
#[derive(Clone)]
pub struct LeapKeyring {
    node: u32,
    /// `HMAC(K_I, node)` for this node, plus the ability to derive the
    /// symmetric pairwise keys. We keep the bootstrap secret here because
    /// the simulation constructs keyrings lazily; the derivation order
    /// guarantees `pairwise(u, v) == pairwise(v, u)`.
    initial: [u8; 32],
}

impl std::fmt::Debug for LeapKeyring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LeapKeyring(node {})", self.node)
    }
}

impl LeapKeyring {
    /// Bootstraps the keyring for `node` from the deployment's initial
    /// network key material.
    pub fn bootstrap(initial_network_key: &[u8], node: u32) -> Self {
        let d = hmac_sha256_parts(initial_network_key, &[b"leap-ki"]);
        LeapKeyring { node, initial: d.0 }
    }

    /// This node's id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The symmetric pairwise key shared with `peer`.
    pub fn pairwise(&self, peer: u32) -> ClusterKey {
        let (lo, hi) = if self.node <= peer {
            (self.node, peer)
        } else {
            (peer, self.node)
        };
        let inner = hmac_sha256_parts(&self.initial, &[b"leap-node", &lo.to_be_bytes()]);
        let d = hmac_sha256_parts(&inner.0, &[b"leap-pair", &hi.to_be_bytes()]);
        // Reuse ClusterKey's MAC interface over the derived key.
        ClusterKey::from_raw(d.0)
    }

    /// MAC over `parts`, bound to the (self → peer) pair.
    pub fn tag_for(&self, peer: u32, parts: &[&[u8]]) -> MacTag {
        self.pairwise(peer).tag(parts)
    }

    /// Verifies a MAC claimed to come from `peer`.
    pub fn check_from(&self, peer: u32, parts: &[&[u8]], tag: &MacTag) -> bool {
        self.pairwise(peer).check(parts, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_keys_are_symmetric() {
        let a = LeapKeyring::bootstrap(b"deployment", 3);
        let b = LeapKeyring::bootstrap(b"deployment", 9);
        let tag = a.tag_for(9, &[b"snack", &[1, 2, 3]]);
        assert!(b.check_from(3, &[b"snack", &[1, 2, 3]], &tag));
    }

    #[test]
    fn third_party_cannot_forge() {
        let a = LeapKeyring::bootstrap(b"deployment", 3);
        let c = LeapKeyring::bootstrap(b"deployment", 7); // compromised insider
        let b = LeapKeyring::bootstrap(b"deployment", 9);
        // c tries to speak as node 3 to node 9 using its own keys.
        let forged = c.tag_for(9, &[b"snack", &[1]]);
        assert!(!b.check_from(3, &[b"snack", &[1]], &forged));
        // The honest tag passes.
        let honest = a.tag_for(9, &[b"snack", &[1]]);
        assert!(b.check_from(3, &[b"snack", &[1]], &honest));
    }

    #[test]
    fn different_pairs_different_keys() {
        let a = LeapKeyring::bootstrap(b"deployment", 1);
        let t12 = a.tag_for(2, &[b"m"]);
        let t13 = a.tag_for(3, &[b"m"]);
        assert_ne!(t12, t13);
    }

    #[test]
    fn different_deployments_different_keys() {
        let a = LeapKeyring::bootstrap(b"deployment-a", 1);
        let b = LeapKeyring::bootstrap(b"deployment-b", 2);
        let tag = a.tag_for(2, &[b"m"]);
        assert!(!b.check_from(1, &[b"m"], &tag));
    }
}

//! Digest and hash-image types.
//!
//! Seluge and LR-Seluge do not embed full digests into packets: to keep
//! packets small they carry truncated *hash images* (8 bytes in the
//! original Seluge packet layout, which targets 64-bit security against
//! second preimages found before the next page is requested). The
//! [`HashImage`] newtype makes the truncation explicit and keeps it from
//! being confused with a full [`Digest`].

use crate::sha256::sha256_concat;
use std::fmt;

/// A full 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Truncates the digest to a packet-sized hash image.
    pub fn truncate(&self) -> HashImage {
        let mut out = [0u8; HASH_IMAGE_LEN];
        out.copy_from_slice(&self.0[..HASH_IMAGE_LEN]);
        HashImage(out)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

/// Length in bytes of the truncated hash images embedded in packets.
///
/// Matches the 8-byte truncated hashes of Seluge's packet layout.
pub const HASH_IMAGE_LEN: usize = 8;

/// A truncated hash image as carried inside data packets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct HashImage(pub [u8; HASH_IMAGE_LEN]);

impl HashImage {
    /// Parses a hash image from the first [`HASH_IMAGE_LEN`] bytes of `b`.
    ///
    /// Returns `None` if `b` is too short.
    pub fn from_slice(b: &[u8]) -> Option<Self> {
        if b.len() < HASH_IMAGE_LEN {
            return None;
        }
        let mut out = [0u8; HASH_IMAGE_LEN];
        out.copy_from_slice(&b[..HASH_IMAGE_LEN]);
        Some(HashImage(out))
    }

    /// The raw bytes of the hash image.
    pub fn as_bytes(&self) -> &[u8; HASH_IMAGE_LEN] {
        &self.0
    }
}

impl fmt::Debug for HashImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HashImage(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl AsRef<[u8]> for HashImage {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Computes the truncated hash image of the concatenation of `parts`.
///
/// This is the `h_{i,j} = H(P_{i,j})` operation of the paper applied to a
/// packet serialized as several fields.
///
/// # Example
///
/// ```
/// use lrs_crypto::hash_image;
/// let h = hash_image(&[&1u16.to_be_bytes(), b"payload"]);
/// assert_eq!(h.as_bytes().len(), lrs_crypto::HASH_IMAGE_LEN);
/// ```
pub fn hash_image(parts: &[&[u8]]) -> HashImage {
    sha256_concat(parts).truncate()
}

/// Computes [`hash_image`] for every multi-part message in `msgs`, in
/// input order, batching independent messages through the multi-buffer
/// SHA-256 kernels ([`crate::sha256_mb`]). Bit-identical to mapping
/// [`hash_image`] over the batch.
pub fn hash_image_batch<'a, M: AsRef<[&'a [u8]]>>(msgs: &[M]) -> Vec<HashImage> {
    crate::sha256_mb::sha256_batch_parts(msgs)
        .iter()
        .map(Digest::truncate)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn truncation_takes_prefix() {
        let d = sha256(b"abc");
        let h = d.truncate();
        assert_eq!(&d.0[..HASH_IMAGE_LEN], h.as_bytes());
    }

    #[test]
    fn from_slice_roundtrip() {
        let d = sha256(b"x");
        let h = d.truncate();
        assert_eq!(HashImage::from_slice(&d.0), Some(h));
        assert_eq!(HashImage::from_slice(&d.0[..4]), None);
    }

    #[test]
    fn hash_image_matches_concat() {
        let h1 = hash_image(&[b"ab", b"cd"]);
        let h2 = hash_image(&[b"abcd"]);
        assert_eq!(h1, h2);
        let h3 = hash_image(&[b"abce"]);
        assert_ne!(h1, h3);
    }

    #[test]
    fn digest_display_and_debug() {
        let d = sha256(b"abc");
        assert_eq!(format!("{d}").len(), 64);
        assert!(format!("{d:?}").starts_with("Digest("));
        assert!(!format!("{:?}", d.truncate()).is_empty());
    }
}

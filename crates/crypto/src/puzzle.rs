//! Message-specific puzzles (weak authenticators).
//!
//! Seluge and LR-Seluge attach a *message-specific puzzle* to the
//! signature packet so that sensor nodes only run the expensive signature
//! verification on packets that already passed a cheap check, defeating
//! forged-signature DoS floods (paper §IV-C-3 and §IV-E, citing Ning et
//! al.'s message-specific puzzles).
//!
//! The construction follows the original scheme: the base station commits
//! to a one-way *puzzle key chain* `K_j = H(K_{j+1})`; the chain anchor
//! `K_0` is preloaded on every node. The signature packet for code
//! version `j` discloses `K_j` together with a solution `s` such that
//! `H(K_j || m || s)` has `strength` leading zero bits. Finding `s`
//! requires brute force over the message `m`, which an adversary cannot do
//! ahead of time because `K_j` is unknown until the base station releases
//! it; verifying costs two hashes.

use crate::hash::Digest;
use crate::sha256::{sha256, sha256_concat};

/// A puzzle solution attached to a signature packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PuzzleSolution {
    /// The disclosed puzzle key `K_j` for this version.
    pub key: Digest,
    /// The brute-forced solution value.
    pub solution: u64,
}

impl PuzzleSolution {
    /// Wire size in bytes (key + solution).
    pub const WIRE_LEN: usize = 32 + 8;
}

/// The base station's one-way puzzle key chain.
///
/// # Example
///
/// ```
/// use lrs_crypto::{Puzzle, PuzzleKeyChain};
///
/// let chain = PuzzleKeyChain::generate(b"secret", 16);
/// let puzzle = Puzzle::new(chain.anchor(), 8);
/// let sol = chain.solve(&puzzle, 1, b"signature packet body");
/// assert!(puzzle.verify(1, b"signature packet body", &sol));
/// ```
#[derive(Clone, Debug)]
pub struct PuzzleKeyChain {
    /// keys[j] = K_j; keys[0] is the public anchor.
    keys: Vec<Digest>,
}

impl PuzzleKeyChain {
    /// Generates a chain supporting versions `1..=max_version`.
    pub fn generate(seed: &[u8], max_version: u32) -> Self {
        let mut keys = vec![Digest([0u8; 32]); max_version as usize + 1];
        let tail = sha256_concat(&[b"puzzle-chain", seed]);
        keys[max_version as usize] = tail;
        for j in (0..max_version as usize).rev() {
            keys[j] = sha256(&keys[j + 1].0);
        }
        PuzzleKeyChain { keys }
    }

    /// The public anchor `K_0` preloaded on every sensor node.
    pub fn anchor(&self) -> Digest {
        self.keys[0]
    }

    /// The puzzle key for `version`.
    ///
    /// # Panics
    ///
    /// Panics if `version` exceeds the chain length.
    pub fn key(&self, version: u32) -> Digest {
        self.keys[version as usize]
    }

    /// Brute-forces a solution for `message` under `puzzle`'s strength.
    pub fn solve(&self, puzzle: &Puzzle, version: u32, message: &[u8]) -> PuzzleSolution {
        let key = self.key(version);
        let mut solution = 0u64;
        loop {
            if leading_zero_bits(&solution_digest(&key, message, solution)) >= puzzle.strength {
                return PuzzleSolution { key, solution };
            }
            solution += 1;
        }
    }
}

/// The verifier side of the puzzle, preloaded on sensor nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Puzzle {
    anchor: Digest,
    strength: u32,
}

impl Puzzle {
    /// Creates a verifier with the given chain anchor and difficulty
    /// (required number of leading zero bits).
    pub fn new(anchor: Digest, strength: u32) -> Self {
        Puzzle { anchor, strength }
    }

    /// The difficulty in leading zero bits.
    pub fn strength(&self) -> u32 {
        self.strength
    }

    /// Verifies a claimed solution for `message` at `version`.
    ///
    /// Checks both that the disclosed key hashes back to the anchor in
    /// exactly `version` steps and that the solution meets the strength.
    pub fn verify(&self, version: u32, message: &[u8], sol: &PuzzleSolution) -> bool {
        // Key-chain check: H^version(K_version) == anchor.
        let mut acc = sol.key;
        for _ in 0..version {
            acc = sha256(&acc.0);
        }
        if acc != self.anchor {
            return false;
        }
        leading_zero_bits(&solution_digest(&sol.key, message, sol.solution)) >= self.strength
    }
}

fn solution_digest(key: &Digest, message: &[u8], solution: u64) -> Digest {
    sha256_concat(&[&key.0, message, &solution.to_be_bytes()])
}

fn leading_zero_bits(d: &Digest) -> u32 {
    let mut bits = 0;
    for b in &d.0 {
        if *b == 0 {
            bits += 8;
        } else {
            bits += b.leading_zeros();
            break;
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_and_verify() {
        let chain = PuzzleKeyChain::generate(b"s", 4);
        let puzzle = Puzzle::new(chain.anchor(), 10);
        let sol = chain.solve(&puzzle, 2, b"msg");
        assert!(puzzle.verify(2, b"msg", &sol));
    }

    #[test]
    fn wrong_message_rejected() {
        let chain = PuzzleKeyChain::generate(b"s", 4);
        let puzzle = Puzzle::new(chain.anchor(), 12);
        let sol = chain.solve(&puzzle, 1, b"msg");
        // Overwhelmingly unlikely that the same solution solves another
        // message at strength 12.
        assert!(!puzzle.verify(1, b"other msg", &sol));
    }

    #[test]
    fn wrong_version_key_rejected() {
        let chain = PuzzleKeyChain::generate(b"s", 4);
        let puzzle = Puzzle::new(chain.anchor(), 4);
        let sol = chain.solve(&puzzle, 2, b"msg");
        // Claiming version 3 with K_2 fails the chain check.
        assert!(!puzzle.verify(3, b"msg", &sol));
    }

    #[test]
    fn forged_key_rejected() {
        let chain = PuzzleKeyChain::generate(b"s", 4);
        let puzzle = Puzzle::new(chain.anchor(), 4);
        let mut sol = chain.solve(&puzzle, 2, b"msg");
        sol.key.0[0] ^= 1;
        assert!(!puzzle.verify(2, b"msg", &sol));
    }

    #[test]
    fn chain_is_one_way_consistent() {
        let chain = PuzzleKeyChain::generate(b"s", 8);
        for v in 1..=8u32 {
            let mut acc = chain.key(v);
            for _ in 0..v {
                acc = sha256(&acc.0);
            }
            assert_eq!(acc, chain.anchor());
        }
    }

    #[test]
    fn leading_zero_bits_counts() {
        let mut d = Digest([0xffu8; 32]);
        assert_eq!(leading_zero_bits(&d), 0);
        d.0[0] = 0;
        d.0[1] = 0x0f;
        assert_eq!(leading_zero_bits(&d), 12);
        let zero = Digest([0u8; 32]);
        assert_eq!(leading_zero_bits(&zero), 256);
    }
}

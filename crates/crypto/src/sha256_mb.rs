//! Multi-buffer SHA-256: hash many independent messages in lockstep.
//!
//! SHA-256's compression function is one long dependency chain — a
//! single message can't use more than a fraction of a modern core. But
//! LR-Seluge's hot paths hash *batches* of independent messages: the `n`
//! per-page packet hashes computed during preprocessing, Merkle tree
//! levels, and digest-cache warming. Independent messages have
//! independent chains, so interleaving 4–8 of them fills the pipeline
//! (scalar instruction-level parallelism) or the vector lanes (AVX2:
//! eight 32-bit states per `ymm` register).
//!
//! [`sha256_batch`] / [`sha256_batch_parts`] bucket the input by padded
//! block count so grouped lanes stay in lockstep, run full groups
//! through the widest available kernel, and fall back to the sequential
//! [`crate::sha256::Sha256`] hasher for remainders. Every kernel
//! computes exact FIPS 180-4 SHA-256, so results are bit-identical to
//! [`crate::sha256::sha256`] — pinned by an equivalence property in
//! `tests/crypto_props.rs`.
//!
//! Kernel selection mirrors the GF(256) layer: best supported by
//! default, overridable with `LRS_SHA_KERNEL` (`sequential`, `ilp4`,
//! `avx2`) for testing.

use crate::hash::Digest;
use crate::sha256::{sha256_concat, H0, K};
use std::sync::OnceLock;

/// One of the interchangeable batch-hash implementations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShaKernel {
    /// One message at a time through the incremental hasher.
    Sequential,
    /// Four interleaved message schedules on scalar registers (ILP).
    Ilp4,
    /// Eight lane-parallel message schedules on AVX2 registers.
    Avx2,
}

impl ShaKernel {
    /// All kernels, slowest first.
    pub const ALL: [ShaKernel; 3] = [ShaKernel::Sequential, ShaKernel::Ilp4, ShaKernel::Avx2];

    /// The kernel's name as used by `LRS_SHA_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            ShaKernel::Sequential => "sequential",
            ShaKernel::Ilp4 => "ilp4",
            ShaKernel::Avx2 => "avx2",
        }
    }

    /// Parses an `LRS_SHA_KERNEL` value.
    pub fn from_name(name: &str) -> Option<ShaKernel> {
        ShaKernel::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether this kernel can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            ShaKernel::Sequential | ShaKernel::Ilp4 => true,
            #[cfg(target_arch = "x86_64")]
            ShaKernel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            ShaKernel::Avx2 => false,
        }
    }

    /// The kernels the current CPU can run, slowest first.
    pub fn supported() -> Vec<ShaKernel> {
        ShaKernel::ALL
            .into_iter()
            .filter(|k| k.is_supported())
            .collect()
    }

    /// The fastest kernel supported by the current CPU.
    pub fn best_supported() -> ShaKernel {
        *ShaKernel::supported()
            .last()
            .expect("sequential always supported")
    }

    /// The kernel batch hashing dispatches to, resolved once per
    /// process: `LRS_SHA_KERNEL` when set to a supported kernel
    /// (unsupported or unknown values are ignored), otherwise the best
    /// supported path.
    pub fn active() -> ShaKernel {
        static ACTIVE: OnceLock<ShaKernel> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            if let Ok(name) = std::env::var("LRS_SHA_KERNEL") {
                match ShaKernel::from_name(&name) {
                    Some(k) if k.is_supported() => return k,
                    Some(k) => eprintln!(
                        "LRS_SHA_KERNEL={} is not supported on this CPU; using {}",
                        k.name(),
                        ShaKernel::best_supported().name()
                    ),
                    None => eprintln!(
                        "LRS_SHA_KERNEL={name} is not a kernel (sequential|ilp4|avx2); \
                         using {}",
                        ShaKernel::best_supported().name()
                    ),
                }
            }
            ShaKernel::best_supported()
        })
    }
}

/// SHA-256 of every message in `msgs`, in input order.
///
/// Bit-identical to mapping [`sha256`](crate::sha256::sha256) over the
/// batch, but interleaves independent messages through the widest
/// available kernel.
pub fn sha256_batch(msgs: &[&[u8]]) -> Vec<Digest> {
    let parts: Vec<[&[u8]; 1]> = msgs.iter().map(|m| [*m]).collect();
    sha256_batch_parts(&parts)
}

/// SHA-256 of every multi-part message in `msgs`, in input order. Each
/// message is hashed as the concatenation of its parts without
/// materializing the concatenation — the batched counterpart of
/// [`sha256_concat`].
pub fn sha256_batch_parts<'a, M: AsRef<[&'a [u8]]>>(msgs: &[M]) -> Vec<Digest> {
    sha256_batch_parts_with(ShaKernel::active(), msgs)
}

/// [`sha256_batch_parts`] with an explicit kernel (the property suite
/// and the microbenchmarks pin each path through this entry point).
pub fn sha256_batch_parts_with<'a, M: AsRef<[&'a [u8]]>>(
    kernel: ShaKernel,
    msgs: &[M],
) -> Vec<Digest> {
    let mut out = vec![Digest([0u8; 32]); msgs.len()];
    if msgs.is_empty() {
        return out;
    }
    if kernel == ShaKernel::Sequential {
        for (d, m) in out.iter_mut().zip(msgs) {
            *d = sha256_concat(m.as_ref());
        }
        return out;
    }

    // Lockstep lanes must compress the same number of blocks, so bucket
    // the batch by padded block count. `sort_unstable` on
    // (blocks, index) groups equal-length messages while keeping the
    // output order fixed by the index stored alongside.
    let mut order: Vec<(u64, usize)> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let len: u64 = m.as_ref().iter().map(|p| p.len() as u64).sum();
            ((len + 8) / 64 + 1, i)
        })
        .collect();
    order.sort_unstable();

    let mut group = 0;
    while group < order.len() {
        let blocks = order[group].0;
        let mut end = group;
        while end < order.len() && order[end].0 == blocks {
            end += 1;
        }
        let bucket = &order[group..end];
        let mut rest = bucket;
        // Full-width groups through the wide kernel; leftovers drop to
        // the next narrower width, then to the sequential hasher.
        #[cfg(target_arch = "x86_64")]
        if kernel == ShaKernel::Avx2 {
            let mut chunks = rest.chunks_exact(8);
            for chunk in chunks.by_ref() {
                let lanes: [&[&[u8]]; 8] = std::array::from_fn(|l| msgs[chunk[l].1].as_ref());
                // SAFETY: dispatch only selects Avx2 after
                // `is_x86_feature_detected!` confirmed the feature.
                let digests = unsafe { avx2::digest8(&lanes, blocks) };
                for (l, d) in digests.into_iter().enumerate() {
                    out[chunk[l].1] = d;
                }
            }
            rest = chunks.remainder();
        }
        let mut chunks = rest.chunks_exact(4);
        for chunk in chunks.by_ref() {
            let lanes: [&[&[u8]]; 4] = std::array::from_fn(|l| msgs[chunk[l].1].as_ref());
            let digests = digest4_ilp(&lanes, blocks);
            for (l, d) in digests.into_iter().enumerate() {
                out[chunk[l].1] = d;
            }
        }
        for &(_, i) in chunks.remainder() {
            out[i] = sha256_concat(msgs[i].as_ref());
        }
        group = end;
    }
    out
}

/// Streams one message's padded block sequence without concatenating its
/// parts: message bytes, then `0x80`, zeros, and the big-endian bit
/// length, 64 bytes at a time.
struct BlockStream<'a> {
    parts: &'a [&'a [u8]],
    part: usize,
    offset: usize,
    bit_len: u64,
    pad_done: bool,
    emitted: u64,
    nblocks: u64,
}

impl<'a> BlockStream<'a> {
    fn new(parts: &'a [&'a [u8]]) -> Self {
        let total: u64 = parts.iter().map(|p| p.len() as u64).sum();
        BlockStream {
            parts,
            part: 0,
            offset: 0,
            bit_len: total.wrapping_mul(8),
            pad_done: false,
            emitted: 0,
            nblocks: (total + 8) / 64 + 1,
        }
    }

    /// Writes the next padded block into `out`. Must be called exactly
    /// `nblocks` times.
    fn next_block(&mut self, out: &mut [u8; 64]) {
        debug_assert!(self.emitted < self.nblocks, "stream exhausted");
        let mut filled = 0;
        while filled < 64 && self.part < self.parts.len() {
            let p = self.parts[self.part];
            let take = (p.len() - self.offset).min(64 - filled);
            out[filled..filled + take].copy_from_slice(&p[self.offset..self.offset + take]);
            filled += take;
            self.offset += take;
            if self.offset == p.len() {
                self.part += 1;
                self.offset = 0;
            }
        }
        if filled < 64 {
            if !self.pad_done {
                out[filled] = 0x80;
                filled += 1;
                self.pad_done = true;
            }
            out[filled..].fill(0);
        }
        self.emitted += 1;
        if self.emitted == self.nblocks {
            out[56..64].copy_from_slice(&self.bit_len.to_be_bytes());
        }
    }
}

fn state_to_digest(state: &[u32; 8]) -> Digest {
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

/// Four-lane scalar kernel: the four message schedules and round states
/// live in fixed-size arrays indexed by a lane loop the compiler fully
/// unrolls, so the four independent dependency chains interleave in the
/// pipeline.
fn digest4_ilp(lanes: &[&[&[u8]]; 4], nblocks: u64) -> [Digest; 4] {
    let mut streams: [BlockStream; 4] = std::array::from_fn(|l| BlockStream::new(lanes[l]));
    let mut states = [H0; 4];
    let mut blocks = [[0u8; 64]; 4];
    for _ in 0..nblocks {
        for l in 0..4 {
            debug_assert_eq!(streams[l].nblocks, nblocks, "lanes must be in lockstep");
            streams[l].next_block(&mut blocks[l]);
        }
        compress4(&mut states, &blocks);
    }
    std::array::from_fn(|l| state_to_digest(&states[l]))
}

fn compress4(states: &mut [[u32; 8]; 4], blocks: &[[u8; 64]; 4]) {
    let mut w = [[0u32; 64]; 4];
    for l in 0..4 {
        for (i, chunk) in blocks[l].chunks_exact(4).enumerate() {
            w[l][i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    for t in 16..64 {
        for lw in w.iter_mut() {
            let s0 = lw[t - 15].rotate_right(7) ^ lw[t - 15].rotate_right(18) ^ (lw[t - 15] >> 3);
            let s1 = lw[t - 2].rotate_right(17) ^ lw[t - 2].rotate_right(19) ^ (lw[t - 2] >> 10);
            lw[t] = lw[t - 16]
                .wrapping_add(s0)
                .wrapping_add(lw[t - 7])
                .wrapping_add(s1);
        }
    }
    let mut v = *states;
    for t in 0..64 {
        for l in 0..4 {
            let [a, b, c, d, e, f, g, h] = v[l];
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[l][t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            v[l] = [t1.wrapping_add(t2), a, b, c, d.wrapping_add(t1), e, f, g];
        }
    }
    for l in 0..4 {
        for j in 0..8 {
            states[l][j] = states[l][j].wrapping_add(v[l][j]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{state_to_digest, BlockStream};
    use crate::hash::Digest;
    use crate::sha256::{H0, K};
    use core::arch::x86_64::*;

    /// `x >>> r` on eight packed u32 lanes.
    macro_rules! rotr {
        ($x:expr, $r:literal) => {
            _mm256_or_si256(
                _mm256_srli_epi32::<$r>($x),
                _mm256_slli_epi32::<{ 32 - $r }>($x),
            )
        };
    }

    /// Eight-lane AVX2 kernel: vector register `j` holds working
    /// variable `j` (or message word `t`) for all eight messages at
    /// once, so each `vpaddd`/`vpxor` advances eight hashes.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn digest8(lanes: &[&[&[u8]]; 8], nblocks: u64) -> [Digest; 8] {
        let mut streams: [BlockStream; 8] = std::array::from_fn(|l| BlockStream::new(lanes[l]));
        let mut state: [__m256i; 8] = std::array::from_fn(|j| _mm256_set1_epi32(H0[j] as i32));
        let mut blocks = [[0u8; 64]; 8];
        for _ in 0..nblocks {
            for l in 0..8 {
                debug_assert_eq!(streams[l].nblocks, nblocks, "lanes must be in lockstep");
                streams[l].next_block(&mut blocks[l]);
            }
            compress8(&mut state, &blocks);
        }
        let mut out = [[0u32; 8]; 8]; // out[j][l] = word j of lane l
        for j in 0..8 {
            _mm256_storeu_si256(out[j].as_mut_ptr() as *mut __m256i, state[j]);
        }
        std::array::from_fn(|l| {
            let words: [u32; 8] = std::array::from_fn(|j| out[j][l]);
            state_to_digest(&words)
        })
    }

    #[target_feature(enable = "avx2")]
    unsafe fn compress8(state: &mut [__m256i; 8], blocks: &[[u8; 64]; 8]) {
        // Message schedule: w[t] packs word t of all eight blocks.
        let mut w = [_mm256_setzero_si256(); 64];
        for (t, wt) in w.iter_mut().take(16).enumerate() {
            let word = |l: usize| {
                let c = &blocks[l][4 * t..4 * t + 4];
                u32::from_be_bytes([c[0], c[1], c[2], c[3]]) as i32
            };
            *wt = _mm256_setr_epi32(
                word(0),
                word(1),
                word(2),
                word(3),
                word(4),
                word(5),
                word(6),
                word(7),
            );
        }
        for t in 16..64 {
            let x15 = w[t - 15];
            let s0 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(x15, 7), rotr!(x15, 18)),
                _mm256_srli_epi32::<3>(x15),
            );
            let x2 = w[t - 2];
            let s1 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(x2, 17), rotr!(x2, 19)),
                _mm256_srli_epi32::<10>(x2),
            );
            w[t] = _mm256_add_epi32(
                _mm256_add_epi32(w[t - 16], s0),
                _mm256_add_epi32(w[t - 7], s1),
            );
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for (t, &wt) in w.iter().enumerate() {
            let big_s1 =
                _mm256_xor_si256(_mm256_xor_si256(rotr!(e, 6), rotr!(e, 11)), rotr!(e, 25));
            // ch = (e & f) ^ (!e & g); `andnot(a, b)` computes !a & b.
            let ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
            let t1 = _mm256_add_epi32(
                _mm256_add_epi32(h, big_s1),
                _mm256_add_epi32(_mm256_add_epi32(ch, _mm256_set1_epi32(K[t] as i32)), wt),
            );
            let big_s0 =
                _mm256_xor_si256(_mm256_xor_si256(rotr!(a, 2), rotr!(a, 13)), rotr!(a, 22));
            let maj = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
                _mm256_and_si256(b, c),
            );
            let t2 = _mm256_add_epi32(big_s0, maj);
            h = g;
            g = f;
            f = e;
            e = _mm256_add_epi32(d, t1);
            d = c;
            c = b;
            b = a;
            a = _mm256_add_epi32(t1, t2);
        }
        state[0] = _mm256_add_epi32(state[0], a);
        state[1] = _mm256_add_epi32(state[1], b);
        state[2] = _mm256_add_epi32(state[2], c);
        state[3] = _mm256_add_epi32(state[3], d);
        state[4] = _mm256_add_epi32(state[4], e);
        state[5] = _mm256_add_epi32(state[5], f);
        state[6] = _mm256_add_epi32(state[6], g);
        state[7] = _mm256_add_epi32(state[7], h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{compress_block, sha256};

    #[test]
    fn names_roundtrip() {
        for k in ShaKernel::ALL {
            assert_eq!(ShaKernel::from_name(k.name()), Some(k));
        }
        assert_eq!(ShaKernel::from_name("sha-ni"), None);
    }

    #[test]
    fn sequential_and_ilp4_always_supported() {
        assert!(ShaKernel::Sequential.is_supported());
        assert!(ShaKernel::Ilp4.is_supported());
        assert!(ShaKernel::active().is_supported());
    }

    #[test]
    fn block_stream_matches_incremental_padding() {
        // The streamed padded blocks must hash (via the scalar
        // compression) to exactly what Sha256 produces.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128, 257] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let (head, tail) = data.split_at(len / 3);
            let parts: [&[u8]; 2] = [head, tail];
            let mut stream = BlockStream::new(&parts);
            let mut state = H0;
            let mut block = [0u8; 64];
            for _ in 0..stream.nblocks {
                stream.next_block(&mut block);
                compress_block(&mut state, &block);
            }
            assert_eq!(state_to_digest(&state), sha256(&data), "len={len}");
        }
    }

    #[test]
    fn every_supported_kernel_matches_sequential() {
        // Mixed lengths force bucketing, partial groups, and multi-block
        // lane streams at once.
        let msgs: Vec<Vec<u8>> = (0..23usize)
            .map(|i| (0..(i * 37) % 200).map(|j| (i * 251 + j) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let expect: Vec<Digest> = refs.iter().map(|m| sha256(m)).collect();
        for k in ShaKernel::supported() {
            let wrapped: Vec<[&[u8]; 1]> = refs.iter().map(|m| [*m]).collect();
            assert_eq!(
                sha256_batch_parts_with(k, &wrapped),
                expect,
                "kernel {}",
                k.name()
            );
        }
        assert_eq!(sha256_batch(&refs), expect);
    }

    #[test]
    fn empty_batch() {
        assert!(sha256_batch(&[]).is_empty());
    }
}

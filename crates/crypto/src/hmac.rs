//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1), implemented from scratch.
//!
//! Used by the [cluster-key](crate::cluster) mechanism to authenticate
//! advertisement and SNACK control packets among one-hop neighbors.

use crate::hash::Digest;
use crate::sha256::Sha256;

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA-256(key, message)`.
///
/// Keys longer than the 64-byte block are first hashed, per the HMAC
/// specification.
///
/// # Example
///
/// ```
/// use lrs_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"cluster key", b"ADV v=2 pages=5");
/// assert_eq!(tag.0.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    hmac_sha256_parts(key, &[message])
}

/// HMAC over the concatenation of several message parts.
pub fn hmac_sha256_parts(key: &[u8], parts: &[&[u8]]) -> Digest {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(&d.0);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    for p in parts {
        inner.update(p);
    }
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest.0);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn parts_match_whole() {
        let tag1 = hmac_sha256(b"k", b"snack page=3 bits=0110");
        let tag2 = hmac_sha256_parts(b"k", &[b"snack ", b"page=3 ", b"bits=0110"]);
        assert_eq!(tag1, tag2);
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}

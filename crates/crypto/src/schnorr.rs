//! Schnorr signatures over secp256k1.
//!
//! The base station signs the root of the Merkle hash tree once per code
//! image (paper §IV-C-3); every sensor node verifies that single
//! signature with the preloaded public key. We use a Schnorr signature
//! (key-prefixed, deterministic nonce) instead of ECDSA: the protocol
//! role and the cost profile (one expensive group operation per
//! verification) are identical, and Schnorr is simpler to implement
//! correctly from scratch.
//!
//! A signature is `(R, s)` with `R = rG`, `e = H(R || P || m) mod n`,
//! `s = r + e·x mod n`; verification checks `sG = R + eP`.

use crate::bignum::U256;
use crate::ec::{group_order, mul_generator, Affine, Jacobian};
use crate::sha256::sha256_concat;
use std::fmt;

/// Serialized signature length in bytes: 64 (point `R`) + 32 (scalar `s`).
pub const SIGNATURE_LEN: usize = 96;

/// A Schnorr signature `(R, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    r_point: Affine,
    s: U256,
}

impl Signature {
    /// Serializes to [`SIGNATURE_LEN`] bytes.
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..64].copy_from_slice(&self.r_point.to_bytes());
        out[64..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses a signature; returns `None` if `R` is not a curve point.
    pub fn from_bytes(bytes: &[u8; SIGNATURE_LEN]) -> Option<Self> {
        let mut rb = [0u8; 64];
        rb.copy_from_slice(&bytes[..64]);
        let r_point = Affine::from_bytes(&rb)?;
        let mut sb = [0u8; 32];
        sb.copy_from_slice(&bytes[64..]);
        Some(Signature {
            r_point,
            s: U256::from_be_bytes(&sb),
        })
    }
}

/// A verification (public) key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PublicKey {
    point: Affine,
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:02x?}…)", &self.point.to_bytes()[..4])
    }
}

impl PublicKey {
    /// Serializes to 64 bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.point.to_bytes()
    }

    /// Parses a public key, checking the curve equation.
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<Self> {
        Affine::from_bytes(bytes).map(|point| PublicKey { point })
    }

    /// Verifies `sig` over `message`.
    ///
    /// This is the expensive operation that the message-specific puzzle
    /// (weak authenticator) guards in the dissemination protocol.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let n = group_order();
        if sig.s.is_zero() || sig.s >= n {
            return false;
        }
        if matches!(sig.r_point, Affine::Infinity) {
            return false;
        }
        let e = challenge(&sig.r_point, &self.point, message);
        // sG == R + eP
        let lhs = mul_generator(&sig.s);
        let rhs = Jacobian::from_affine(sig.r_point)
            .add(&Jacobian::from_affine(self.point).mul_scalar(&e))
            .to_affine();
        lhs == rhs
    }
}

/// A signing keypair held by the base station.
#[derive(Clone)]
pub struct Keypair {
    secret: U256,
    public: PublicKey,
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Keypair({:?})", self.public)
    }
}

impl Keypair {
    /// Derives a keypair deterministically from a seed.
    ///
    /// The seed is hashed to a scalar; a counter is appended and rehashed
    /// in the (negligible-probability) event the scalar is zero mod `n`.
    pub fn from_seed(seed: &[u8]) -> Self {
        let n = group_order();
        let mut counter = 0u32;
        let secret = loop {
            let d = sha256_concat(&[b"lrs-keygen", seed, &counter.to_be_bytes()]);
            let x = U256::from_be_bytes(&d.0).full_mul(U256::ONE).reduce(&n);
            if !x.is_zero() {
                break x;
            }
            counter += 1;
        };
        let public = PublicKey {
            point: mul_generator(&secret),
        };
        Keypair { secret, public }
    }

    /// The verification key to preload on sensor nodes.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` with a deterministic (derived) nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let n = group_order();
        let mut counter = 0u32;
        loop {
            let nd = sha256_concat(&[
                b"lrs-nonce",
                &self.secret.to_be_bytes(),
                message,
                &counter.to_be_bytes(),
            ]);
            let r = U256::from_be_bytes(&nd.0).full_mul(U256::ONE).reduce(&n);
            if r.is_zero() {
                counter += 1;
                continue;
            }
            let r_point = mul_generator(&r);
            let e = challenge(&r_point, &self.public.point, message);
            // s = r + e*x mod n
            let ex = e.mul_mod(self.secret, &n);
            let s = r.add_mod(ex, &n);
            if s.is_zero() {
                counter += 1;
                continue;
            }
            return Signature { r_point, s };
        }
    }
}

/// Fiat-Shamir challenge `e = H(R || P || m) mod n`.
fn challenge(r_point: &Affine, pubkey: &Affine, message: &[u8]) -> U256 {
    let n = group_order();
    let d = sha256_concat(&[
        b"lrs-schnorr",
        &r_point.to_bytes(),
        &pubkey.to_bytes(),
        message,
    ]);
    U256::from_be_bytes(&d.0).full_mul(U256::ONE).reduce(&n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed(b"base station");
        let msg = b"merkle root of image v2";
        let sig = kp.sign(msg);
        assert!(kp.public().verify(msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = Keypair::from_seed(b"bs");
        let sig = kp.sign(b"image v2");
        assert!(!kp.public().verify(b"image v3", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = Keypair::from_seed(b"bs1");
        let kp2 = Keypair::from_seed(b"bs2");
        let sig = kp1.sign(b"m");
        assert!(!kp2.public().verify(b"m", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = Keypair::from_seed(b"bs");
        let sig = kp.sign(b"m");
        let mut bytes = sig.to_bytes();
        bytes[80] ^= 0x40; // flip a bit in s
        let forged = Signature::from_bytes(&bytes).expect("s is unconstrained at parse");
        assert!(!kp.public().verify(b"m", &forged));
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let kp = Keypair::from_seed(b"bs");
        let sig = kp.sign(b"m");
        let bytes = sig.to_bytes();
        assert_eq!(Signature::from_bytes(&bytes), Some(sig));
    }

    #[test]
    fn corrupted_r_point_rejected_at_parse() {
        let kp = Keypair::from_seed(b"bs");
        let sig = kp.sign(b"m");
        let mut bytes = sig.to_bytes();
        bytes[3] ^= 0xff; // corrupt R.x -> off curve
        assert_eq!(Signature::from_bytes(&bytes), None);
    }

    #[test]
    fn deterministic_signing() {
        let kp = Keypair::from_seed(b"bs");
        assert_eq!(kp.sign(b"m").to_bytes(), kp.sign(b"m").to_bytes());
    }

    #[test]
    fn public_key_roundtrip() {
        let kp = Keypair::from_seed(b"bs");
        let pk = kp.public();
        assert_eq!(PublicKey::from_bytes(&pk.to_bytes()), Some(pk));
    }
}

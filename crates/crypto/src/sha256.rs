//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! This is the public cryptographic hash function `H(·)` that LR-Seluge
//! preloads on every sensor node. It is used for packet hash images, the
//! hash chaining between pages, the Merkle hash tree over the hash page,
//! message-specific puzzles, and as the compression primitive inside HMAC.

use crate::hash::Digest;

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use lrs_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let d = h.finalize();
/// assert_eq!(d, lrs_crypto::sha256::sha256(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the standard initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the computation, returning the 32-byte digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 64-bit big-endian
        // message bit length — assembled into one buffer and fed through
        // a single bulk `update` (the old loop pushed the zeros one byte
        // at a time, a measurable cost for the short messages packet
        // hashing produces).
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = 1 + (55usize.wrapping_sub(self.buf_len) & 63);
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update(&pad[..pad_len + 8]);
        debug_assert_eq!(self.buf_len, 0, "padding must end on a block boundary");
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }
}

/// One SHA-256 compression round over `block`, updating `state` in
/// place. Shared by the incremental hasher and the multi-buffer batch
/// kernels in [`crate::sha256_mb`].
pub(crate) fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256 of `data`.
///
/// # Example
///
/// ```
/// let d = lrs_crypto::sha256::sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of several byte slices, avoiding an
/// intermediate allocation.
pub fn sha256_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.to_hex()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let whole = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn concat_matches_oneshot() {
        let a = b"page ";
        let b = b"hash ";
        let c = b"images";
        let mut joined = Vec::new();
        joined.extend_from_slice(a);
        joined.extend_from_slice(b);
        joined.extend_from_slice(c);
        assert_eq!(sha256_concat(&[a, b, c]), sha256(&joined));
    }

    #[test]
    fn multi_block_lengths() {
        // Exercise every length near block boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129, 200] {
            let data = vec![0xa5u8; len];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            for byte in &data {
                h.update(std::slice::from_ref(byte));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}

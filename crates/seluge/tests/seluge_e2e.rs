//! End-to-end Seluge dissemination, including under attack.

use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::attack::{AttackKind, Attacker, MaybeAdversary};
use lrs_deluge::engine::{DisseminationNode, EngineConfig, Scheme};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::SimConfig;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;
use lrs_seluge::{SelugeArtifacts, SelugeParams, SelugeScheme};

type SelugeNode = DisseminationNode<SelugeScheme, UnionPolicy>;

struct Setup {
    params: SelugeParams,
    artifacts: SelugeArtifacts,
    image: Vec<u8>,
    key: ClusterKey,
    pubkey: lrs_crypto::schnorr::PublicKey,
    puzzle: Puzzle,
}

fn setup(image_len: usize) -> Setup {
    let params = SelugeParams {
        version: 1,
        image_len,
        packets_per_page: 8,
        slice_len: 48,
        hash_page_chunks: 4,
        puzzle_strength: 6,
    };
    let image: Vec<u8> = (0..image_len as u32)
        .map(|i| (i.wrapping_mul(2246822519) >> 11) as u8)
        .collect();
    let kp = Keypair::from_seed(b"base station");
    let chain = PuzzleKeyChain::generate(b"puzzle chain", 4);
    let artifacts = SelugeArtifacts::build(&image, params, &kp, &chain);
    Setup {
        params,
        artifacts,
        image,
        key: ClusterKey::derive(b"deployment", 0),
        pubkey: kp.public(),
        puzzle: Puzzle::new(chain.anchor(), params.puzzle_strength),
    }
}

fn make_node(s: &Setup, id: NodeId) -> SelugeNode {
    let scheme = if id == NodeId(0) {
        SelugeScheme::base(&s.artifacts, s.pubkey, s.puzzle)
    } else {
        SelugeScheme::receiver(s.params, s.pubkey, s.puzzle)
    };
    DisseminationNode::new(
        scheme,
        UnionPolicy::new(),
        s.key.clone(),
        EngineConfig::default(),
    )
}

#[test]
fn one_hop_secure_dissemination() {
    let s = setup(2_000);
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: 0.1,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(Topology::star(6), 21, |id| make_node(&s, id))
        .config(cfg)
        .build();
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    for i in 1..6u32 {
        let node = sim.node(NodeId(i));
        assert_eq!(node.scheme().image().unwrap(), s.image, "node {i}");
        assert_eq!(node.scheme().cost().signature_verifications, 1, "node {i}");
    }
}

#[test]
fn multi_hop_secure_dissemination() {
    let s = setup(1_200);
    let mut sim = SimBuilder::new(Topology::line(4, 0.9), 5, |id| make_node(&s, id)).build();
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    for i in 1..4u32 {
        assert_eq!(sim.node(NodeId(i)).scheme().image().unwrap(), s.image);
    }
}

#[test]
fn bogus_data_flood_is_rejected_and_dissemination_completes() {
    let s = setup(1_200);
    let payload_len = s.params.data_payload_len();
    let cfg = SimConfig::default();
    let mut sim = SimBuilder::new(Topology::star(6), 9, |id| {
        if id == NodeId(5) {
            MaybeAdversary::Attacker(Attacker::outsider(
                AttackKind::BogusData {
                    payload_len,
                    index_space: s.params.packets_per_page,
                },
                Duration::from_millis(150),
                1,
            ))
        } else {
            MaybeAdversary::Honest(make_node(&s, id))
        }
    })
    .config(cfg)
    .build();
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete, "stalled at {:?}", report.final_time);
    let mut total_rejects = 0;
    for i in 1..5u32 {
        let node = sim.node(NodeId(i)).honest().expect("honest");
        // Every honest node ends with the *correct* image despite the
        // flood: no bogus packet was ever stored.
        assert_eq!(node.scheme().image().unwrap(), s.image, "node {i}");
        total_rejects += node.stats().auth_rejects + node.stats().out_of_order_drops;
    }
    let injected = sim.node(NodeId(5)).attacker().expect("attacker").injected;
    assert!(injected > 0, "attacker never fired");
    assert!(
        total_rejects > 0,
        "flood should have produced rejections (injected {injected})"
    );
}

#[test]
fn forged_signature_flood_never_triggers_expensive_verification() {
    let s = setup(1_200);
    let body_len = SelugeArtifacts::signature_body_len();
    let mut sim = SimBuilder::new(Topology::star(5), 13, |id| {
        if id == NodeId(4) {
            MaybeAdversary::Attacker(Attacker::outsider(
                AttackKind::ForgedSignature { body_len },
                Duration::from_millis(400),
                1,
            ))
        } else {
            MaybeAdversary::Honest(make_node(&s, id))
        }
    })
    .build();
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete);
    for i in 1..4u32 {
        let node = sim.node(NodeId(i)).honest().unwrap();
        let cost = node.scheme().cost();
        // The puzzle absorbed the flood: exactly the one legitimate
        // verification ran, while puzzle checks counted the forgeries.
        assert_eq!(cost.signature_verifications, 1, "node {i}");
        assert!(cost.puzzle_checks >= 1, "node {i}");
    }
}

#[test]
fn forged_control_packets_rejected_by_mac() {
    let s = setup(800);
    let mut sim = SimBuilder::new(Topology::star(5), 17, |id| {
        if id == NodeId(4) {
            MaybeAdversary::Attacker(Attacker::outsider(
                AttackKind::ForgedAdv,
                Duration::from_millis(400),
                1,
            ))
        } else {
            MaybeAdversary::Honest(make_node(&s, id))
        }
    })
    .build();
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete);
    let mut mac_rejects = 0;
    for i in 1..4u32 {
        let node = sim.node(NodeId(i)).honest().unwrap();
        assert_eq!(node.scheme().image().unwrap(), s.image);
        mac_rejects += node.stats().mac_rejects;
    }
    assert!(
        mac_rejects > 0,
        "forged advertisements must be MAC-rejected"
    );
}

#[test]
fn tiny_image_single_page() {
    let s = setup(100); // far less than one page
    assert_eq!(s.params.pages(), 1);
    let mut sim = SimBuilder::new(Topology::star(3), 31, |id| make_node(&s, id)).build();
    let report = sim.run(Duration::from_secs(3_600));
    assert!(report.all_complete);
    for i in 1..3u32 {
        assert_eq!(sim.node(NodeId(i)).scheme().image().unwrap(), s.image);
    }
}

//! Seluge: secure Deluge-based code dissemination (Hyun, Ning, Liu & Du,
//! IPSN 2008), reimplemented as the baseline the paper compares against.
//!
//! Seluge keeps Deluge's page-by-page ARQ dissemination and adds
//! immediate per-packet authentication (paper §II-B):
//!
//! * the `j`-th packet of page `i` embeds the hash image of the `j`-th
//!   packet of page `i+1` (one-to-one chaining between adjacent pages);
//! * a special *hash page* `M0` concatenates the hash images of page 1's
//!   packets; a Merkle hash tree over `M0`'s chunks lets each `M0` packet
//!   be verified in isolation;
//! * the base station signs the Merkle root, and a message-specific
//!   puzzle (weak authenticator) shields nodes from forged-signature
//!   floods.
//!
//! Engine items: item 0 = signature packet, item 1 = hash page,
//! items `2..2+g` = code pages.

pub mod preprocess;
pub mod scheme;

pub use preprocess::{SelugeArtifacts, SelugeParams};
pub use scheme::SelugeScheme;

use lrs_crypto::hash::{hash_image, HashImage};

/// Hash image of a data packet as transmitted on the wire:
/// `h = H(version || item || index || payload)` truncated.
///
/// Both the preprocessing (computing the chained hashes) and the
/// receiver-side verification use this exact encoding.
pub fn packet_hash(version: u16, item: u16, index: u16, payload: &[u8]) -> HashImage {
    hash_image(&[
        &version.to_be_bytes(),
        &item.to_be_bytes(),
        &index.to_be_bytes(),
        payload,
    ])
}

/// [`packet_hash`] for all packets of one page at once, batched through
/// the multi-buffer SHA-256 kernels. Entry `j` of the result is
/// `packet_hash(version, item, j, payloads[j])`, bit-identical to the
/// one-at-a-time function.
pub fn packet_hash_batch<P: AsRef<[u8]>>(
    version: u16,
    item: u16,
    payloads: &[P],
) -> Vec<HashImage> {
    let version_be = version.to_be_bytes();
    let item_be = item.to_be_bytes();
    let index_be: Vec<[u8; 2]> = (0..payloads.len())
        .map(|j| (j as u16).to_be_bytes())
        .collect();
    let msgs: Vec<[&[u8]; 4]> = payloads
        .iter()
        .zip(&index_be)
        .map(|(p, idx)| [&version_be[..], &item_be[..], &idx[..], p.as_ref()])
        .collect();
    lrs_crypto::hash::hash_image_batch(&msgs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_hash_is_position_bound() {
        let h = packet_hash(1, 2, 3, b"payload");
        assert_ne!(h, packet_hash(1, 2, 4, b"payload"), "index bound");
        assert_ne!(h, packet_hash(1, 3, 3, b"payload"), "item bound");
        assert_ne!(h, packet_hash(2, 2, 3, b"payload"), "version bound");
        assert_ne!(h, packet_hash(1, 2, 3, b"payloae"), "payload bound");
        assert_eq!(h, packet_hash(1, 2, 3, b"payload"));
    }
}

//! Base-station preprocessing for Seluge.
//!
//! Starting from the last page and working backwards, every packet of
//! page `i` gets the hash image of the corresponding packet of page
//! `i+1` appended; the hashes of page 1's packets form the hash page
//! `M0`, protected by a Merkle tree whose root is signed.

use lrs_crypto::hash::{Digest, HASH_IMAGE_LEN};
use lrs_crypto::merkle::MerkleTree;
use lrs_crypto::puzzle::{PuzzleKeyChain, PuzzleSolution};
use lrs_crypto::schnorr::{Keypair, SIGNATURE_LEN};
use lrs_crypto::sha256::sha256_concat;

/// Static Seluge layout parameters, preloaded on every node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelugeParams {
    /// Code image version.
    pub version: u16,
    /// Original image length in bytes.
    pub image_len: usize,
    /// Packets per page (`k`).
    pub packets_per_page: u16,
    /// Image bytes per packet (the slice; the on-air payload additionally
    /// carries a [`HASH_IMAGE_LEN`]-byte chained hash).
    pub slice_len: usize,
    /// Number of hash-page chunks (a power of two; the Merkle leaf count).
    pub hash_page_chunks: u16,
    /// Puzzle difficulty in leading zero bits.
    pub puzzle_strength: u32,
}

impl Default for SelugeParams {
    fn default() -> Self {
        SelugeParams {
            version: 1,
            image_len: 20 * 1024,
            packets_per_page: 32,
            slice_len: 64,
            hash_page_chunks: 8,
            puzzle_strength: 12,
        }
    }
}

impl SelugeParams {
    /// Number of code pages `g`.
    pub fn pages(&self) -> u16 {
        (self.image_len.div_ceil(self.page_capacity())).max(1) as u16
    }

    /// Image bytes per page.
    pub fn page_capacity(&self) -> usize {
        self.packets_per_page as usize * self.slice_len
    }

    /// Engine item count: signature + hash page + pages.
    pub fn num_items(&self) -> u16 {
        2 + self.pages()
    }

    /// On-air data packet payload length (slice + chained hash).
    pub fn data_payload_len(&self) -> usize {
        self.slice_len + HASH_IMAGE_LEN
    }

    /// Hash-page length in bytes (one hash image per page-1 packet).
    pub fn hash_page_len(&self) -> usize {
        self.packets_per_page as usize * HASH_IMAGE_LEN
    }

    /// Hash-page chunk length in bytes.
    pub fn chunk_len(&self) -> usize {
        self.hash_page_len()
            .div_ceil(self.hash_page_chunks as usize)
    }

    /// Merkle tree depth over the hash-page chunks.
    pub fn merkle_depth(&self) -> usize {
        assert!(
            self.hash_page_chunks.is_power_of_two(),
            "hash_page_chunks must be a power of two"
        );
        self.hash_page_chunks.trailing_zeros() as usize
    }

    /// Hash-page packet payload length (chunk + Merkle path).
    pub fn hash_page_payload_len(&self) -> usize {
        self.chunk_len() + 32 * self.merkle_depth()
    }
}

/// Everything the base station precomputes for one image.
#[derive(Clone, Debug)]
pub struct SelugeArtifacts {
    params: SelugeParams,
    /// `packets[i][j]` = on-air payload of packet `j` of page `i`
    /// (0-based pages; wire item = `i + 2`).
    page_packets: Vec<Vec<Vec<u8>>>,
    /// Hash-page packet payloads (chunk || Merkle path).
    hash_page_packets: Vec<Vec<u8>>,
    /// The signature packet body.
    signature_body: Vec<u8>,
    /// The Merkle root (for tests).
    root: Digest,
}

impl SelugeArtifacts {
    /// Runs the full preprocessing pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `image.len() != params.image_len` or the chunk count is
    /// not a power of two.
    pub fn build(
        image: &[u8],
        params: SelugeParams,
        keypair: &Keypair,
        puzzle_chain: &PuzzleKeyChain,
    ) -> Self {
        assert_eq!(image.len(), params.image_len, "image length mismatch");
        let g = params.pages() as usize;
        let k = params.packets_per_page as usize;
        let mut padded = image.to_vec();
        padded.resize(g * params.page_capacity(), 0);

        // Build packets from the last page backwards; packet j of page i
        // carries the hash of packet j of page i+1 (zeroes for page g-1).
        let mut page_packets: Vec<Vec<Vec<u8>>> = vec![Vec::new(); g];
        let mut next_hashes: Vec<[u8; HASH_IMAGE_LEN]> = vec![[0u8; HASH_IMAGE_LEN]; k];
        for i in (0..g).rev() {
            let item = (i + 2) as u16;
            let mut packets = Vec::with_capacity(k);
            for (j, next_hash) in next_hashes.iter().enumerate().take(k) {
                let off = i * params.page_capacity() + j * params.slice_len;
                let mut payload = padded[off..off + params.slice_len].to_vec();
                payload.extend_from_slice(next_hash);
                packets.push(payload);
            }
            // All per-page packet hashes are independent: one batch
            // through the multi-buffer SHA-256 kernels.
            next_hashes = crate::packet_hash_batch(params.version, item, &packets)
                .iter()
                .map(|h| h.0)
                .collect();
            page_packets[i] = packets;
        }

        // next_hashes now holds the hashes of page 0's packets (wire item
        // 2): they form the hash page M0.
        let mut hash_page: Vec<u8> = next_hashes.iter().flatten().copied().collect();
        hash_page.resize(params.chunk_len() * params.hash_page_chunks as usize, 0);
        let chunks: Vec<&[u8]> = hash_page.chunks(params.chunk_len()).collect();
        let tree = MerkleTree::build(chunks.iter().copied());
        let hash_page_packets: Vec<Vec<u8>> = chunks
            .iter()
            .enumerate()
            .map(|(j, chunk)| {
                let mut payload = chunk.to_vec();
                for sib in tree.proof(j).siblings() {
                    payload.extend_from_slice(&sib.0);
                }
                payload
            })
            .collect();

        let root = tree.root();
        let signed = Self::signed_message(&params, &root);
        let signature = keypair.sign(&signed.0);
        // The puzzle covers the signed message *and* the signature bytes,
        // so any tampering fails the cheap check before the expensive
        // verification runs.
        let mut puzzle_msg = signed.0.to_vec();
        puzzle_msg.extend_from_slice(&signature.to_bytes());
        let puzzle_sol = {
            let puzzle =
                lrs_crypto::puzzle::Puzzle::new(puzzle_chain.anchor(), params.puzzle_strength);
            puzzle_chain.solve(&puzzle, params.version as u32, &puzzle_msg)
        };

        let mut signature_body = Vec::new();
        signature_body.extend_from_slice(&root.0);
        signature_body.extend_from_slice(&signature.to_bytes());
        signature_body.extend_from_slice(&puzzle_sol.key.0);
        signature_body.extend_from_slice(&puzzle_sol.solution.to_be_bytes());
        debug_assert_eq!(signature_body.len(), Self::signature_body_len());

        SelugeArtifacts {
            params,
            page_packets,
            hash_page_packets,
            signature_body,
            root,
        }
    }

    /// The message covered by the signature: binds the root to the image
    /// metadata so a root cannot be replayed under different parameters.
    pub fn signed_message(params: &SelugeParams, root: &Digest) -> Digest {
        sha256_concat(&[
            b"seluge-root",
            &params.version.to_be_bytes(),
            &(params.image_len as u64).to_be_bytes(),
            &params.packets_per_page.to_be_bytes(),
            &(params.slice_len as u32).to_be_bytes(),
            &params.hash_page_chunks.to_be_bytes(),
            &root.0,
        ])
    }

    /// Wire length of the signature body.
    pub fn signature_body_len() -> usize {
        32 + SIGNATURE_LEN + 32 + 8
    }

    /// Splits a signature body into `(root, signature, puzzle solution)`.
    pub fn parse_signature_body(
        body: &[u8],
    ) -> Option<(Digest, [u8; SIGNATURE_LEN], PuzzleSolution)> {
        if body.len() != Self::signature_body_len() {
            return None;
        }
        let mut root = [0u8; 32];
        root.copy_from_slice(&body[..32]);
        let mut sig = [0u8; SIGNATURE_LEN];
        sig.copy_from_slice(&body[32..32 + SIGNATURE_LEN]);
        let mut key = [0u8; 32];
        key.copy_from_slice(&body[32 + SIGNATURE_LEN..64 + SIGNATURE_LEN]);
        let mut sol = [0u8; 8];
        sol.copy_from_slice(&body[64 + SIGNATURE_LEN..]);
        Some((
            Digest(root),
            sig,
            PuzzleSolution {
                key: Digest(key),
                solution: u64::from_be_bytes(sol),
            },
        ))
    }

    /// Layout parameters.
    pub fn params(&self) -> SelugeParams {
        self.params
    }

    /// The Merkle root over the hash page.
    pub fn root(&self) -> Digest {
        self.root
    }

    /// The signature packet body.
    pub fn signature_body(&self) -> &[u8] {
        &self.signature_body
    }

    /// Payload of hash-page packet `j`.
    pub fn hash_page_packet(&self, j: u16) -> &[u8] {
        &self.hash_page_packets[j as usize]
    }

    /// Payload of packet `j` of 0-based page `i`.
    pub fn page_packet(&self, i: u16, j: u16) -> &[u8] {
        &self.page_packets[i as usize][j as usize]
    }

    /// Pre-fills a run's packet-digest memo with the hash image of every
    /// predetermined data packet, computed one multi-buffer batch per
    /// page. Receivers then verify even first-contact packets against
    /// warm entries; per-node `hashes` cost counters are unaffected
    /// (hits land in `memoized_hashes`, exactly as with lazy fills).
    pub fn warm_digest_cache(&self, cache: &crate::scheme::PacketDigestCache) {
        for (i, packets) in self.page_packets.iter().enumerate() {
            let item = (i + 2) as u16;
            let hashes = crate::packet_hash_batch(self.params.version, item, packets);
            cache.warm(
                packets
                    .iter()
                    .zip(hashes)
                    .enumerate()
                    .map(|(j, (p, h))| ((self.params.version, item, j as u16), p.as_slice(), h)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet_hash;

    fn small_params() -> SelugeParams {
        SelugeParams {
            version: 1,
            image_len: 600,
            packets_per_page: 4,
            slice_len: 32,
            hash_page_chunks: 4,
            puzzle_strength: 4,
        }
    }

    fn build() -> (SelugeArtifacts, Vec<u8>, Keypair, PuzzleKeyChain) {
        let params = small_params();
        let image: Vec<u8> = (0..params.image_len as u32)
            .map(|i| (i % 253) as u8)
            .collect();
        let kp = Keypair::from_seed(b"bs");
        let chain = PuzzleKeyChain::generate(b"puzzles", 4);
        let art = SelugeArtifacts::build(&image, params, &kp, &chain);
        (art, image, kp, chain)
    }

    #[test]
    fn page_count_and_sizes() {
        let p = small_params();
        // 600 / (4*32=128) = 5 pages.
        assert_eq!(p.pages(), 5);
        assert_eq!(p.num_items(), 7);
        assert_eq!(p.data_payload_len(), 32 + HASH_IMAGE_LEN);
        assert_eq!(p.hash_page_len(), 4 * HASH_IMAGE_LEN);
        assert_eq!(p.chunk_len(), 8);
        assert_eq!(p.merkle_depth(), 2);
    }

    #[test]
    fn chaining_is_consistent() {
        let (art, _, _, _) = build();
        let p = art.params();
        // The hash embedded in packet j of page i equals the hash of
        // packet j of page i+1.
        for i in 0..p.pages() - 1 {
            for j in 0..p.packets_per_page {
                let packet = art.page_packet(i, j);
                let embedded = &packet[p.slice_len..];
                let next = art.page_packet(i + 1, j);
                let expected = packet_hash(p.version, (i + 1) + 2, j, next);
                assert_eq!(embedded, expected.0, "page {i} packet {j}");
            }
        }
        // Last page chains to zeros.
        let last = art.page_packet(p.pages() - 1, 0);
        assert!(last[p.slice_len..].iter().all(|&b| b == 0));
    }

    #[test]
    fn hash_page_contains_page0_hashes() {
        let (art, _, _, _) = build();
        let p = art.params();
        // Reconstruct M0 from the chunk parts of the hash-page packets.
        let mut m0 = Vec::new();
        for j in 0..p.hash_page_chunks {
            m0.extend_from_slice(&art.hash_page_packet(j)[..p.chunk_len()]);
        }
        for j in 0..p.packets_per_page {
            let expected = packet_hash(p.version, 2, j, art.page_packet(0, j));
            let off = j as usize * HASH_IMAGE_LEN;
            assert_eq!(&m0[off..off + HASH_IMAGE_LEN], expected.0);
        }
    }

    #[test]
    fn merkle_paths_verify_against_root() {
        let (art, _, _, _) = build();
        let p = art.params();
        for j in 0..p.hash_page_chunks {
            let payload = art.hash_page_packet(j);
            let chunk = &payload[..p.chunk_len()];
            let siblings: Vec<Digest> = payload[p.chunk_len()..]
                .chunks(32)
                .map(|c| {
                    let mut d = [0u8; 32];
                    d.copy_from_slice(c);
                    Digest(d)
                })
                .collect();
            let proof = lrs_crypto::merkle::MerkleProof::from_parts(j as usize, siblings);
            assert!(proof.verify(chunk, &art.root()), "chunk {j}");
        }
    }

    #[test]
    fn signature_body_roundtrip_and_validity() {
        let (art, _, kp, chain) = build();
        let p = art.params();
        let (root, sig_bytes, sol) =
            SelugeArtifacts::parse_signature_body(art.signature_body()).unwrap();
        assert_eq!(root, art.root());
        let signed = SelugeArtifacts::signed_message(&p, &root);
        let sig = lrs_crypto::schnorr::Signature::from_bytes(&sig_bytes).unwrap();
        assert!(kp.public().verify(&signed.0, &sig));
        let puzzle = lrs_crypto::puzzle::Puzzle::new(chain.anchor(), p.puzzle_strength);
        let mut puzzle_msg = signed.0.to_vec();
        puzzle_msg.extend_from_slice(&sig_bytes);
        assert!(puzzle.verify(p.version as u32, &puzzle_msg, &sol));
        assert!(SelugeArtifacts::parse_signature_body(&art.signature_body()[1..]).is_none());
    }
}

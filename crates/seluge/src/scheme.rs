//! The Seluge per-node [`Scheme`] implementation.
//!
//! Receiver-side verification, page by page: the signature packet
//! authenticates the Merkle root (guarded by the puzzle), the Merkle
//! paths authenticate hash-page packets, the hash page authenticates
//! page 1's packets, and every completed page authenticates the next.

use crate::packet_hash;
use crate::preprocess::{SelugeArtifacts, SelugeParams};
use lrs_crypto::hash::{Digest, HashImage, HASH_IMAGE_LEN};
use lrs_crypto::merkle::MerkleProof;
use lrs_crypto::puzzle::Puzzle;
use lrs_crypto::schnorr::{PublicKey, Signature};
use lrs_deluge::engine::{CryptoCost, PacketDisposition, Scheme};
use lrs_deluge::wire::BitVec;
use lrs_netsim::digest::DigestCache;
use lrs_netsim::node::PacketKind;
use lrs_netsim::violation::{BufferKind, ContentDigest, InvariantViolation};

/// The shared per-run packet-digest memo used by Seluge schemes.
pub type PacketDigestCache = DigestCache<HashImage>;

/// Per-node Seluge state (base station or receiver).
#[derive(Clone, Debug)]
pub struct SelugeScheme {
    params: SelugeParams,
    pubkey: PublicKey,
    puzzle: Puzzle,
    complete: u16,
    signature_body: Option<Vec<u8>>,
    root: Option<Digest>,
    hash_page: Vec<Option<Vec<u8>>>,
    /// Completed page packets (with chained hash tails), for serving.
    pages: Vec<Vec<Vec<u8>>>,
    /// Packets of the page being received.
    current: Vec<Option<Vec<u8>>>,
    /// Expected hash images for the packets of the next incomplete page.
    expected: Vec<HashImage>,
    /// Optional run-wide packet-digest memo (see [`PacketDigestCache`]).
    digest_cache: Option<PacketDigestCache>,
    cost: CryptoCost,
}

impl SelugeScheme {
    /// A receiver that has nothing yet.
    pub fn receiver(params: SelugeParams, pubkey: PublicKey, puzzle: Puzzle) -> Self {
        SelugeScheme {
            params,
            pubkey,
            puzzle,
            complete: 0,
            signature_body: None,
            root: None,
            hash_page: vec![None; params.hash_page_chunks as usize],
            pages: Vec::new(),
            current: vec![None; params.packets_per_page as usize],
            expected: Vec::new(),
            digest_cache: None,
            cost: CryptoCost::default(),
        }
    }

    /// Attaches a run-wide digest memo shared by all nodes of a sim run.
    /// Purely an observer-level optimization: dispositions and the
    /// `hashes` cost counter are unchanged; cache hits are tallied in
    /// `CryptoCost::memoized_hashes`.
    pub fn with_digest_cache(mut self, cache: PacketDigestCache) -> Self {
        self.digest_cache = Some(cache);
        self
    }

    /// The base station: everything precomputed and complete.
    pub fn base(artifacts: &SelugeArtifacts, pubkey: PublicKey, puzzle: Puzzle) -> Self {
        let params = artifacts.params();
        let pages = (0..params.pages())
            .map(|i| {
                (0..params.packets_per_page)
                    .map(|j| artifacts.page_packet(i, j).to_vec())
                    .collect()
            })
            .collect();
        SelugeScheme {
            params,
            pubkey,
            puzzle,
            complete: params.num_items(),
            signature_body: Some(artifacts.signature_body().to_vec()),
            root: Some(artifacts.root()),
            hash_page: (0..params.hash_page_chunks)
                .map(|j| Some(artifacts.hash_page_packet(j).to_vec()))
                .collect(),
            pages,
            current: Vec::new(),
            expected: Vec::new(),
            digest_cache: None,
            cost: CryptoCost::default(),
        }
    }

    /// The reassembled, verified image once dissemination completed.
    pub fn image(&self) -> Option<Vec<u8>> {
        if self.complete != self.params.num_items() {
            return None;
        }
        let mut out = Vec::with_capacity(self.params.image_len);
        for page in &self.pages {
            for packet in page {
                out.extend_from_slice(&packet[..self.params.slice_len]);
            }
        }
        out.truncate(self.params.image_len);
        Some(out)
    }

    /// Layout parameters.
    pub fn params(&self) -> SelugeParams {
        self.params
    }

    /// Checks the protocol invariants the chaos layer enforces after
    /// every delivery (see DESIGN.md §7): only authenticated packets
    /// buffered, buffer occupancy within the per-page packet bound,
    /// completed pages identical to preprocessing, and a complete
    /// node's image byte-identical to the origin.
    pub fn verify_invariants(
        &self,
        artifacts: &SelugeArtifacts,
        image: &[u8],
    ) -> Result<(), InvariantViolation> {
        let n_items = self.params.num_items();
        if self.complete > n_items {
            return Err(InvariantViolation::CompletionOverflow {
                complete: u64::from(self.complete),
                total: u64::from(n_items),
            });
        }
        if self.hash_page.len() != self.params.hash_page_chunks as usize {
            return Err(InvariantViolation::BufferBound {
                buffer: BufferKind::HashPage,
                slots: self.hash_page.len() as u64,
                held: self.hash_page.iter().flatten().count() as u64,
                count: self.params.hash_page_chunks as u64,
            });
        }
        for (j, slot) in self.hash_page.iter().enumerate() {
            if let Some(p) = slot {
                let authentic = artifacts.hash_page_packet(j as u16);
                if p.as_slice() != authentic {
                    return Err(InvariantViolation::UnauthenticPacket {
                        buffer: BufferKind::HashPage,
                        page: None,
                        index: j as u32,
                        expected: ContentDigest::of(authentic),
                        actual: ContentDigest::of(p),
                    });
                }
            }
        }
        let cur_held = self.current.iter().flatten().count();
        if self.current.len() > self.params.packets_per_page as usize {
            return Err(InvariantViolation::BufferBound {
                buffer: BufferKind::Page,
                slots: self.current.len() as u64,
                held: cur_held as u64,
                count: self.params.packets_per_page as u64,
            });
        }
        if cur_held > 0 {
            if self.complete < 2 || self.complete >= n_items {
                return Err(InvariantViolation::UnexpectedBufferOccupancy {
                    complete: u64::from(self.complete),
                });
            }
            let page = self.complete - 2;
            for (j, slot) in self.current.iter().enumerate() {
                if let Some(p) = slot {
                    let authentic = artifacts.page_packet(page, j as u16);
                    if p.as_slice() != authentic {
                        return Err(InvariantViolation::UnauthenticPacket {
                            buffer: BufferKind::Page,
                            page: Some(u32::from(page)),
                            index: j as u32,
                            expected: ContentDigest::of(authentic),
                            actual: ContentDigest::of(p),
                        });
                    }
                }
            }
        }
        if self.complete >= 1 && self.signature_body.as_deref() != Some(artifacts.signature_body())
        {
            return Err(InvariantViolation::SignatureMismatch {
                expected: ContentDigest::of(artifacts.signature_body()),
                actual: self
                    .signature_body
                    .as_deref()
                    .map_or(ContentDigest::MISSING, ContentDigest::of),
            });
        }
        let pages_done = (self.complete as usize).saturating_sub(2);
        if self.pages.len() < pages_done {
            return Err(InvariantViolation::PagesMissing {
                complete: u64::from(self.complete),
                held: self.pages.len() as u64,
            });
        }
        for (i, page) in self.pages.iter().take(pages_done).enumerate() {
            for (j, packet) in page.iter().enumerate() {
                let authentic = artifacts.page_packet(i as u16, j as u16);
                if packet.as_slice() != authentic {
                    return Err(InvariantViolation::PageMismatch {
                        page: i as u32,
                        packet: Some(j as u32),
                        expected: ContentDigest::of(authentic),
                        actual: ContentDigest::of(packet),
                    });
                }
            }
        }
        if self.complete == n_items {
            match self.image() {
                Some(img) if img == image => {}
                other => {
                    return Err(InvariantViolation::ImageMismatch {
                        expected: ContentDigest::of(image),
                        actual: other
                            .as_deref()
                            .map_or(ContentDigest::MISSING, ContentDigest::of),
                    })
                }
            }
        }
        Ok(())
    }

    fn handle_signature(&mut self, payload: &[u8]) -> PacketDisposition {
        if self.signature_body.is_some() {
            return PacketDisposition::Duplicate;
        }
        let Some((root, sig_bytes, sol)) = SelugeArtifacts::parse_signature_body(payload) else {
            return PacketDisposition::Rejected;
        };
        let signed = SelugeArtifacts::signed_message(&self.params, &root);
        self.cost.hashes += 1;
        // Weak authenticator first: cheap filter against forged floods.
        self.cost.puzzle_checks += 1;
        self.cost.hashes += self.params.version as u64 + 1;
        let mut puzzle_msg = signed.0.to_vec();
        puzzle_msg.extend_from_slice(&sig_bytes);
        if !self
            .puzzle
            .verify(self.params.version as u32, &puzzle_msg, &sol)
        {
            return PacketDisposition::Rejected;
        }
        // Only now the expensive verification.
        self.cost.signature_verifications += 1;
        let Some(sig) = Signature::from_bytes(&sig_bytes) else {
            return PacketDisposition::Rejected;
        };
        if !self.pubkey.verify(&signed.0, &sig) {
            return PacketDisposition::Rejected;
        }
        self.signature_body = Some(payload.to_vec());
        self.root = Some(root);
        self.complete = 1;
        PacketDisposition::Accepted
    }

    fn handle_hash_page(&mut self, index: u16, payload: &[u8]) -> PacketDisposition {
        if index >= self.params.hash_page_chunks
            || payload.len() != self.params.hash_page_payload_len()
        {
            return PacketDisposition::Rejected;
        }
        if self.hash_page[index as usize].is_some() {
            return PacketDisposition::Duplicate;
        }
        let chunk_len = self.params.chunk_len();
        let chunk = &payload[..chunk_len];
        let siblings: Vec<Digest> = payload[chunk_len..]
            .chunks(32)
            .map(|c| {
                let mut d = [0u8; 32];
                d.copy_from_slice(c);
                Digest(d)
            })
            .collect();
        let proof = MerkleProof::from_parts(index as usize, siblings);
        self.cost.hashes += self.params.merkle_depth() as u64 + 1;
        let root = self.root.expect("item 1 only requested after item 0");
        if !proof.verify(chunk, &root) {
            return PacketDisposition::Rejected;
        }
        self.hash_page[index as usize] = Some(payload.to_vec());
        if self.hash_page.iter().all(|s| s.is_some()) {
            // M0 complete: extract the hash images of page 0's packets.
            let mut m0 = Vec::new();
            for slot in &self.hash_page {
                let p = slot.as_ref().expect("all present");
                m0.extend_from_slice(&p[..chunk_len]);
            }
            self.expected = (0..self.params.packets_per_page as usize)
                .map(|j| {
                    HashImage::from_slice(&m0[j * HASH_IMAGE_LEN..(j + 1) * HASH_IMAGE_LEN])
                        .expect("chunk sizing")
                })
                .collect();
            self.complete = 2;
        }
        PacketDisposition::Accepted
    }

    fn handle_page_packet(&mut self, item: u16, index: u16, payload: &[u8]) -> PacketDisposition {
        if index as usize >= self.current.len()
            || payload.len() != self.params.data_payload_len()
            || self.expected.len() != self.current.len()
        {
            return PacketDisposition::Rejected;
        }
        if self.current[index as usize].is_some() {
            return PacketDisposition::Duplicate;
        }
        self.cost.hashes += 1;
        let h = match &self.digest_cache {
            Some(cache) => match cache.lookup(self.params.version, item, index, payload) {
                Some(h) => {
                    self.cost.memoized_hashes += 1;
                    h
                }
                None => {
                    let h = packet_hash(self.params.version, item, index, payload);
                    cache.insert(self.params.version, item, index, payload, h);
                    h
                }
            },
            None => packet_hash(self.params.version, item, index, payload),
        };
        if h != self.expected[index as usize] {
            return PacketDisposition::Rejected;
        }
        self.current[index as usize] = Some(payload.to_vec());
        if self.current.iter().all(|s| s.is_some()) {
            let packets: Vec<Vec<u8>> = self
                .current
                .iter_mut()
                .map(|s| s.take().expect("all present"))
                .collect();
            // Chained hashes for the next page live in the packet tails.
            self.expected = packets
                .iter()
                .map(|p| {
                    HashImage::from_slice(&p[self.params.slice_len..]).expect("payload sizing")
                })
                .collect();
            self.pages.push(packets);
            self.complete += 1;
        }
        PacketDisposition::Accepted
    }
}

impl Scheme for SelugeScheme {
    fn version(&self) -> u16 {
        self.params.version
    }

    fn num_items(&self) -> u16 {
        self.params.num_items()
    }

    fn item_packets(&self, item: u16) -> u16 {
        match item {
            0 => 1,
            1 => self.params.hash_page_chunks,
            _ => self.params.packets_per_page,
        }
    }

    fn packets_needed(&self, item: u16) -> u16 {
        self.item_packets(item)
    }

    fn complete_items(&self) -> u16 {
        self.complete
    }

    fn handle_packet(&mut self, item: u16, index: u16, payload: &[u8]) -> PacketDisposition {
        debug_assert_eq!(item, self.complete, "engine only feeds the next item");
        match item {
            0 => {
                if index != 0 {
                    return PacketDisposition::Rejected;
                }
                self.handle_signature(payload)
            }
            1 => self.handle_hash_page(index, payload),
            _ => self.handle_page_packet(item, index, payload),
        }
    }

    fn wanted(&self, item: u16) -> BitVec {
        match item {
            0 => BitVec::ones(1),
            1 => {
                let mut bits = BitVec::zeros(self.params.hash_page_chunks as usize);
                for (i, slot) in self.hash_page.iter().enumerate() {
                    if slot.is_none() {
                        bits.set(i, true);
                    }
                }
                bits
            }
            _ => {
                let mut bits = BitVec::zeros(self.params.packets_per_page as usize);
                for (i, slot) in self.current.iter().enumerate() {
                    if slot.is_none() {
                        bits.set(i, true);
                    }
                }
                bits
            }
        }
    }

    fn packet_payload(&mut self, item: u16, index: u16) -> Option<Vec<u8>> {
        if item >= self.complete {
            return None;
        }
        match item {
            0 => self.signature_body.clone(),
            1 => self.hash_page.get(index as usize)?.clone(),
            _ => {
                let page = self.pages.get((item - 2) as usize)?;
                page.get(index as usize).cloned()
            }
        }
    }

    fn item_kind(&self, item: u16) -> PacketKind {
        match item {
            0 => PacketKind::Signature,
            1 => PacketKind::HashPage,
            _ => PacketKind::Data,
        }
    }

    fn cost(&self) -> CryptoCost {
        self.cost
    }

    fn reboot(&mut self) {
        // Flash (survives): the verified signature body, the *complete*
        // hash page, and every completed page — Seluge writes each
        // verified page to external flash before advancing. RAM (lost):
        // the in-progress item's partial packets. A partially received
        // hash page counts as RAM: its packets only reach flash once
        // the whole of M0 is assembled.
        for slot in &mut self.current {
            *slot = None;
        }
        let m0_done = !self.hash_page.is_empty() && self.hash_page.iter().all(|s| s.is_some());
        if !m0_done {
            for slot in &mut self.hash_page {
                *slot = None;
            }
        }
        self.complete = if self.signature_body.is_none() {
            0
        } else if !m0_done {
            1
        } else {
            2 + self.pages.len() as u16
        };
        // Rebuild the hash images authenticating the next page.
        self.expected = if let Some(page) = self.pages.last() {
            page.iter()
                .map(|p| {
                    HashImage::from_slice(&p[self.params.slice_len..]).expect("payload sizing")
                })
                .collect()
        } else if m0_done {
            let chunk_len = self.params.chunk_len();
            let mut m0 = Vec::new();
            for slot in &self.hash_page {
                m0.extend_from_slice(&slot.as_ref().expect("all present")[..chunk_len]);
            }
            (0..self.params.packets_per_page as usize)
                .map(|j| {
                    HashImage::from_slice(&m0[j * HASH_IMAGE_LEN..(j + 1) * HASH_IMAGE_LEN])
                        .expect("chunk sizing")
                })
                .collect()
        } else {
            Vec::new()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrs_crypto::puzzle::PuzzleKeyChain;
    use lrs_crypto::schnorr::Keypair;

    fn setup() -> (SelugeScheme, SelugeScheme, Vec<u8>) {
        let params = SelugeParams {
            version: 1,
            image_len: 500,
            packets_per_page: 4,
            slice_len: 32,
            hash_page_chunks: 4,
            puzzle_strength: 4,
        };
        let image: Vec<u8> = (0..500u32).map(|i| (i % 249) as u8).collect();
        let kp = Keypair::from_seed(b"bs");
        let chain = PuzzleKeyChain::generate(b"puzzles", 4);
        let art = SelugeArtifacts::build(&image, params, &kp, &chain);
        let puzzle = Puzzle::new(chain.anchor(), params.puzzle_strength);
        let base = SelugeScheme::base(&art, kp.public(), puzzle);
        let rx = SelugeScheme::receiver(params, kp.public(), puzzle);
        (base, rx, image)
    }

    /// Drives a full item-by-item transfer from base to receiver.
    fn transfer_all(base: &mut SelugeScheme, rx: &mut SelugeScheme) {
        while rx.complete_items() < rx.num_items() {
            let item = rx.complete_items();
            for idx in rx.wanted(item).iter_ones().collect::<Vec<_>>() {
                let payload = base.packet_payload(item, idx as u16).expect("base has all");
                let disp = rx.handle_packet(item, idx as u16, &payload);
                assert_eq!(disp, PacketDisposition::Accepted, "item {item} idx {idx}");
            }
        }
    }

    #[test]
    fn full_transfer_reconstructs_image() {
        let (mut base, mut rx, image) = setup();
        transfer_all(&mut base, &mut rx);
        assert_eq!(rx.image().unwrap(), image);
        // Exactly one expensive verification on the receiver.
        assert_eq!(rx.cost().signature_verifications, 1);
        assert_eq!(rx.cost().puzzle_checks, 1);
    }

    #[test]
    fn forged_signature_rejected_by_puzzle_before_verification() {
        let (_, mut rx, _) = setup();
        let forged = vec![0xAA; SelugeArtifacts::signature_body_len()];
        assert_eq!(rx.handle_packet(0, 0, &forged), PacketDisposition::Rejected);
        // The puzzle filtered it: no expensive verification ran.
        assert_eq!(rx.cost().signature_verifications, 0);
        assert_eq!(rx.cost().puzzle_checks, 1);
    }

    #[test]
    fn tampered_page_packet_rejected() {
        let (mut base, mut rx, _) = setup();
        // Complete items 0 and 1 honestly.
        for item in 0..2u16 {
            for idx in rx.wanted(item).iter_ones().collect::<Vec<_>>() {
                let p = base.packet_payload(item, idx as u16).unwrap();
                rx.handle_packet(item, idx as u16, &p);
            }
        }
        assert_eq!(rx.complete_items(), 2);
        let mut p = base.packet_payload(2, 0).unwrap();
        p[0] ^= 0xFF;
        assert_eq!(rx.handle_packet(2, 0, &p), PacketDisposition::Rejected);
        // The genuine packet still goes through.
        let good = base.packet_payload(2, 0).unwrap();
        assert_eq!(rx.handle_packet(2, 0, &good), PacketDisposition::Accepted);
    }

    #[test]
    fn tampered_hash_page_packet_rejected() {
        let (mut base, mut rx, _) = setup();
        let sig = base.packet_payload(0, 0).unwrap();
        assert_eq!(rx.handle_packet(0, 0, &sig), PacketDisposition::Accepted);
        let mut p = base.packet_payload(1, 2).unwrap();
        let len = p.len();
        p[len - 1] ^= 0x01; // corrupt a Merkle sibling
        assert_eq!(rx.handle_packet(1, 2, &p), PacketDisposition::Rejected);
    }

    #[test]
    fn wrong_position_packet_rejected() {
        let (mut base, mut rx, _) = setup();
        for item in 0..2u16 {
            for idx in rx.wanted(item).iter_ones().collect::<Vec<_>>() {
                let p = base.packet_payload(item, idx as u16).unwrap();
                rx.handle_packet(item, idx as u16, &p);
            }
        }
        // Packet 1's payload presented as packet 0: hash mismatch.
        let p1 = base.packet_payload(2, 1).unwrap();
        assert_eq!(rx.handle_packet(2, 0, &p1), PacketDisposition::Rejected);
    }

    #[test]
    fn duplicates_detected() {
        let (mut base, mut rx, _) = setup();
        let sig = base.packet_payload(0, 0).unwrap();
        assert_eq!(rx.handle_packet(0, 0, &sig), PacketDisposition::Accepted);
        // item 0 is complete; engine would not feed it again, but the
        // hash-page path also reports duplicates:
        let hp = base.packet_payload(1, 1).unwrap();
        assert_eq!(rx.handle_packet(1, 1, &hp), PacketDisposition::Accepted);
        assert_eq!(rx.handle_packet(1, 1, &hp), PacketDisposition::Duplicate);
    }

    fn setup_with_artifacts() -> (SelugeScheme, SelugeScheme, Vec<u8>, SelugeArtifacts) {
        let params = SelugeParams {
            version: 1,
            image_len: 500,
            packets_per_page: 4,
            slice_len: 32,
            hash_page_chunks: 4,
            puzzle_strength: 4,
        };
        let image: Vec<u8> = (0..500u32).map(|i| (i % 249) as u8).collect();
        let kp = Keypair::from_seed(b"bs");
        let chain = PuzzleKeyChain::generate(b"puzzles", 4);
        let art = SelugeArtifacts::build(&image, params, &kp, &chain);
        let puzzle = Puzzle::new(chain.anchor(), params.puzzle_strength);
        let base = SelugeScheme::base(&art, kp.public(), puzzle);
        let rx = SelugeScheme::receiver(params, kp.public(), puzzle);
        (base, rx, image, art)
    }

    fn advance_to(base: &mut SelugeScheme, rx: &mut SelugeScheme, level: u16) {
        while rx.complete_items() < level {
            let item = rx.complete_items();
            for idx in rx.wanted(item).iter_ones().collect::<Vec<_>>() {
                let p = base.packet_payload(item, idx as u16).unwrap();
                rx.handle_packet(item, idx as u16, &p);
            }
        }
    }

    #[test]
    fn reboot_mid_page_keeps_flash_and_drops_ram() {
        let (mut base, mut rx, image, art) = setup_with_artifacts();
        advance_to(&mut base, &mut rx, 3); // signature + M0 + one page
        for idx in 0..2u16 {
            let p = base.packet_payload(3, idx).unwrap();
            rx.handle_packet(3, idx, &p);
        }
        rx.reboot();
        assert_eq!(rx.complete_items(), 3, "flash items survive");
        assert_eq!(
            rx.wanted(3).count_ones() as u16,
            rx.params().packets_per_page,
            "partial page is RAM"
        );
        rx.verify_invariants(&art, &image).unwrap();
        let total = rx.num_items();
        advance_to(&mut base, &mut rx, total);
        assert_eq!(rx.image().unwrap(), image);
        rx.verify_invariants(&art, &image).unwrap();
    }

    #[test]
    fn reboot_during_m0_drops_the_partial_hash_page() {
        let (mut base, mut rx, image, art) = setup_with_artifacts();
        advance_to(&mut base, &mut rx, 1);
        let p = base.packet_payload(1, 0).unwrap();
        rx.handle_packet(1, 0, &p);
        rx.reboot();
        assert_eq!(rx.complete_items(), 1, "verified signature is flash");
        assert_eq!(
            rx.wanted(1).count_ones() as u16,
            rx.params().hash_page_chunks,
            "partial M0 is RAM until fully assembled"
        );
        rx.verify_invariants(&art, &image).unwrap();
        let total = rx.num_items();
        advance_to(&mut base, &mut rx, total);
        assert_eq!(rx.image().unwrap(), image);
    }

    #[test]
    fn reboot_of_a_base_station_keeps_it_serving() {
        let (mut base, _, image, art) = setup_with_artifacts();
        base.reboot();
        assert_eq!(base.complete_items(), base.num_items());
        base.verify_invariants(&art, &image).unwrap();
        assert!(base.packet_payload(0, 0).is_some());
        assert!(base.packet_payload(1, 0).is_some());
        assert!(base.packet_payload(2, 3).is_some());
    }

    #[test]
    fn invariants_catch_a_corrupted_buffer() {
        let (mut base, mut rx, image, art) = setup_with_artifacts();
        advance_to(&mut base, &mut rx, 2);
        let p = base.packet_payload(2, 0).unwrap();
        rx.handle_packet(2, 0, &p);
        rx.verify_invariants(&art, &image).unwrap();
        rx.current[0].as_mut().unwrap()[3] ^= 1;
        assert!(rx.verify_invariants(&art, &image).is_err());
    }

    #[test]
    fn base_reports_complete_and_serves() {
        let (mut base, _, image) = setup();
        assert_eq!(base.complete_items(), base.num_items());
        assert_eq!(base.image().unwrap(), image);
        assert!(base.packet_payload(0, 0).is_some());
        assert!(base.packet_payload(2, 3).is_some());
        assert!(base.packet_payload(99, 0).is_none());
    }
}

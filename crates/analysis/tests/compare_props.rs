//! Property suite for the comparison statistics: every piece of
//! `lrs_analysis::compare` is pinned against an *exact, independently
//! computed* reference — numeric integration for the special functions,
//! closed-form t CDFs at df ∈ {1, 2}, two-pass batch moments for the
//! streaming summaries, and a brute-force O(m²) Benjamini–Hochberg —
//! in the same streaming-vs-exact style `streaming_props.rs` uses for
//! the campaign estimators.

use lrs_analysis::compare::{ln_gamma, reg_inc_beta};
use lrs_analysis::{
    benjamini_hochberg, bh_adjusted_p, ci95_overlap, cohens_d, student_t_two_sided_p, welch_t,
    SampleStats, Welford,
};
use lrs_rng::DetRng;

/// Exact batch mean/variance (two-pass, n − 1 denominator).
fn batch_stats(samples: &[f64]) -> SampleStats {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() < 2 {
        0.0
    } else {
        samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
    };
    SampleStats {
        n: samples.len() as u64,
        mean,
        var,
    }
}

fn welford_stats(samples: &[f64]) -> SampleStats {
    let mut w = Welford::new();
    for &x in samples {
        w.push(x);
    }
    w.sample_stats()
}

/// Simpson's rule over [0, x] of the beta density — an exact-reference
/// (to integration tolerance) regularized incomplete beta.
fn inc_beta_by_integration(a: f64, b: f64, x: f64) -> f64 {
    let ln_norm = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    // a, b >= 1 keeps the density finite at both endpoints (powf, not
    // ln, so t = 0 and t = 1 evaluate exactly).
    let f = |t: f64| ln_norm.exp() * t.powf(a - 1.0) * (1.0 - t).powf(b - 1.0);
    let n = 20_000;
    let h = x / n as f64;
    let mut acc = f(0.0) + f(x);
    for i in 1..n {
        let t = i as f64 * h;
        acc += f(t) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

#[test]
fn incomplete_beta_matches_numeric_integration() {
    for &(a, b) in &[(1.0, 3.0), (1.5, 2.5), (2.5, 1.0), (4.0, 4.0), (10.0, 1.5)] {
        for i in 1..10 {
            let x = i as f64 / 10.0;
            let exact = inc_beta_by_integration(a, b, x);
            let got = reg_inc_beta(a, b, x);
            assert!(
                (got - exact).abs() < 1e-6,
                "I_{x}({a},{b}): got {got}, integration {exact}"
            );
        }
    }
}

#[test]
fn t_pvalue_matches_closed_forms_at_df_1_and_2() {
    // df = 1 (Cauchy): P(|T| >= t) = 1 - (2/π)·atan(t).
    // df = 2:          P(|T| >= t) = 1 - t/√(2 + t²).
    for i in 0..=60 {
        let t = i as f64 / 4.0;
        let cauchy = 1.0 - 2.0 / std::f64::consts::PI * t.atan();
        let got1 = student_t_two_sided_p(t, 1.0);
        assert!(
            (got1 - cauchy).abs() < 1e-12,
            "df=1 t={t}: {got1} vs {cauchy}"
        );
        let df2 = 1.0 - t / (2.0 + t * t).sqrt();
        let got2 = student_t_two_sided_p(t, 2.0);
        assert!((got2 - df2).abs() < 1e-12, "df=2 t={t}: {got2} vs {df2}");
    }
}

#[test]
fn welch_on_streaming_stats_equals_welch_on_exact_batch() {
    let mut rng = DetRng::seed_from_u64(0xC0DE_D1FF);
    for case in 0..200 {
        let na = 2 + (rng.gen_range(0u64..29)) as usize;
        let nb = 2 + (rng.gen_range(0u64..29)) as usize;
        let shift = (case % 5) as f64 * 0.7;
        let scale = 1.0 + (case % 3) as f64;
        let a: Vec<f64> = (0..na)
            .map(|_| rng.gen_range(0u64..1_000_000) as f64 / 1e6)
            .collect();
        let b: Vec<f64> = (0..nb)
            .map(|_| shift + scale * rng.gen_range(0u64..1_000_000) as f64 / 1e6)
            .collect();
        let (sa, sb) = (welford_stats(&a), welford_stats(&b));
        let (ea, eb) = (batch_stats(&a), batch_stats(&b));
        // Streaming moments agree with the exact two-pass batch.
        assert!((sa.mean - ea.mean).abs() < 1e-12, "mean case {case}");
        assert!((sa.var - ea.var).abs() < 1e-10, "var case {case}");
        // And the tests built on them agree to float noise.
        let (ws, we) = (welch_t(sa, sb).unwrap(), welch_t(ea, eb).unwrap());
        assert!((ws.t - we.t).abs() < 1e-8, "t case {case}");
        assert!((ws.df - we.df).abs() < 1e-8, "df case {case}");
        assert!((ws.p - we.p).abs() < 1e-10, "p case {case}");
        let (ds, de) = (cohens_d(sa, sb).unwrap(), cohens_d(ea, eb).unwrap());
        assert!((ds - de).abs() < 1e-9, "d case {case}");
    }
}

#[test]
fn welch_detects_known_shift_and_spares_the_null() {
    // Two seeded uniform families: identical distribution vs a 5-sigma
    // shift. The null comparison must be insignificant, the shifted one
    // overwhelming — the campdiff verdicts rest on exactly this.
    let mut rng = DetRng::seed_from_u64(7);
    let draw = |rng: &mut DetRng, shift: f64| -> Vec<f64> {
        (0..40)
            .map(|_| shift + rng.gen_range(0u64..1000) as f64 / 1000.0)
            .collect()
    };
    let base = welford_stats(&draw(&mut rng, 0.0));
    let same = welford_stats(&draw(&mut rng, 0.0));
    let moved = welford_stats(&draw(&mut rng, 1.5));
    let null = welch_t(base, same).unwrap();
    let shifted = welch_t(base, moved).unwrap();
    assert!(null.p > 0.05, "null p = {}", null.p);
    assert!(shifted.p < 1e-9, "shifted p = {}", shifted.p);
    assert!(ci95_overlap(base, same));
    assert!(!ci95_overlap(base, moved));
    assert!(cohens_d(base, moved).unwrap().abs() > 2.0);
}

#[test]
fn from_ci95_inverts_rendered_summaries() {
    let mut rng = DetRng::seed_from_u64(99);
    for n in 2..40 {
        let samples: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(0u64..10_000) as f64 / 100.0)
            .collect();
        let s = welford_stats(&samples);
        let rebuilt = SampleStats::from_ci95(s.n, s.mean, s.ci95());
        assert!(
            (rebuilt.var - s.var).abs() <= 1e-10 * s.var.max(1.0),
            "n={n}: {} vs {}",
            rebuilt.var,
            s.var
        );
        assert!((rebuilt.ci95() - s.ci95()).abs() < 1e-12);
    }
}

/// Brute-force BH reference: for each i, rejected iff there exists a
/// rank k with p_i ≤ p_(k) and p_(k) ≤ α·k/m.
fn bh_reference(p: &[f64], alpha: f64) -> Vec<bool> {
    let finite: Vec<f64> = p.iter().copied().filter(|x| x.is_finite()).collect();
    let m = finite.len() as f64;
    let mut sorted = finite.clone();
    sorted.sort_by(f64::total_cmp);
    let mut threshold = -1.0;
    for (idx, &pk) in sorted.iter().enumerate() {
        if pk <= alpha * (idx + 1) as f64 / m {
            threshold = pk;
        }
    }
    p.iter()
        .map(|&pi| pi.is_finite() && pi <= threshold)
        .collect()
}

#[test]
fn bh_matches_brute_force_on_random_vectors() {
    let mut rng = DetRng::seed_from_u64(1234);
    for case in 0..300 {
        let m = 1 + (rng.gen_range(0u64..40)) as usize;
        let p: Vec<f64> = (0..m)
            .map(|_| {
                // Mix tiny and large p-values so some cases reject.
                let u = rng.gen_range(0u64..1_000_000) as f64 / 1e6;
                if rng.gen_range(0u64..4) == 0 {
                    u / 1000.0
                } else {
                    u
                }
            })
            .collect();
        for &alpha in &[0.01, 0.05, 0.2] {
            let got = benjamini_hochberg(&p, alpha);
            let want = bh_reference(&p, alpha);
            assert_eq!(got, want, "case {case} alpha {alpha} p {p:?}");
            // Adjusted p-values encode the same verdicts.
            let q = bh_adjusted_p(&p);
            for i in 0..m {
                assert_eq!(
                    q[i] <= alpha,
                    got[i],
                    "q/verdict mismatch case {case} i {i} (q={}, alpha={alpha})",
                    q[i]
                );
            }
        }
    }
}

#[test]
fn bh_q_values_are_monotone_in_p() {
    let mut rng = DetRng::seed_from_u64(5);
    for _ in 0..50 {
        let p: Vec<f64> = (0..20)
            .map(|_| rng.gen_range(0u64..1_000_000) as f64 / 1e6)
            .collect();
        let q = bh_adjusted_p(&p);
        let mut pairs: Vec<(f64, f64)> = p.iter().copied().zip(q.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-15, "q monotone in p");
        }
        for (&pi, &qi) in p.iter().zip(&q) {
            assert!(qi >= pi - 1e-15 && qi <= 1.0);
        }
    }
}

//! Property tests for the streaming estimators: online mean / variance
//! / quantiles versus exact batch computation over random run-metric
//! sequences, within documented tolerance.
//!
//! The workspace resolves dependencies offline (no proptest crate), so
//! this is the repo's hand-rolled property idiom: a seeded [`DetRng`]
//! drives many randomized cases per property, making every "random"
//! failure a fixed-seed reproducer. The generators mimic real campaign
//! metric streams — latencies (skewed positive), packet counts
//! (integer-valued, clustered), completion fractions (point masses at
//! 0/1), and mixtures — rather than adversarial point-mass pathologies
//! P² makes no claims about.

use lrs_analysis::streaming::{Extrema, P2Quantile, StreamingSummary, Welford, P2_RANK_TOLERANCE};
use lrs_rng::DetRng;

/// One random run-metric sequence, shaped like a campaign cell's
/// per-seed samples for one metric.
fn metric_sequence(rng: &mut DetRng, len: usize) -> Vec<f64> {
    let family = rng.gen_range(0u32..5);
    let scale = 10f64.powi(rng.gen_range(0u32..7) as i32 - 2);
    let offset = if rng.gen_bool(0.5) { 0.0 } else { scale * 3.0 };
    (0..len)
        .map(|_| {
            let u: f64 = rng.gen();
            let x = match family {
                // Uniform: e.g. jittered latency.
                0 => u,
                // Exponential-ish right skew: completion latencies.
                1 => -(1.0 - u).ln(),
                // Integer-valued: packet counts.
                2 => (u * 500.0).floor(),
                // Bimodal mixture: two latency regimes.
                3 => {
                    if rng.gen_bool(0.3) {
                        u * 0.2
                    } else {
                        0.8 + u * 0.2
                    }
                }
                // Mostly-constant with occasional outliers: retry counts.
                _ => {
                    if rng.gen_bool(0.9) {
                        1.0
                    } else {
                        1.0 + u * 50.0
                    }
                }
            };
            offset + scale * x
        })
        .collect()
}

fn batch_mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn batch_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = batch_mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Relative error with an absolute floor, so near-zero exact values do
/// not blow up the ratio.
fn rel_err(got: f64, want: f64, floor: f64) -> f64 {
    (got - want).abs() / want.abs().max(floor)
}

/// Online mean and variance agree with the exact batch computation to
/// floating-point accuracy, across scales and distribution shapes.
#[test]
fn welford_matches_batch_mean_and_variance() {
    let mut rng = DetRng::seed_from_u64(0x57E1_F04D);
    for case in 0..200 {
        let len = rng.gen_range(1usize..2_000);
        let xs = metric_sequence(&mut rng, len);
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), xs.len() as u64);
        assert!(
            rel_err(w.mean(), batch_mean(&xs), 1e-12) < 1e-9,
            "case {case}: mean {} vs batch {}",
            w.mean(),
            batch_mean(&xs)
        );
        assert!(
            rel_err(w.variance(), batch_variance(&xs), 1e-12) < 1e-7,
            "case {case}: variance {} vs batch {}",
            w.variance(),
            batch_variance(&xs)
        );
    }
}

/// Welford is insensitive to the order samples arrive in, up to
/// floating-point rounding — the property that makes "apply in
/// canonical job order" a sufficient (not necessary) condition for
/// reproducible campaign means.
#[test]
fn welford_is_order_insensitive_within_tolerance() {
    let mut rng = DetRng::seed_from_u64(0x04D3_4145);
    for _ in 0..50 {
        let len = rng.gen_range(2usize..500);
        let xs = metric_sequence(&mut rng, len);
        let mut fwd = Welford::new();
        let mut rev = Welford::new();
        for &x in &xs {
            fwd.push(x);
        }
        for &x in xs.iter().rev() {
            rev.push(x);
        }
        assert!(rel_err(fwd.mean(), rev.mean(), 1e-12) < 1e-9);
        assert!(rel_err(fwd.variance(), rev.variance(), 1e-12) < 1e-6);
    }
}

/// Exact batch quantile by linear interpolation (numpy type 7), the
/// reference the P² estimate is held against.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
}

/// Rank of value `v` in the sorted batch, as a fraction in [0, 1]:
/// the midpoint of the "strictly below" and "at or below" fractions,
/// so ties are credited fairly.
fn rank_of(sorted: &[f64], v: f64) -> f64 {
    let below = sorted.iter().filter(|&&x| x < v).count() as f64;
    let at_or_below = sorted.iter().filter(|&&x| x <= v).count() as f64;
    (below + at_or_below) / 2.0 / sorted.len() as f64
}

/// The P² estimate stays within the documented tolerance of the exact
/// batch quantile, under the standard hybrid criterion for quantile
/// sketches: either its *rank* in the sorted batch is within
/// `P2_RANK_TOLERANCE` of the target quantile, or its *value* is within
/// 0.1 % of the observed data range of the exact quantile. Both sides
/// are needed: value error is unbounded where the density near the
/// quantile is low (rank is the honest yardstick there), while on
/// point-mass streams an estimate epsilon above a mass holding 90 % of
/// the samples has a wildly wrong rank and a negligible value error
/// (value is the honest yardstick there).
#[test]
fn p2_error_is_bounded_in_rank_or_value() {
    let mut rng = DetRng::seed_from_u64(0xA9_5EED);
    for &q in &[0.5, 0.95] {
        for case in 0..150 {
            let len = rng.gen_range(5usize..3_000);
            let xs = metric_sequence(&mut rng, len);
            let mut p = P2Quantile::new(q);
            for &x in &xs {
                p.push(x);
            }
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            let est = p.estimate();
            let rank = rank_of(&sorted, est);
            // Absolute slack of 1.5 sample ranks covers tiny n, where a
            // single observation moves the rank by 1/n.
            let tol = P2_RANK_TOLERANCE + 1.5 / len as f64;
            let range = sorted[sorted.len() - 1] - sorted[0];
            let value_err = (est - exact_quantile(&sorted, q)).abs() / range.max(1e-12);
            assert!(
                (rank - q).abs() <= tol || value_err <= 1e-3,
                "q={q} case {case} (n={len}): estimate {est} has rank {rank} \
                 (target {q} ± {tol}) and value error {value_err}"
            );
        }
    }
}

/// Below five samples the P² estimate is *exactly* the interpolated
/// batch quantile, for arbitrary values and both tracked quantiles.
#[test]
fn p2_is_exact_up_to_five_samples() {
    let mut rng = DetRng::seed_from_u64(0xF1_4E55);
    for &q in &[0.5, 0.95] {
        for _ in 0..200 {
            let len = rng.gen_range(1usize..5);
            let xs = metric_sequence(&mut rng, len);
            let mut p = P2Quantile::new(q);
            for &x in &xs {
                p.push(x);
            }
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            assert_eq!(p.estimate(), exact_quantile(&sorted, q));
        }
    }
}

/// Monotone safety: the estimate always lies within the observed range.
#[test]
fn p2_estimate_stays_within_observed_range() {
    let mut rng = DetRng::seed_from_u64(0xB0_0B5);
    for _ in 0..100 {
        let len = rng.gen_range(1usize..500);
        let xs = metric_sequence(&mut rng, len);
        let mut p = P2Quantile::new(0.95);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &xs {
            p.push(x);
            lo = lo.min(x);
            hi = hi.max(x);
            let est = p.estimate();
            assert!(
                est >= lo && est <= hi,
                "estimate {est} outside [{lo}, {hi}]"
            );
        }
    }
}

/// Streaming extrema agree *bit-for-bit* with the batch min/max over
/// the finite samples, in any arrival order — unlike P², exactness
/// rather than tolerance is the contract.
#[test]
fn extrema_match_batch_exactly_in_any_order() {
    let mut rng = DetRng::seed_from_u64(0xE1_72E4A);
    for case in 0..200 {
        let len = rng.gen_range(1usize..1_000);
        let mut xs = metric_sequence(&mut rng, len);
        for x in xs.iter_mut() {
            if rng.gen_bool(0.1) {
                *x = f64::NAN;
            }
        }
        let mut fwd = Extrema::new();
        let mut rev = Extrema::new();
        for &x in &xs {
            fwd.push(x);
        }
        for &x in xs.iter().rev() {
            rev.push(x);
        }
        assert_eq!(fwd, rev, "case {case}: order changed the extrema");
        let finite: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
        assert_eq!(fwd.count(), finite.len() as u64);
        assert_eq!(fwd.skipped(), (xs.len() - finite.len()) as u64);
        if finite.is_empty() {
            assert!(fwd.min().is_nan() && fwd.max().is_nan());
        } else {
            let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(fwd.min().to_bits(), lo.to_bits(), "case {case}");
            assert_eq!(fwd.max().to_bits(), hi.to_bits(), "case {case}");
        }
    }
}

/// The bundled summary's estimators see exactly the same stream: its
/// counts agree and NaN samples (stalled-run latency) are excluded
/// everywhere without poisoning any estimator.
#[test]
fn summary_is_nan_safe_and_consistent() {
    let mut rng = DetRng::seed_from_u64(0xDEAD_F00D);
    for _ in 0..50 {
        let len = rng.gen_range(1usize..300);
        let mut xs = metric_sequence(&mut rng, len);
        // Sprinkle stalled-run NaNs.
        for x in xs.iter_mut() {
            if rng.gen_bool(0.2) {
                *x = f64::NAN;
            }
        }
        let mut s = StreamingSummary::new();
        for &x in &xs {
            s.push(x);
        }
        let finite: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
        assert_eq!(s.count(), finite.len() as u64);
        assert_eq!(s.p50.count(), finite.len() as u64);
        assert_eq!(s.p95.count(), finite.len() as u64);
        if finite.is_empty() {
            assert!(s.moments.mean().is_nan());
            assert!(s.p50.estimate().is_nan());
        } else {
            assert!(s.moments.mean().is_finite());
            assert!(s.p50.estimate().is_finite());
            assert!(s.p95.estimate().is_finite());
        }
    }
}

//! Expected data-packet transmissions for Seluge (Theorem-1-style).
//!
//! Under ARQ broadcast, packet `j` of a page must be received by all `N`
//! receivers; with i.i.d. loss probability `p` the number of
//! transmissions of one packet is the maximum of `N` geometric random
//! variables, so
//!
//! ```text
//! E[T_page] = k · Σ_{t ≥ 0} ( 1 − Π_i (1 − p_i^t) )
//! ```
//!
//! (the `t = 0` term is 1 and accounts for the mandatory first
//! transmission). This models the data traffic; SNACK/advertisement
//! overhead is evaluated by simulation (§VI).

/// Expected data-packet transmissions to deliver one `k`-packet page to
/// `N` receivers with uniform loss probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1)`.
pub fn seluge_expected_data_packets(k: usize, n_receivers: usize, p: f64) -> f64 {
    seluge_expected_heterogeneous(k, &vec![p; n_receivers])
}

/// Heterogeneous-loss generalization: receiver `i` loses each packet
/// independently with probability `loss[i]`.
///
/// # Panics
///
/// Panics if any probability is outside `[0, 1)`.
pub fn seluge_expected_heterogeneous(k: usize, loss: &[f64]) -> f64 {
    assert!(
        loss.iter().all(|p| (0.0..1.0).contains(p)),
        "loss probabilities must be in [0, 1)"
    );
    if loss.is_empty() {
        return k as f64;
    }
    let mut sum = 0.0f64;
    let mut t = 0u32;
    loop {
        // P[max_i Geom_i > t] = 1 - prod_i (1 - p_i^t).
        let term = 1.0 - loss.iter().map(|p| 1.0 - p.powi(t as i32)).product::<f64>();
        sum += term;
        t += 1;
        if term < 1e-12 || t > 10_000 {
            break;
        }
    }
    k as f64 * sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrs_rng::DetRng;

    #[test]
    fn lossless_is_exactly_k() {
        assert!((seluge_expected_data_packets(32, 20, 0.0) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn single_receiver_is_geometric_mean() {
        // E[Geom(1-p)] = 1/(1-p) per packet.
        let p = 0.3;
        let e = seluge_expected_data_packets(1, 1, p);
        assert!((e - 1.0 / (1.0 - p)).abs() < 1e-9, "{e}");
    }

    #[test]
    fn monotone_in_p_and_n() {
        let base = seluge_expected_data_packets(32, 10, 0.1);
        assert!(seluge_expected_data_packets(32, 10, 0.3) > base);
        assert!(seluge_expected_data_packets(32, 30, 0.1) > base);
        assert!(seluge_expected_data_packets(64, 10, 0.1) > base);
    }

    #[test]
    fn matches_monte_carlo() {
        let (k, n_rx, p) = (8usize, 5usize, 0.25f64);
        let analytical = seluge_expected_data_packets(k, n_rx, p);
        let mut rng = DetRng::seed_from_u64(1);
        let trials = 20_000;
        let mut total = 0u64;
        for _ in 0..trials {
            for _ in 0..k {
                // Transmissions until all receivers got this packet.
                let mut missing = n_rx;
                while missing > 0 {
                    total += 1;
                    let mut still = 0;
                    for _ in 0..missing {
                        if rng.gen_bool(p) {
                            still += 1;
                        }
                    }
                    missing = still;
                }
            }
        }
        let mc = total as f64 / trials as f64;
        assert!(
            (mc - analytical).abs() / analytical < 0.02,
            "MC {mc} vs analytical {analytical}"
        );
    }

    #[test]
    fn heterogeneous_reduces_to_uniform() {
        let a = seluge_expected_data_packets(16, 4, 0.2);
        let b = seluge_expected_heterogeneous(16, &[0.2; 4]);
        assert!((a - b).abs() < 1e-12);
        // A single terrible receiver dominates.
        let c = seluge_expected_heterogeneous(16, &[0.01, 0.01, 0.6]);
        let d = seluge_expected_heterogeneous(16, &[0.6]);
        assert!(c >= d);
    }
}

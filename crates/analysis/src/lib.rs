//! §V performance analysis: expected data-packet transmissions in the
//! one-hop broadcast model.
//!
//! The paper analyses a single sender with `N` receivers where each
//! packet is lost independently at receiver `i` with probability `p_i`
//! (the model of Nonnenmacher & Biersack the paper adopts), and derives
//! the expected number of data-packet transmissions for
//!
//! * **Seluge** — ARQ: every one of the `k` page packets must reach every
//!   receiver, so each packet is retransmitted until the slowest
//!   receiver has it ([`seluge_expected_data_packets`]); and
//! * **ACK-based LR-Seluge** — an idealized round-based variant that
//!   upper-bounds real LR-Seluge: the sender first transmits all `n`
//!   encoded packets, then in each subsequent round transmits exactly
//!   `max_i d_i` useful packets, where `d_i` is receiver `i`'s remaining
//!   deficit toward `k'` ([`ack_lr_expected_data_packets`], exact for
//!   `N = 1` via [`ack_lr_exact_single`], Monte-Carlo evaluated for
//!   `N > 1`).
//!
//! The characteristic step the paper highlights — "a significant
//! increase … when the packet loss rate increases from 0.3 to 0.4" —
//! falls out of the round structure: with `n = 1.5k` one round suffices
//! w.h.p. while `n(1−p) ≥ k'`, i.e. up to `p = 1/3`.

pub mod binomial;
pub mod compare;
pub mod lr;
pub mod seluge;
pub mod streaming;

pub use binomial::binomial_pmf;
pub use compare::{
    benjamini_hochberg, bh_adjusted_p, ci95_overlap, cohens_d, student_t_cdf,
    student_t_two_sided_p, welch_t, SampleStats, WelchTest,
};
pub use lr::{ack_lr_exact_single, ack_lr_expected_data_packets, AckLrModel};
pub use seluge::{seluge_expected_data_packets, seluge_expected_heterogeneous};
pub use streaming::{Extrema, P2Quantile, StreamingSummary, Welford};

//! Binomial distribution helpers used by the analytical models.

/// `P[Binomial(n, q) = x]`, computed with a numerically stable
/// multiplicative recurrence (adequate for the `n ≤ 255` packet counts of
/// the protocol).
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn binomial_pmf(n: usize, q: f64, x: usize) -> f64 {
    assert!((0.0..=1.0).contains(&q), "probability out of range");
    if x > n {
        return 0.0;
    }
    if q == 0.0 {
        return if x == 0 { 1.0 } else { 0.0 };
    }
    if q == 1.0 {
        return if x == n { 1.0 } else { 0.0 };
    }
    // Work in log space to avoid under/overflow for large n.
    let mut log_p = 0.0f64;
    for i in 0..x {
        log_p += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    log_p += x as f64 * q.ln() + (n - x) as f64 * (1.0 - q).ln();
    log_p.exp()
}

/// The full pmf vector `P[Binomial(n, q) = 0..=n]`.
pub fn binomial_pmf_vec(n: usize, q: f64) -> Vec<f64> {
    (0..=n).map(|x| binomial_pmf(n, q, x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for n in [1usize, 5, 32, 255] {
            for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
                let total: f64 = binomial_pmf_vec(n, q).iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "n={n} q={q} sum={total}");
            }
        }
    }

    #[test]
    fn known_values() {
        // Bin(2, 0.5): 0.25, 0.5, 0.25.
        assert!((binomial_pmf(2, 0.5, 0) - 0.25).abs() < 1e-12);
        assert!((binomial_pmf(2, 0.5, 1) - 0.5).abs() < 1e-12);
        assert!((binomial_pmf(2, 0.5, 2) - 0.25).abs() < 1e-12);
        assert_eq!(binomial_pmf(2, 0.5, 3), 0.0);
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(binomial_pmf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(10, 0.0, 1), 0.0);
        assert_eq!(binomial_pmf(10, 1.0, 10), 1.0);
        assert_eq!(binomial_pmf(10, 1.0, 9), 0.0);
    }

    #[test]
    fn mean_matches() {
        let n = 48;
        let q = 0.7;
        let mean: f64 = binomial_pmf_vec(n, q)
            .iter()
            .enumerate()
            .map(|(x, p)| x as f64 * p)
            .sum();
        assert!((mean - n as f64 * q).abs() < 1e-9);
    }
}

//! Streaming (single-pass, constant-memory) statistics for
//! Monte-Carlo campaigns.
//!
//! A campaign over a parameter grid runs `cells × seeds` simulations;
//! buffering every per-seed sample to compute cell statistics at the
//! end costs O(runs) memory, which caps how many deployments a fleet
//! can aggregate. This module provides the O(1)-per-cell estimators the
//! campaign engine folds each finished run into instead:
//!
//! * [`Welford`] — online mean and variance (Welford 1962). Exact up to
//!   floating-point rounding and numerically better conditioned than
//!   the naive sum-of-squares formula.
//! * [`P2Quantile`] — the P² quantile estimator (Jain & Chlamtac 1985):
//!   five markers track one quantile of an unbounded stream. Exact
//!   (linear interpolation over the sorted observations) up to five
//!   samples, approximate beyond.
//! * [`StreamingSummary`] — the bundle a campaign keeps per (cell ×
//!   metric): mean, variance, 95 % CI, p50, and p95.
//!
//! Every estimator is a pure fold over `f64` in insertion order —
//! feeding the same samples in the same order reproduces bit-identical
//! state, which is what lets the campaign engine promise bit-identical
//! reports across thread counts and across crash/resume (it applies
//! results in canonical job order regardless of completion order).
//!
//! Non-finite samples (a stalled run reports `NaN` latency) are counted
//! but excluded from the statistics, mirroring the batch
//! `summarize` policy of the bench crate.

/// Two-sided 95 % Student t critical values by degrees of freedom
/// (1..=30); beyond 30 the normal value 1.96 is close enough.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// t critical value for `df` degrees of freedom at 95 % confidence
/// (`NaN` for `df == 0`).
pub fn t95(df: usize) -> f64 {
    if df == 0 {
        f64::NAN
    } else if df <= T95.len() {
        T95[df - 1]
    } else {
        1.96
    }
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// State is three words; `push` is a deterministic fold, so two
/// accumulators fed the same sequence hold bit-identical state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Welford {
    n: u64,
    skipped: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one sample in. Non-finite samples are counted in
    /// [`skipped`](Self::skipped) and otherwise ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.skipped += 1;
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of finite samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of non-finite samples skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance with the n − 1 denominator (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation (0 for n < 2).
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 95 % confidence interval for the mean
    /// (`t · sd / √n`; 0 for n < 2).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            t95(self.n as usize - 1) * self.sd() / (self.n as f64).sqrt()
        }
    }
}

/// P² single-quantile estimator: five markers, O(1) memory, one pass.
///
/// Markers sit at the stream minimum, the q/2, q, and (1+q)/2
/// quantiles, and the maximum; each new sample shifts marker positions
/// toward their desired ranks with a piecewise-parabolic height
/// adjustment. Up to five samples the estimate is exact (linear
/// interpolation over the sorted buffer, the `numpy` type-7
/// convention); beyond that it is approximate — the streaming-vs-batch
/// property suite pins the rank error within
/// [`P2_RANK_TOLERANCE`](crate::streaming::P2_RANK_TOLERANCE) on random
/// well-behaved streams.
#[derive(Clone, Debug, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Finite samples seen. Below 5, `heights[..n]` is a sorted buffer.
    n: u64,
    skipped: u64,
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks; integers stored in f64).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
}

/// Documented rank tolerance of the P² estimator on the random streams
/// the property suite generates: the estimate's rank in the sorted
/// batch stays within `±P2_RANK_TOLERANCE · n` of the target rank.
pub const P2_RANK_TOLERANCE: f64 = 0.12;

impl P2Quantile {
    /// An estimator for quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile {q} out of (0, 1)");
        P2Quantile {
            q,
            n: 0,
            skipped: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [0.0; 5],
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of finite samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of non-finite samples skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Folds one sample in. Non-finite samples are counted and ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.skipped += 1;
            return;
        }
        if self.n < 5 {
            // Initialization phase: keep a sorted buffer of the first
            // five observations, which become the marker heights.
            let mut i = self.n as usize;
            self.heights[i] = x;
            while i > 0 && self.heights[i - 1] > self.heights[i] {
                self.heights.swap(i - 1, i);
                i -= 1;
            }
            self.n += 1;
            if self.n == 5 {
                let q = self.q;
                self.desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0];
            }
            return;
        }
        self.n += 1;
        // Locate the cell and clamp the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            (1..4).find(|&i| x < self.heights[i]).unwrap_or(4) - 1
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        let q = self.q;
        let increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0];
        for (desired, inc) in self.desired.iter_mut().zip(increments) {
            *desired += inc;
        }
        // Nudge the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let h = &self.heights;
        let p = &self.positions;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate of the tracked quantile (`NaN` when empty).
    pub fn estimate(&self) -> f64 {
        let n = self.n as usize;
        if n == 0 {
            return f64::NAN;
        }
        if n < 5 {
            // Exact: linear interpolation at rank q·(n−1) over the
            // sorted buffer (numpy type-7 convention).
            let sorted = &self.heights[..n];
            let pos = self.q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
        }
        self.heights[2]
    }
}

/// Streaming min/max tracker with the same NaN-skipping policy as
/// [`Welford`]. Unlike P², the extrema of a stream are exact and
/// order-independent, so this fold agrees bit-for-bit with a batch
/// `min`/`max` over the finite samples in any order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Extrema {
    n: u64,
    skipped: u64,
    min: f64,
    max: f64,
}

impl Extrema {
    /// An empty tracker.
    pub fn new() -> Self {
        Extrema::default()
    }

    /// Folds one sample in. Non-finite samples are counted in
    /// [`skipped`](Self::skipped) and otherwise ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.skipped += 1;
            return;
        }
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
    }

    /// Number of finite samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of non-finite samples skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Smallest finite sample (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest finite sample (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// The per-(cell × metric) streaming state a campaign keeps: mean,
/// variance, 95 % CI, median, 95th percentile, and exact extrema, in
/// O(1) memory.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamingSummary {
    /// Online mean/variance.
    pub moments: Welford,
    /// Median estimator.
    pub p50: P2Quantile,
    /// 95th-percentile estimator.
    pub p95: P2Quantile,
    /// Exact min/max — the degradation report's worst-case column.
    pub extrema: Extrema,
}

impl StreamingSummary {
    /// An empty summary.
    pub fn new() -> Self {
        StreamingSummary {
            moments: Welford::new(),
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            extrema: Extrema::new(),
        }
    }

    /// Folds one sample into all four estimators.
    pub fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.p50.push(x);
        self.p95.push(x);
        self.extrema.push(x);
    }

    /// Number of finite samples folded in.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }
}

impl Default for StreamingSummary {
    fn default() -> Self {
        StreamingSummary::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }

    #[test]
    fn welford_matches_hand_computation() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 5);
        assert_eq!(w.mean(), 3.0);
        assert!((w.variance() - 2.5).abs() < 1e-12);
        let want = t95(4) * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((w.ci95() - want).abs() < 1e-12);
    }

    #[test]
    fn welford_skips_non_finite() {
        let mut w = Welford::new();
        w.push(2.0);
        w.push(f64::NAN);
        w.push(4.0);
        w.push(f64::INFINITY);
        assert_eq!(w.count(), 2);
        assert_eq!(w.skipped(), 2);
        assert_eq!(w.mean(), 3.0);
    }

    #[test]
    fn welford_empty_and_singleton() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert_eq!(w.ci95(), 0.0);
        let mut w = Welford::new();
        w.push(7.5);
        assert_eq!(w.mean(), 7.5);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut p = P2Quantile::new(0.5);
        assert!(p.estimate().is_nan());
        for (i, x) in [9.0, 1.0, 5.0, 3.0].iter().enumerate() {
            p.push(*x);
            let mut sorted: Vec<f64> = [9.0, 1.0, 5.0, 3.0][..=i].to_vec();
            sorted.sort_by(f64::total_cmp);
            assert_eq!(p.estimate(), exact_quantile(&sorted, 0.5), "after {i}");
        }
    }

    #[test]
    fn p2_median_of_uniform_ramp() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..1001 {
            p.push(i as f64);
        }
        // Exact median is 500; P² should be extremely close on a ramp.
        assert!((p.estimate() - 500.0).abs() < 5.0, "{}", p.estimate());
    }

    #[test]
    fn p2_p95_of_uniform_ramp() {
        let mut p = P2Quantile::new(0.95);
        for i in 0..1001 {
            p.push(i as f64);
        }
        assert!((p.estimate() - 950.0).abs() < 15.0, "{}", p.estimate());
    }

    #[test]
    fn p2_tracks_jain_chlamtac_worked_example() {
        // The 20-observation data set from the original P² paper,
        // tracking the median.
        let data = [
            0.02, 0.15, 0.74, 3.39, 0.83, 22.37, 10.15, 15.43, 38.62, 15.92, 34.60, 10.28, 1.47,
            0.40, 0.05, 11.39, 0.27, 0.42, 0.09, 11.37,
        ];
        let mut p = P2Quantile::new(0.5);
        for x in data {
            p.push(x);
        }
        // The paper reports 4.44 as the final median estimate.
        assert!((p.estimate() - 4.44).abs() < 0.01, "{}", p.estimate());
    }

    #[test]
    fn p2_skips_non_finite() {
        let mut p = P2Quantile::new(0.5);
        for x in [1.0, f64::NAN, 2.0, 3.0, f64::NEG_INFINITY] {
            p.push(x);
        }
        assert_eq!(p.count(), 3);
        assert_eq!(p.skipped(), 2);
        assert_eq!(p.estimate(), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1)")]
    fn p2_rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn extrema_track_exact_bounds_and_skip_non_finite() {
        let mut e = Extrema::new();
        assert!(e.min().is_nan() && e.max().is_nan());
        for x in [3.0, f64::NAN, -1.5, 3.0, f64::INFINITY, 0.0] {
            e.push(x);
        }
        assert_eq!(e.count(), 4);
        assert_eq!(e.skipped(), 2);
        assert_eq!(e.min(), -1.5);
        assert_eq!(e.max(), 3.0);
        // A singleton stream has min == max.
        let mut s = Extrema::new();
        s.push(-7.25);
        assert_eq!((s.min(), s.max()), (-7.25, -7.25));
    }

    #[test]
    fn determinism_same_sequence_same_bits() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37 % 101) as f64).sqrt()).collect();
        let mut a = StreamingSummary::new();
        let mut b = StreamingSummary::new();
        for &x in &xs {
            a.push(x);
            b.push(x);
        }
        assert_eq!(a, b);
        assert_eq!(a.moments.mean().to_bits(), b.moments.mean().to_bits());
        assert_eq!(a.p95.estimate().to_bits(), b.p95.estimate().to_bits());
    }
}

//! Cross-campaign comparison statistics.
//!
//! The paper's argument is comparative — LR-Seluge vs Seluge completion
//! time, traffic, and energy across loss rates — and so is every
//! regression question the campaign engine raises: "did this campaign's
//! cell get better or worse than that one's?" This module holds the
//! statistical machinery the `campdiff` tool answers that with:
//!
//! * [`SampleStats`] — the (n, mean, variance) summary a group of runs
//!   reduces to. Obtainable from a live [`Welford`] accumulator
//!   ([`Welford::sample_stats`]) or reconstructed from a rendered
//!   report's `(n, mean, ci95)` triple ([`SampleStats::from_ci95`],
//!   which inverts the same t-table [`Welford::ci95`] used).
//! * [`welch_t`] — Welch's unequal-variance t-test with the
//!   Welch–Satterthwaite degrees of freedom and an exact two-sided
//!   p-value via the regularized incomplete beta function. Welch (not
//!   pooled Student) because campaigns routinely compare mismatched
//!   seed counts and loss regimes with very different spreads.
//! * [`cohens_d`] — pooled-SD effect size, so a "significant" verdict
//!   on a million-seed campaign can still be called trivially small.
//! * [`ci95_overlap`] — the conservative interval-overlap check the
//!   ROADMAP asked for; reported alongside the t-test verdict.
//! * [`benjamini_hochberg`] — false-discovery-rate control across the
//!   cells × metrics comparison grid, so a 96-way diff at α = 0.05
//!   doesn't cry wolf on ~5 cells every run.
//!
//! Everything is a pure function of its inputs; the property suite
//! (`tests/compare_props.rs`) pins each piece against an exact
//! reference computation — closed-form t CDFs at df ∈ {1, 2}, numeric
//! integration of the beta density, brute-force BH — in the same
//! streaming-vs-exact style the campaign estimators are tested with.

use crate::streaming::{t95, Welford};

/// Summary statistics of one sample group: the sufficient statistics
/// for every comparison in this module.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleStats {
    /// Number of (finite) observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample variance (n − 1 denominator).
    pub var: f64,
}

impl SampleStats {
    /// Reconstructs the summary from a rendered report's `(n, mean,
    /// ci95)` triple by inverting `ci95 = t·sd/√n` through the same
    /// t-table the CI was computed with, so the round trip
    /// Welford → report → `from_ci95` recovers the variance exactly up
    /// to float rounding. For `n < 2` the CI carries no spread
    /// information; the variance is recorded as 0.
    pub fn from_ci95(n: u64, mean: f64, ci95: f64) -> SampleStats {
        let var = if n < 2 {
            0.0
        } else {
            let sd = ci95 * (n as f64).sqrt() / t95(n as usize - 1);
            sd * sd
        };
        SampleStats { n, mean, var }
    }

    /// The 95 % confidence half-width this summary renders as
    /// (0 for n < 2) — the forward direction of
    /// [`from_ci95`](Self::from_ci95).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            t95(self.n as usize - 1) * self.var.sqrt() / (self.n as f64).sqrt()
        }
    }
}

impl Welford {
    /// This accumulator's state as comparison-ready summary statistics.
    pub fn sample_stats(&self) -> SampleStats {
        SampleStats {
            n: self.count(),
            mean: self.mean(),
            var: self.variance(),
        }
    }
}

/// Result of one Welch two-sample t-test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WelchTest {
    /// The t statistic, `(mean_a − mean_b) / √(va/na + vb/nb)`.
    /// `±∞` when both variances are zero but the means differ.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value for the null hypothesis of equal means.
    pub p: f64,
}

/// Welch's unequal-variance t-test on two summarized groups.
///
/// Returns `None` when either group has fewer than two observations —
/// with n < 2 there is no variance estimate and no test. Two groups
/// with zero variance (constant metrics are common: `completed` is
/// 1.0 across every seed of a healthy cell) degenerate gracefully:
/// equal means give `p = 1`, different means give `p = 0` — a constant
/// that moved is a certain difference, not a statistical one.
pub fn welch_t(a: SampleStats, b: SampleStats) -> Option<WelchTest> {
    if a.n < 2 || b.n < 2 {
        return None;
    }
    let (na, nb) = (a.n as f64, b.n as f64);
    let sea = a.var / na;
    let seb = b.var / nb;
    let se2 = sea + seb;
    if se2 == 0.0 {
        return Some(if a.mean == b.mean {
            WelchTest {
                t: 0.0,
                df: na + nb - 2.0,
                p: 1.0,
            }
        } else {
            WelchTest {
                t: (a.mean - b.mean).signum() * f64::INFINITY,
                df: na + nb - 2.0,
                p: 0.0,
            }
        });
    }
    let t = (a.mean - b.mean) / se2.sqrt();
    let df = se2 * se2 / (sea * sea / (na - 1.0) + seb * seb / (nb - 1.0));
    Some(WelchTest {
        t,
        df,
        p: student_t_two_sided_p(t, df),
    })
}

/// Cohen's d effect size with the pooled standard deviation.
///
/// Zero pooled spread degenerates like [`welch_t`]: equal means give
/// `0.0`, different means `±∞`. Returns `None` below two observations
/// per group.
pub fn cohens_d(a: SampleStats, b: SampleStats) -> Option<f64> {
    if a.n < 2 || b.n < 2 {
        return None;
    }
    let (na, nb) = (a.n as f64, b.n as f64);
    let pooled = ((na - 1.0) * a.var + (nb - 1.0) * b.var) / (na + nb - 2.0);
    let diff = a.mean - b.mean;
    Some(if pooled == 0.0 {
        if diff == 0.0 {
            0.0
        } else {
            diff.signum() * f64::INFINITY
        }
    } else {
        diff / pooled.sqrt()
    })
}

/// Whether the two groups' 95 % confidence intervals for the mean
/// overlap — the conservative "could these be the same?" eyeball test,
/// reported alongside the t-test verdict. Degenerate intervals
/// (n < 2, zero half-width) overlap only if the means coincide.
pub fn ci95_overlap(a: SampleStats, b: SampleStats) -> bool {
    (a.mean - b.mean).abs() <= a.ci95() + b.ci95()
}

/// Benjamini–Hochberg step-up procedure at false-discovery rate
/// `alpha`: returns, for each input p-value in order, whether its null
/// hypothesis is rejected.
///
/// Sorting ties is stable on the original index, and the decision rule
/// is the classical one — find the largest rank k (1-based, ascending
/// p) with `p(k) ≤ α·k/m`, reject exactly the k smallest p-values.
/// Non-finite p-values (untestable comparisons) are never rejected and
/// do not count toward m.
pub fn benjamini_hochberg(pvalues: &[f64], alpha: f64) -> Vec<bool> {
    let mut order: Vec<usize> = (0..pvalues.len())
        .filter(|&i| pvalues[i].is_finite())
        .collect();
    order.sort_by(|&i, &j| pvalues[i].total_cmp(&pvalues[j]));
    let m = order.len() as f64;
    let mut cutoff_rank = 0;
    for (rank, &i) in order.iter().enumerate() {
        if pvalues[i] <= alpha * (rank + 1) as f64 / m {
            cutoff_rank = rank + 1;
        }
    }
    let mut reject = vec![false; pvalues.len()];
    for &i in &order[..cutoff_rank] {
        reject[i] = true;
    }
    reject
}

/// Benjamini–Hochberg adjusted p-values (q-values): `q(k) = min_{j ≥ k}
/// p(j)·m/j`, clamped to 1. A comparison is rejected at FDR α exactly
/// when its q-value is ≤ α, so reports can print one number instead of
/// a verdict per α. Non-finite inputs pass through unchanged.
pub fn bh_adjusted_p(pvalues: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..pvalues.len())
        .filter(|&i| pvalues[i].is_finite())
        .collect();
    order.sort_by(|&i, &j| pvalues[i].total_cmp(&pvalues[j]));
    let m = order.len() as f64;
    let mut out = pvalues.to_vec();
    let mut running_min = f64::INFINITY;
    for (rank, &i) in order.iter().enumerate().rev() {
        let q = (pvalues[i] * m / (rank + 1) as f64).min(1.0);
        running_min = running_min.min(q);
        out[i] = running_min;
    }
    out
}

/// Two-sided p-value of the Student t distribution: `P(|T_df| ≥ |t|)`,
/// computed exactly as `I_{df/(df+t²)}(df/2, 1/2)` with the regularized
/// incomplete beta function.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return if t.is_nan() { f64::NAN } else { 0.0 };
    }
    if df <= 0.0 {
        return f64::NAN;
    }
    reg_inc_beta(df / 2.0, 0.5, df / (df + t * t))
}

/// CDF of the Student t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    let p = student_t_two_sided_p(t, df);
    if t >= 0.0 {
        1.0 - p / 2.0
    } else {
        p / 2.0
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7,
/// n = 9 — accurate to ~1e-13 over the positive reals).
// The coefficients are quoted verbatim from the published g=7 Lanczos
// table; trimming digits would silently change the approximant.
#[allow(clippy::excessive_precision)]
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection for the small-argument half.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.99999999999980993;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the standard
/// continued fraction (modified Lentz), with the symmetry split that
/// keeps the fraction in its fast-converging region.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x.is_nan() || x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction kernel of the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    const EPS: f64 = 3e-16;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..200 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(samples: &[f64]) -> SampleStats {
        let mut w = Welford::new();
        for &x in samples {
            w.push(x);
        }
        w.sample_stats()
    }

    #[test]
    fn welch_identical_groups_is_certainly_null() {
        let a = stats(&[1.0, 2.0, 3.0, 4.0]);
        let r = welch_t(a, a).expect("testable");
        assert_eq!(r.t, 0.0);
        assert_eq!(r.p, 1.0);
    }

    #[test]
    fn welch_textbook_equal_n() {
        // Equal n and equal variance: Welch coincides with Student.
        let a = stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = stats(&[2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = welch_t(a, b).expect("testable");
        assert!((r.t - (-1.0)).abs() < 1e-12, "{}", r.t);
        assert!((r.df - 8.0).abs() < 1e-9, "{}", r.df);
        // p = P(|T_8| >= 1) = 0.34659... (known value).
        assert!((r.p - 0.34659350708733416).abs() < 1e-9, "{}", r.p);
    }

    #[test]
    fn welch_zero_variance_degenerates_sensibly() {
        let a = stats(&[5.0, 5.0, 5.0]);
        let moved = stats(&[6.0, 6.0, 6.0]);
        assert_eq!(welch_t(a, a).map(|r| r.p), Some(1.0));
        let r = welch_t(a, moved).expect("testable");
        assert_eq!(r.p, 0.0);
        assert!(r.t.is_infinite() && r.t < 0.0);
        assert_eq!(cohens_d(a, moved), Some(f64::NEG_INFINITY));
        assert_eq!(cohens_d(a, a), Some(0.0));
    }

    #[test]
    fn welch_requires_two_observations_per_group() {
        let one = SampleStats {
            n: 1,
            mean: 3.0,
            var: 0.0,
        };
        let many = stats(&[1.0, 2.0, 3.0]);
        assert_eq!(welch_t(one, many), None);
        assert_eq!(welch_t(many, one), None);
        assert_eq!(cohens_d(one, many), None);
    }

    #[test]
    fn ci95_round_trips_through_from_ci95() {
        let a = stats(&[3.0, 7.0, 1.0, 9.0, 4.5]);
        let rebuilt = SampleStats::from_ci95(a.n, a.mean, a.ci95());
        assert!((rebuilt.var - a.var).abs() < 1e-12 * a.var.max(1.0));
        assert_eq!(rebuilt.n, a.n);
        assert_eq!(rebuilt.mean, a.mean);
    }

    #[test]
    fn ci_overlap_matches_interval_arithmetic() {
        let a = SampleStats::from_ci95(5, 10.0, 1.0);
        let near = SampleStats::from_ci95(5, 11.5, 1.0);
        let far = SampleStats::from_ci95(5, 12.5, 1.0);
        assert!(ci95_overlap(a, near));
        assert!(!ci95_overlap(a, far));
    }

    #[test]
    fn bh_rejects_the_classic_example() {
        // Benjamini & Hochberg (1995), the 15-p-value worked example at
        // FDR 0.05: exactly the 4 smallest are rejected.
        let p = [
            0.0001, 0.0004, 0.0019, 0.0095, 0.0201, 0.0278, 0.0298, 0.0344, 0.0459, 0.3240, 0.4262,
            0.5719, 0.6528, 0.7590, 1.0000,
        ];
        let reject = benjamini_hochberg(&p, 0.05);
        assert_eq!(reject.iter().filter(|&&r| r).count(), 4);
        assert!(reject[..4].iter().all(|&r| r));
        let q = bh_adjusted_p(&p);
        for (i, (&pi, &qi)) in p.iter().zip(&q).enumerate() {
            assert!(qi >= pi, "q >= p at {i}");
            assert_eq!(qi <= 0.05, reject[i], "q-value agrees with verdict at {i}");
        }
    }

    #[test]
    fn bh_ignores_non_finite_pvalues() {
        let p = [0.001, f64::NAN, 0.9];
        let reject = benjamini_hochberg(&p, 0.05);
        assert_eq!(reject, vec![true, false, false]);
        let q = bh_adjusted_p(&p);
        assert!(q[1].is_nan());
    }

    #[test]
    fn t_cdf_is_symmetric_and_monotone() {
        for df in [1.0, 2.0, 5.0, 30.0, 120.0] {
            assert!((student_t_cdf(0.0, df) - 0.5).abs() < 1e-12);
            let mut last = 0.0;
            for i in -40..=40 {
                let t = i as f64 / 4.0;
                let c = student_t_cdf(t, df);
                assert!(c >= last - 1e-12, "monotone at t={t}, df={df}");
                let sym = student_t_cdf(-t, df);
                assert!((c + sym - 1.0).abs() < 1e-12, "symmetry at t={t}, df={df}");
                last = c;
            }
        }
    }

    #[test]
    fn ln_gamma_hits_exact_values() {
        // Γ(n) = (n−1)!, Γ(1/2) = √π.
        let mut fact = 1.0f64;
        for n in 1..=10u32 {
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-11,
                "ln_gamma({n})"
            );
            fact *= n as f64;
        }
        let half = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - half).abs() < 1e-12);
    }
}

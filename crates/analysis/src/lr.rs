//! Expected data-packet transmissions for ACK-based LR-Seluge
//! (Theorem-2-style upper bound on real LR-Seluge).
//!
//! Round structure: the sender first transmits all `n` encoded packets;
//! receiver `i` then needs `d_i = max(0, k' − received_i)` more. In every
//! subsequent round the sender transmits `m = max_i d_i` packets that are
//! useful to every still-deficient receiver (possible while packets
//! remain; the idealization is what makes this an upper bound the real
//! SNACK-driven protocol stays below). The page completes when all
//! deficits are zero.

use crate::binomial::binomial_pmf_vec;
use lrs_rng::DetRng;

/// Exact expected transmissions for a single receiver.
///
/// `E[T] = n + E[R(D)]` where `D = max(0, k' − Binomial(n, 1−p))` and the
/// per-round recursion `R(d) = d + Σ_x P[Bin(d,1−p)=x]·R(d−x)` solves in
/// closed form for the self-referential `x = 0` term.
///
/// # Panics
///
/// Panics unless `0 ≤ p < 1` and `k' ≤ n`.
pub fn ack_lr_exact_single(k_prime: usize, n: usize, p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "loss probability out of range");
    assert!(k_prime <= n, "k' must not exceed n");
    let q = 1.0 - p;
    // R(d): expected further transmissions with deficit d.
    let mut r = vec![0.0f64; k_prime + 1];
    for d in 1..=k_prime {
        let pmf = binomial_pmf_vec(d, q);
        let mut rhs = d as f64;
        for (x, prob) in pmf.iter().enumerate().skip(1) {
            rhs += prob * r[d - x];
        }
        // R(d) = rhs + pmf[0] * R(d)  =>  R(d) = rhs / (1 - p^d).
        r[d] = rhs / (1.0 - pmf[0]);
    }
    // First round: n transmissions, then the residual deficit.
    let pmf_n = binomial_pmf_vec(n, q);
    let mut e = n as f64;
    for (x, prob) in pmf_n.iter().enumerate() {
        let d = k_prime.saturating_sub(x);
        e += prob * r[d];
    }
    e
}

/// Model-evaluation method for the `N`-receiver expectation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckLrModel {
    /// Exact single-receiver recursion (only valid for `N = 1`).
    Exact,
    /// Monte-Carlo evaluation of the round process with this many trials.
    MonteCarlo {
        /// Number of simulated pages.
        trials: u32,
        /// RNG seed.
        seed: u64,
    },
}

/// Expected data-packet transmissions to deliver one erasure-coded page
/// (`n` packets, threshold `k'`) to `N` receivers with i.i.d. loss `p`.
///
/// Uses the exact recursion for `N = 1` and Monte-Carlo evaluation of
/// the same round process otherwise (receiver deficits are coupled
/// through the shared `max` round size, which has no closed form).
///
/// # Panics
///
/// Panics unless `0 ≤ p < 1`, `k' ≤ n`, and `N ≥ 1`.
pub fn ack_lr_expected_data_packets(
    k_prime: usize,
    n: usize,
    p: f64,
    n_receivers: usize,
    model: AckLrModel,
) -> f64 {
    assert!((0.0..1.0).contains(&p), "loss probability out of range");
    assert!(k_prime <= n, "k' must not exceed n");
    assert!(n_receivers >= 1, "need at least one receiver");
    match model {
        AckLrModel::Exact => {
            assert_eq!(n_receivers, 1, "exact recursion only covers N = 1");
            ack_lr_exact_single(k_prime, n, p)
        }
        AckLrModel::MonteCarlo { trials, seed } => {
            let mut rng = DetRng::seed_from_u64(seed);
            let mut total = 0u64;
            for _ in 0..trials {
                total += simulate_round_process(k_prime, n, p, n_receivers, &mut rng);
            }
            total as f64 / trials as f64
        }
    }
}

/// One realization of the round process; returns total transmissions.
fn simulate_round_process(
    k_prime: usize,
    n: usize,
    p: f64,
    n_receivers: usize,
    rng: &mut DetRng,
) -> u64 {
    let q = 1.0 - p;
    let mut deficits: Vec<usize> = (0..n_receivers)
        .map(|_| {
            let received = sample_binomial(n, q, rng);
            k_prime.saturating_sub(received)
        })
        .collect();
    let mut total = n as u64;
    loop {
        let m = *deficits.iter().max().expect("non-empty");
        if m == 0 {
            return total;
        }
        total += m as u64;
        for d in deficits.iter_mut() {
            if *d > 0 {
                let got = sample_binomial(m, q, rng);
                *d = d.saturating_sub(got);
            }
        }
    }
}

fn sample_binomial(n: usize, q: f64, rng: &mut DetRng) -> usize {
    (0..n).filter(|_| rng.gen_bool(q)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MC: AckLrModel = AckLrModel::MonteCarlo {
        trials: 6_000,
        seed: 7,
    };

    #[test]
    fn lossless_single_receiver_costs_n() {
        // p = 0: round 1 delivers everything; total = n.
        assert!((ack_lr_exact_single(32, 48, 0.0) - 48.0).abs() < 1e-9);
    }

    #[test]
    fn exact_matches_monte_carlo_single_receiver() {
        for p in [0.1, 0.3, 0.5] {
            let exact = ack_lr_exact_single(32, 48, p);
            let mc = ack_lr_expected_data_packets(
                32,
                48,
                p,
                1,
                AckLrModel::MonteCarlo {
                    trials: 20_000,
                    seed: 7,
                },
            );
            assert!(
                (exact - mc).abs() / exact < 0.02,
                "p={p}: exact {exact} vs MC {mc}"
            );
        }
    }

    #[test]
    fn one_round_regime_below_one_third() {
        // n = 1.5 k': while n(1-p) comfortably exceeds k', total ≈ n.
        let e = ack_lr_expected_data_packets(32, 48, 0.2, 20, MC);
        assert!(e < 52.0, "expected ≈ one round, got {e}");
        // Past the knee, a second round is usually needed.
        let e2 = ack_lr_expected_data_packets(32, 48, 0.4, 20, MC);
        assert!(e2 > 56.0, "expected a second round, got {e2}");
    }

    #[test]
    fn paper_knee_between_03_and_04() {
        // The jump the paper points out between p = 0.3 and p = 0.4.
        let e03 = ack_lr_expected_data_packets(32, 48, 0.3, 20, MC);
        let e04 = ack_lr_expected_data_packets(32, 48, 0.4, 20, MC);
        let e02 = ack_lr_expected_data_packets(32, 48, 0.2, 20, MC);
        let e03_rel = e03 - e02;
        let e04_rel = e04 - e03;
        assert!(
            e04_rel > 1.3 * e03_rel.max(0.5),
            "knee missing: Δ(0.2→0.3)={e03_rel:.1}, Δ(0.3→0.4)={e04_rel:.1}"
        );
    }

    #[test]
    fn monotone_in_receivers_and_loss() {
        let base = ack_lr_expected_data_packets(32, 48, 0.2, 5, MC);
        let more_rx = ack_lr_expected_data_packets(32, 48, 0.2, 25, MC);
        let more_loss = ack_lr_expected_data_packets(32, 48, 0.45, 5, MC);
        assert!(more_rx >= base - 0.5);
        assert!(more_loss > base);
    }

    #[test]
    fn upper_bounds_are_less_sensitive_to_n_receivers_than_seluge() {
        // The paper's Fig. 3(b) observation: LR grows much slower in N.
        let lr_small = ack_lr_expected_data_packets(32, 48, 0.2, 2, MC);
        let lr_large = ack_lr_expected_data_packets(32, 48, 0.2, 40, MC);
        let s_small = crate::seluge_expected_data_packets(32, 2, 0.2);
        let s_large = crate::seluge_expected_data_packets(32, 40, 0.2);
        let lr_growth = lr_large / lr_small;
        let s_growth = s_large / s_small;
        assert!(
            lr_growth < s_growth,
            "LR growth {lr_growth:.2} should undercut Seluge growth {s_growth:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "k' must not exceed n")]
    fn invalid_parameters_panic() {
        let _ = ack_lr_exact_single(10, 5, 0.1);
    }
}

//! Network-wide metric counters.
//!
//! The paper compares five quantities (§VI-A): total data packets, total
//! SNACK packets, total advertisement packets, total communication cost
//! in bytes (SNACKs in LR-Seluge are `n − k` bits longer, so raw packet
//! counts alone would be unfair), and overall dissemination latency.

use crate::node::{NodeId, PacketKind};
use crate::time::SimTime;
use std::collections::HashMap;

/// Aggregated counters for one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    tx_packets: HashMap<PacketKind, u64>,
    tx_bytes: HashMap<PacketKind, u64>,
    rx_packets: u64,
    rx_bytes: u64,
    /// Packets lost to PHY link quality or noise.
    lost_phy: u64,
    /// Packets lost to collisions.
    lost_collision: u64,
    /// Packets dropped by the application-layer loss process.
    lost_app: u64,
    /// First time each node reported completion.
    completion: HashMap<NodeId, SimTime>,
}

impl Metrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transmission of `bytes` of the given kind.
    pub fn count_tx(&mut self, kind: PacketKind, bytes: usize) {
        *self.tx_packets.entry(kind).or_insert(0) += 1;
        *self.tx_bytes.entry(kind).or_insert(0) += bytes as u64;
    }

    /// Records a successful reception.
    pub fn count_rx(&mut self, bytes: usize) {
        self.rx_packets += 1;
        self.rx_bytes += bytes as u64;
    }

    /// Records a PHY-level loss.
    pub fn count_phy_loss(&mut self) {
        self.lost_phy += 1;
    }

    /// Records a collision loss.
    pub fn count_collision(&mut self) {
        self.lost_collision += 1;
    }

    /// Records an application-layer drop (the paper's loss process).
    pub fn count_app_drop(&mut self) {
        self.lost_app += 1;
    }

    /// Records the first completion time of `node`.
    pub fn record_completion(&mut self, node: NodeId, at: SimTime) {
        self.completion.entry(node).or_insert(at);
    }

    /// Transmitted packets of `kind`.
    pub fn tx_packets(&self, kind: PacketKind) -> u64 {
        self.tx_packets.get(&kind).copied().unwrap_or(0)
    }

    /// Transmitted bytes of `kind`.
    pub fn tx_bytes(&self, kind: PacketKind) -> u64 {
        self.tx_bytes.get(&kind).copied().unwrap_or(0)
    }

    /// Total transmitted packets across kinds.
    pub fn total_tx_packets(&self) -> u64 {
        self.tx_packets.values().sum()
    }

    /// Total transmitted bytes across kinds (the paper's "total
    /// communication cost in bytes").
    pub fn total_tx_bytes(&self) -> u64 {
        self.tx_bytes.values().sum()
    }

    /// Successful receptions.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets
    }

    /// Received bytes (an energy proxy: receivers pay for every byte that
    /// clears the PHY, even if authentication later rejects it).
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes
    }

    /// PHY losses.
    pub fn phy_losses(&self) -> u64 {
        self.lost_phy
    }

    /// Collision losses.
    pub fn collision_losses(&self) -> u64 {
        self.lost_collision
    }

    /// Application-layer drops.
    pub fn app_drops(&self) -> u64 {
        self.lost_app
    }

    /// Completion time of `node`, if it completed.
    pub fn completion_of(&self, node: NodeId) -> Option<SimTime> {
        self.completion.get(&node).copied()
    }

    /// Number of nodes that completed.
    pub fn completed_count(&self) -> usize {
        self.completion.len()
    }

    /// Fraction of `population` nodes that completed — the
    /// graceful-degradation outcome: *how far* dissemination got, even
    /// when the run as a whole timed out or stalled. Clamped to 1.0 and
    /// `NaN` for an empty population.
    pub fn completion_fraction(&self, population: usize) -> f64 {
        if population == 0 {
            return f64::NAN;
        }
        (self.completion.len().min(population)) as f64 / population as f64
    }

    /// Dissemination latency: the time the *last* node completed.
    pub fn dissemination_latency(&self) -> Option<SimTime> {
        self.completion.values().copied().max()
    }

    /// Folds `other`'s counters into `self`: sums every counter and
    /// unions completion times keeping the earliest per node. Used by
    /// the sharded engine to combine per-shard metrics; shards observe
    /// disjoint nodes, so the union never actually conflicts.
    pub fn merge(&mut self, other: &Metrics) {
        for (kind, n) in &other.tx_packets {
            *self.tx_packets.entry(*kind).or_insert(0) += n;
        }
        for (kind, n) in &other.tx_bytes {
            *self.tx_bytes.entry(*kind).or_insert(0) += n;
        }
        self.rx_packets += other.rx_packets;
        self.rx_bytes += other.rx_bytes;
        self.lost_phy += other.lost_phy;
        self.lost_collision += other.lost_collision;
        self.lost_app += other.lost_app;
        for (node, at) in &other.completion {
            self.completion
                .entry(*node)
                .and_modify(|t| *t = (*t).min(*at))
                .or_insert(*at);
        }
    }

    /// Renders the counters as one JSON object, in the shape of a trace
    /// event (`"ev":"metrics"`). Appending it to a JSONL run trace gives
    /// the log a closing summary line that tools can key on.
    pub fn to_trace_json(&self, at: SimTime) -> String {
        let mut kinds = String::new();
        for kind in PacketKind::ALL {
            if !kinds.is_empty() {
                kinds.push(',');
            }
            kinds.push_str(&format!(
                r#""{}":{{"pkts":{},"bytes":{}}}"#,
                kind.label(),
                self.tx_packets(kind),
                self.tx_bytes(kind)
            ));
        }
        format!(
            concat!(
                r#"{{"t":{},"ev":"metrics","tx":{{{}}},"rx_pkts":{},"rx_bytes":{},"#,
                r#""lost_phy":{},"lost_collision":{},"lost_app":{},"completed":{}}}"#
            ),
            at.as_micros(),
            kinds,
            self.rx_packets,
            self.rx_bytes,
            self.lost_phy,
            self.lost_collision,
            self.lost_app,
            self.completion.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count_tx(PacketKind::Data, 80);
        m.count_tx(PacketKind::Data, 80);
        m.count_tx(PacketKind::Snack, 20);
        assert_eq!(m.tx_packets(PacketKind::Data), 2);
        assert_eq!(m.tx_bytes(PacketKind::Data), 160);
        assert_eq!(m.total_tx_packets(), 3);
        assert_eq!(m.total_tx_bytes(), 180);
        assert_eq!(m.tx_packets(PacketKind::Adv), 0);
    }

    #[test]
    fn completion_records_first_time_only() {
        let mut m = Metrics::new();
        m.record_completion(NodeId(1), SimTime(100));
        m.record_completion(NodeId(1), SimTime(200));
        m.record_completion(NodeId(2), SimTime(150));
        assert_eq!(m.completion_of(NodeId(1)), Some(SimTime(100)));
        assert_eq!(m.dissemination_latency(), Some(SimTime(150)));
        assert_eq!(m.completed_count(), 2);
        assert_eq!(m.completion_fraction(4), 0.5);
        // Clamped (an attacker self-reporting completion cannot push the
        // honest fraction past 1) and NaN-safe for an empty population.
        assert_eq!(m.completion_fraction(1), 1.0);
        assert!(m.completion_fraction(0).is_nan());
    }

    #[test]
    fn loss_counters() {
        let mut m = Metrics::new();
        m.count_phy_loss();
        m.count_collision();
        m.count_app_drop();
        m.count_app_drop();
        assert_eq!(m.phy_losses(), 1);
        assert_eq!(m.collision_losses(), 1);
        assert_eq!(m.app_drops(), 2);
    }

    #[test]
    fn trace_json_summary_shape() {
        let mut m = Metrics::new();
        m.count_tx(PacketKind::Data, 80);
        m.count_rx(80);
        m.count_app_drop();
        m.record_completion(NodeId(1), SimTime(5));
        let line = m.to_trace_json(SimTime(123));
        assert!(line.starts_with(r#"{"t":123,"ev":"metrics","#), "{line}");
        assert!(line.contains(r#""data":{"pkts":1,"bytes":80}"#), "{line}");
        assert!(line.contains(r#""lost_app":1"#), "{line}");
        assert!(line.contains(r#""completed":1"#), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
}

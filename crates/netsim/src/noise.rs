//! Bursty RF-noise model.
//!
//! The paper's multi-hop experiments draw interference from the
//! `meyer-heavy.txt` noise trace of the TinyOS distribution. That trace
//! is not redistributable, so we substitute a two-state Gilbert-Elliott
//! process per receiver: a node alternates between a *quiet* state (full
//! link quality) and a *noisy* state (PRR multiplied by a penalty),
//! with exponentially distributed sojourn times. This reproduces the
//! relevant property of the Meyer-library traces — heavy, *bursty*
//! interference that correlates consecutive losses — rather than the
//! exact sample path.

use crate::time::SimTime;
use lrs_rng::DetRng;

/// Noise model selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseModel {
    /// No environmental noise.
    None,
    /// Gilbert-Elliott bursty noise.
    Bursty(BurstyNoise),
}

/// Parameters of the Gilbert-Elliott noise process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstyNoise {
    /// Mean sojourn in the quiet state (µs).
    pub mean_quiet_us: u64,
    /// Mean sojourn in the noisy state (µs).
    pub mean_noisy_us: u64,
    /// Multiplier applied to PRR while noisy (0 = total blackout).
    pub noisy_prr_factor: f64,
}

impl BurstyNoise {
    /// A heavy noise profile loosely calibrated to the character of the
    /// `meyer-heavy` trace: noisy about a third of the time, in bursts of
    /// a few hundred milliseconds, with severe degradation while noisy.
    pub fn heavy() -> Self {
        BurstyNoise {
            mean_quiet_us: 600_000,
            mean_noisy_us: 300_000,
            noisy_prr_factor: 0.25,
        }
    }

    /// Long-run fraction of time spent in the noisy state.
    pub fn noisy_fraction(&self) -> f64 {
        self.mean_noisy_us as f64 / (self.mean_noisy_us + self.mean_quiet_us) as f64
    }
}

/// Per-receiver noise state, advanced lazily at packet arrivals.
#[derive(Clone, Debug)]
pub struct NoiseState {
    model: NoiseModel,
    noisy: bool,
    /// Time at which the current state ends.
    until: SimTime,
}

impl NoiseState {
    /// Creates the per-node state (initially quiet).
    pub fn new(model: NoiseModel) -> Self {
        NoiseState {
            model,
            noisy: false,
            until: SimTime::ZERO,
        }
    }

    /// PRR multiplier in effect at time `now`.
    ///
    /// Advances the Markov chain lazily using `rng` for sojourn draws.
    pub fn factor_at(&mut self, now: SimTime, rng: &mut DetRng) -> f64 {
        let BurstyNoise {
            mean_quiet_us,
            mean_noisy_us,
            noisy_prr_factor,
        } = match self.model {
            NoiseModel::None => return 1.0,
            NoiseModel::Bursty(b) => b,
        };
        while self.until <= now {
            self.noisy = !self.noisy;
            let mean = if self.noisy {
                mean_noisy_us
            } else {
                mean_quiet_us
            };
            let sojourn = exp_sample(mean, rng);
            self.until = SimTime(self.until.0 + sojourn.max(1));
        }
        if self.noisy {
            noisy_prr_factor
        } else {
            1.0
        }
    }
}

/// Exponential sample with the given mean (µs).
fn exp_sample(mean_us: u64, rng: &mut DetRng) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-(u.ln()) * mean_us as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_always_one() {
        let mut st = NoiseState::new(NoiseModel::None);
        let mut rng = DetRng::seed_from_u64(0);
        for t in [0u64, 1_000_000, 100_000_000] {
            assert_eq!(st.factor_at(SimTime(t), &mut rng), 1.0);
        }
    }

    #[test]
    fn bursty_long_run_fraction_close_to_nominal() {
        let model = BurstyNoise::heavy();
        let mut st = NoiseState::new(NoiseModel::Bursty(model));
        let mut rng = DetRng::seed_from_u64(42);
        let mut noisy_samples = 0usize;
        let total = 200_000usize;
        for i in 0..total {
            // Sample every 10 ms over 2000 s of virtual time.
            let f = st.factor_at(SimTime(i as u64 * 10_000), &mut rng);
            if f < 1.0 {
                noisy_samples += 1;
            }
        }
        let measured = noisy_samples as f64 / total as f64;
        let nominal = model.noisy_fraction();
        assert!(
            (measured - nominal).abs() < 0.05,
            "measured {measured:.3} vs nominal {nominal:.3}"
        );
    }

    #[test]
    fn bursty_states_are_bursty() {
        // Consecutive close-together samples should usually agree
        // (that is the point of modeling bursts, not i.i.d. noise).
        let model = BurstyNoise::heavy();
        let mut st = NoiseState::new(NoiseModel::Bursty(model));
        let mut rng = DetRng::seed_from_u64(7);
        let mut agree = 0usize;
        let mut last = st.factor_at(SimTime(0), &mut rng);
        let total = 50_000usize;
        for i in 1..=total {
            let f = st.factor_at(SimTime(i as u64 * 1_000), &mut rng); // 1 ms apart
            if (f < 1.0) == (last < 1.0) {
                agree += 1;
            }
            last = f;
        }
        assert!(
            agree as f64 / total as f64 > 0.95,
            "burstiness too low: {agree}/{total}"
        );
    }

    #[test]
    fn exp_sample_mean_reasonable() {
        let mut rng = DetRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| exp_sample(1000, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean {mean}");
    }
}

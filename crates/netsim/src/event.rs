//! The discrete-event queue.
//!
//! A binary heap keyed by `(time, sequence)`; the sequence number breaks
//! ties in insertion order, making runs fully deterministic.
//!
//! The sequential engine orders simultaneous events by insertion
//! sequence — a global counter that only exists on one thread. The
//! sharded engine ([`crate::shard`]) cannot share such a counter without
//! serializing, so it orders events by [`OrderKey`], a total order
//! derived purely from event *content* (time, event class, node ids,
//! transmission id). Content-based keys make the processing order — and
//! therefore every metric and trace — independent of how nodes are
//! split across shards.

use crate::node::{NodeId, PacketKind, TimerId};
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// An event scheduled for execution.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet finishing reception at `to`.
    Deliver {
        /// Receiver.
        to: NodeId,
        /// Original sender.
        from: NodeId,
        /// Packet payload (shared among all receivers).
        data: Arc<Vec<u8>>,
        /// Metric classification.
        kind: PacketKind,
        /// Transmission id, for collision lookup.
        tx_id: u64,
    },
    /// A protocol timer firing (only valid if `generation` still matches).
    Timer {
        /// Owner of the timer.
        node: NodeId,
        /// Protocol timer id.
        timer: TimerId,
        /// Arm generation, used to invalidate superseded arms.
        generation: u64,
    },
}

/// A content-derived total order over simulation steps.
///
/// Keys sort by `(time, class, a, b, c)`. Classes separate step
/// categories at equal times: fault applications first (matching the
/// sequential engine's fault-before-event tie rule — a `t = 0` clock
/// drift must precede node init so the very first timer arm sees it),
/// then node initialization, then packet deliveries, then timer
/// firings. The remaining fields are the step's identifying content —
/// never an insertion counter — so two runs that produce the same steps
/// order them identically no matter which threads produced them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrderKey {
    /// Virtual time of the step (µs).
    pub at: u64,
    /// Step class: 0 fault, 1 init, 2 deliver, 3 timer.
    pub class: u8,
    /// First content discriminant (receiver / node / fault index).
    pub a: u64,
    /// Second content discriminant (sender / timer id).
    pub b: u64,
    /// Third content discriminant (transmission id / generation).
    pub c: u64,
}

impl OrderKey {
    /// Key of applying the `index`-th fault of a time-sorted plan.
    pub fn fault(at: SimTime, index: u64) -> Self {
        OrderKey {
            at: at.as_micros(),
            class: 0,
            a: index,
            b: 0,
            c: 0,
        }
    }

    /// Key of a node's `on_init` step.
    pub fn init(node: NodeId) -> Self {
        OrderKey {
            at: 0,
            class: 1,
            a: u64::from(node.0),
            b: 0,
            c: 0,
        }
    }

    /// Key of a packet delivery.
    pub fn deliver(at: SimTime, to: NodeId, from: NodeId, tx_id: u64) -> Self {
        OrderKey {
            at: at.as_micros(),
            class: 2,
            a: u64::from(to.0),
            b: u64::from(from.0),
            c: tx_id,
        }
    }

    /// Key of a timer firing.
    pub fn timer(at: SimTime, node: NodeId, timer: TimerId, generation: u64) -> Self {
        OrderKey {
            at: at.as_micros(),
            class: 3,
            a: u64::from(node.0),
            b: u64::from(timer.0),
            c: generation,
        }
    }

    /// The key of `event` when scheduled at `at`.
    pub fn of(at: SimTime, event: &Event) -> Self {
        match *event {
            Event::Deliver {
                to, from, tx_id, ..
            } => OrderKey::deliver(at, to, from, tx_id),
            Event::Timer {
                node,
                timer,
                generation,
            } => OrderKey::timer(at, node, timer, generation),
        }
    }
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Iterates over pending events in arbitrary (heap) order, without
    /// draining them. Used for diagnostic dumps.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &Event)> {
        self.heap.iter().map(|Reverse(s)| (s.at, &s.event))
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, gen: u64) -> Event {
        Event::Timer {
            node: NodeId(node),
            timer: TimerId(0),
            generation: gen,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer(3, 0));
        q.push(SimTime(10), timer(1, 0));
        q.push(SimTime(20), timer(2, 0));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for gen in 0..5 {
            q.push(SimTime(7), timer(0, gen));
        }
        let gens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { generation, .. } => generation,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(gens, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn order_key_classes_rank_fault_init_deliver_timer() {
        let t = SimTime(100);
        let init = OrderKey::init(NodeId(5));
        let fault0 = OrderKey::fault(SimTime::ZERO, 0);
        let fault = OrderKey::fault(t, 0);
        let deliver = OrderKey::deliver(t, NodeId(1), NodeId(2), 9);
        let timer = OrderKey::timer(t, NodeId(1), TimerId(0), 1);
        assert!(fault0 < init, "t=0 faults apply before node init");
        assert!(init < fault, "time dominates: later faults follow init");
        assert!(fault < deliver, "fault applies before a same-time event");
        assert!(deliver < timer, "deliveries precede timers at equal time");
        // Content discriminants break remaining ties deterministically.
        assert!(deliver < OrderKey::deliver(t, NodeId(1), NodeId(2), 10));
        assert!(deliver < OrderKey::deliver(t, NodeId(1), NodeId(3), 0));
        // Time dominates class.
        assert!(timer < OrderKey::deliver(SimTime(101), NodeId(0), NodeId(0), 0));
    }

    #[test]
    fn order_key_of_matches_constructors() {
        let e = Event::Deliver {
            to: NodeId(4),
            from: NodeId(2),
            data: Arc::new(vec![1]),
            kind: PacketKind::Data,
            tx_id: 77,
        };
        assert_eq!(
            OrderKey::of(SimTime(5), &e),
            OrderKey::deliver(SimTime(5), NodeId(4), NodeId(2), 77)
        );
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(5), timer(0, 0));
        q.push(SimTime(3), timer(0, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
    }
}

//! The discrete-event queue.
//!
//! A binary heap keyed by `(time, sequence)`; the sequence number breaks
//! ties in insertion order, making runs fully deterministic.

use crate::node::{NodeId, PacketKind, TimerId};
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::rc::Rc;

/// An event scheduled for execution.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet finishing reception at `to`.
    Deliver {
        /// Receiver.
        to: NodeId,
        /// Original sender.
        from: NodeId,
        /// Packet payload (shared among all receivers).
        data: Rc<Vec<u8>>,
        /// Metric classification.
        kind: PacketKind,
        /// Transmission id, for collision lookup.
        tx_id: u64,
    },
    /// A protocol timer firing (only valid if `generation` still matches).
    Timer {
        /// Owner of the timer.
        node: NodeId,
        /// Protocol timer id.
        timer: TimerId,
        /// Arm generation, used to invalidate superseded arms.
        generation: u64,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Iterates over pending events in arbitrary (heap) order, without
    /// draining them. Used for diagnostic dumps.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &Event)> {
        self.heap.iter().map(|Reverse(s)| (s.at, &s.event))
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, gen: u64) -> Event {
        Event::Timer {
            node: NodeId(node),
            timer: TimerId(0),
            generation: gen,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer(3, 0));
        q.push(SimTime(10), timer(1, 0));
        q.push(SimTime(20), timer(2, 0));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for gen in 0..5 {
            q.push(SimTime(7), timer(0, gen));
        }
        let gens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { generation, .. } => generation,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(gens, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(5), timer(0, 0));
        q.push(SimTime(3), timer(0, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
    }
}

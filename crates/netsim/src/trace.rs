//! Structured run tracing.
//!
//! A [`TraceSink`] attached to a [`Simulator`](crate::sim::Simulator)
//! receives one [`TraceEvent`] per interesting simulator transition:
//! every transmission, reception, loss (with its cause), timer firing,
//! node completion, and protocol-level note (SNACK rounds, page
//! completions, scheduler decisions). A stalled or divergent run can
//! then be diagnosed from its event log instead of rerun under a
//! debugger.
//!
//! Tracing is strictly observational: sinks receive shared references
//! and cannot influence the event stream, so attaching one never
//! changes metrics or outcome.
//!
//! Two sinks are provided: [`RingTrace`], a bounded in-memory ring
//! buffer that keeps the most recent events (the default choice for
//! post-mortem inspection in tests), and [`JsonlTrace`], which streams
//! every event as one JSON object per line for offline analysis.

use crate::event::OrderKey;
use crate::node::{NodeId, PacketKind, TimerId};
use crate::time::SimTime;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// One trace event tagged for cross-shard merging: the [`OrderKey`] of
/// the simulation step that emitted it, plus the emission index within
/// that step (a step can emit several events — e.g. an `Rx` followed by
/// a `NodeComplete`).
pub type KeyedTraceEvent = (OrderKey, u32, TraceEvent);

/// Merges per-shard trace buffers into one globally ordered stream.
///
/// A simulation step runs on exactly one shard, so `(key, emit index)`
/// totally orders the union; the merged stream is identical no matter
/// how nodes were split across shards. Buffers need not be pre-sorted.
pub fn merge_keyed_traces(buffers: Vec<Vec<KeyedTraceEvent>>) -> Vec<TraceEvent> {
    merge_keyed(buffers)
        .into_iter()
        .map(|(_, _, event)| event)
        .collect()
}

/// The keyed form of [`merge_keyed_traces`]: merges per-shard buffers
/// into one globally ordered stream but keeps the `(OrderKey, emit
/// index)` tags, which the flight recorder's divergence bisector needs
/// to name the first point where two runs disagree.
pub fn merge_keyed(buffers: Vec<Vec<KeyedTraceEvent>>) -> Vec<KeyedTraceEvent> {
    let mut all: Vec<KeyedTraceEvent> = buffers.into_iter().flatten().collect();
    all.sort_by_key(|(key, seq, _)| (*key, *seq));
    all
}

/// Why a delivery failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossCause {
    /// Overlapping transmissions at the receiver.
    Collision,
    /// Independent per-link packet-reception-rate loss.
    Phy,
    /// Application-layer drop (queue overflow model).
    AppDrop,
    /// Injected link fault (outage or degradation) from a
    /// [`FaultPlan`](crate::fault::FaultPlan).
    Fault,
    /// The delivery's transmission record had already been pruned when
    /// the delivery was processed. Defensive path in the engines: the
    /// packet is dropped with this structured event instead of
    /// panicking mid-run.
    Pruned,
}

impl LossCause {
    /// Stable lowercase label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            LossCause::Collision => "collision",
            LossCause::Phy => "phy",
            LossCause::AppDrop => "app_drop",
            LossCause::Fault => "fault",
            LossCause::Pruned => "pruned_tx",
        }
    }
}

/// One structured simulator event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node began a broadcast (time is the post-CSMA on-air start).
    Tx {
        /// On-air start time (after any CSMA backoff).
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Packet kind.
        kind: PacketKind,
        /// Payload length in bytes.
        bytes: usize,
        /// Transmission id correlating [`TraceEvent::Rx`]/[`TraceEvent::Loss`] entries.
        tx_id: u64,
    },
    /// A receiver decoded the packet and passed it to the protocol.
    Rx {
        /// Delivery time.
        at: SimTime,
        /// Receiving node.
        to: NodeId,
        /// Transmitting node.
        from: NodeId,
        /// Packet kind.
        kind: PacketKind,
        /// Payload length in bytes.
        bytes: usize,
        /// Transmission id.
        tx_id: u64,
    },
    /// A delivery failed at one receiver.
    Loss {
        /// Time of the (failed) delivery.
        at: SimTime,
        /// Intended receiver.
        to: NodeId,
        /// Transmitting node.
        from: NodeId,
        /// Packet kind.
        kind: PacketKind,
        /// Why it was lost.
        cause: LossCause,
        /// Transmission id.
        tx_id: u64,
    },
    /// A live timer fired.
    TimerFired {
        /// Firing time.
        at: SimTime,
        /// Owning node.
        node: NodeId,
        /// Which timer.
        timer: TimerId,
    },
    /// A node reported dissemination completion.
    NodeComplete {
        /// Completion time.
        at: SimTime,
        /// The node.
        node: NodeId,
    },
    /// A protocol-level annotation (SNACK round, page completion,
    /// scheduler decision, …) emitted via
    /// [`Context::note`](crate::node::Context::note).
    Note {
        /// Emission time.
        at: SimTime,
        /// Emitting node.
        node: NodeId,
        /// Stable event label (e.g. `"snack"`, `"page_complete"`).
        label: &'static str,
        /// First label-specific argument.
        a: u64,
        /// Second label-specific argument.
        b: u64,
    },
}

impl TraceEvent {
    /// The event's time stamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Tx { at, .. }
            | TraceEvent::Rx { at, .. }
            | TraceEvent::Loss { at, .. }
            | TraceEvent::TimerFired { at, .. }
            | TraceEvent::NodeComplete { at, .. }
            | TraceEvent::Note { at, .. } => at,
        }
    }

    /// Renders the event as a single JSON object (no trailing newline).
    /// Times are microseconds of virtual time.
    pub fn to_json(&self) -> String {
        match *self {
            TraceEvent::Tx {
                at,
                from,
                kind,
                bytes,
                tx_id,
            } => format!(
                r#"{{"t":{},"ev":"tx","node":{},"kind":"{}","bytes":{},"tx":{}}}"#,
                at.as_micros(),
                from.0,
                kind.label(),
                bytes,
                tx_id
            ),
            TraceEvent::Rx {
                at,
                to,
                from,
                kind,
                bytes,
                tx_id,
            } => format!(
                r#"{{"t":{},"ev":"rx","node":{},"from":{},"kind":"{}","bytes":{},"tx":{}}}"#,
                at.as_micros(),
                to.0,
                from.0,
                kind.label(),
                bytes,
                tx_id
            ),
            TraceEvent::Loss {
                at,
                to,
                from,
                kind,
                cause,
                tx_id,
            } => format!(
                r#"{{"t":{},"ev":"loss","node":{},"from":{},"kind":"{}","cause":"{}","tx":{}}}"#,
                at.as_micros(),
                to.0,
                from.0,
                kind.label(),
                cause.label(),
                tx_id
            ),
            TraceEvent::TimerFired { at, node, timer } => format!(
                r#"{{"t":{},"ev":"timer","node":{},"timer":{}}}"#,
                at.as_micros(),
                node.0,
                timer.0
            ),
            TraceEvent::NodeComplete { at, node } => format!(
                r#"{{"t":{},"ev":"complete","node":{}}}"#,
                at.as_micros(),
                node.0
            ),
            TraceEvent::Note {
                at,
                node,
                label,
                a,
                b,
            } => format!(
                r#"{{"t":{},"ev":"note","node":{},"label":"{}","a":{},"b":{}}}"#,
                at.as_micros(),
                node.0,
                label,
                a,
                b
            ),
        }
    }
}

/// Receives the structured event stream of a simulation run.
pub trait TraceSink {
    /// Called once per simulator event, in virtual-time order.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Bounded in-memory sink keeping the most recent `capacity` events.
///
/// The bound makes it safe to leave attached on long runs: memory use
/// is `O(capacity)` regardless of run length, and the tail of the event
/// stream — the part that explains a stall — is what survives.
#[derive(Debug)]
pub struct RingTrace {
    capacity: usize,
    /// Events seen over the whole run, including evicted ones.
    seen: u64,
    buf: VecDeque<TraceEvent>,
}

impl RingTrace {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingTrace {
            capacity: capacity.max(1),
            seen: 0,
            buf: VecDeque::new(),
        }
    }

    /// Total events recorded over the run (including evicted ones).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Default for RingTrace {
    /// A ring with a 4096-event window.
    fn default() -> Self {
        RingTrace::new(4096)
    }
}

impl TraceSink for RingTrace {
    fn record(&mut self, event: &TraceEvent) {
        self.seen += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
    }
}

/// A cloneable handle around a shared [`RingTrace`].
///
/// [`Simulator::set_trace`](crate::sim::Simulator::set_trace) takes
/// ownership of its sink, which makes post-run inspection awkward;
/// cloning a `SharedRingTrace`, handing one clone to the simulator and
/// keeping the other lets a test read the recorded events afterwards
/// without taking the sink back out.
#[derive(Clone, Debug, Default)]
pub struct SharedRingTrace(std::rc::Rc<std::cell::RefCell<RingTrace>>);

impl SharedRingTrace {
    /// A shared ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        SharedRingTrace(std::rc::Rc::new(std::cell::RefCell::new(RingTrace::new(
            capacity,
        ))))
    }

    /// Total events recorded (including evicted ones).
    pub fn seen(&self) -> u64 {
        self.0.borrow().seen()
    }

    /// Clones out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.borrow().events().cloned().collect()
    }
}

impl TraceSink for SharedRingTrace {
    fn record(&mut self, event: &TraceEvent) {
        self.0.borrow_mut().record(event);
    }
}

/// Streams every event as one JSON object per line (JSON Lines).
pub struct JsonlTrace<W: Write> {
    out: BufWriter<W>,
    lines: u64,
}

impl JsonlTrace<std::fs::File> {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTrace::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> JsonlTrace<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonlTrace {
            out: BufWriter::new(out),
            lines: 0,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> io::Result<W> {
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> TraceSink for JsonlTrace<W> {
    fn record(&mut self, event: &TraceEvent) {
        // Trace output is best-effort diagnostics; an I/O error must not
        // abort the simulation it observes.
        let _ = writeln!(self.out, "{}", event.to_json());
        self.lines += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::Note {
            at: SimTime::ZERO,
            node: NodeId(0),
            label: "test",
            a: i,
            b: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut ring = RingTrace::new(3);
        for i in 0..10 {
            ring.record(&ev(i));
        }
        assert_eq!(ring.seen(), 10);
        assert_eq!(ring.len(), 3);
        let kept: Vec<u64> = ring
            .events()
            .map(|e| match e {
                TraceEvent::Note { a, .. } => *a,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let mut ring = RingTrace::new(0);
        ring.record(&ev(1));
        ring.record(&ev(2));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn shared_ring_is_readable_from_a_clone() {
        let shared = SharedRingTrace::new(8);
        let mut sink = shared.clone();
        sink.record(&ev(5));
        assert_eq!(shared.seen(), 1);
        assert!(matches!(shared.events()[0], TraceEvent::Note { a: 5, .. }));
    }

    #[test]
    fn jsonl_emits_one_line_per_event() {
        let mut sink = JsonlTrace::new(Vec::new());
        sink.record(&TraceEvent::Tx {
            at: SimTime::ZERO + crate::time::Duration::from_micros(42),
            from: NodeId(3),
            kind: PacketKind::Data,
            bytes: 90,
            tx_id: 7,
        });
        sink.record(&TraceEvent::Loss {
            at: SimTime::ZERO,
            to: NodeId(1),
            from: NodeId(3),
            kind: PacketKind::Data,
            cause: LossCause::Collision,
            tx_id: 7,
        });
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""ev":"tx""#) && lines[0].contains(r#""t":42"#));
        assert!(lines[1].contains(r#""cause":"collision""#));
        // Every line is a self-contained object.
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn keyed_merge_orders_across_buffers() {
        let key = |t: u64, node: u32| OrderKey::timer(SimTime(t), NodeId(node), TimerId(0), 0);
        let a = vec![(key(10, 0), 0, ev(1)), (key(30, 0), 0, ev(3))];
        let b = vec![
            (key(20, 1), 0, ev(2)),
            (key(30, 1), 0, ev(4)),
            (key(30, 1), 1, ev(5)),
        ];
        let merged = merge_keyed_traces(vec![a, b]);
        let order: Vec<u64> = merged
            .iter()
            .map(|e| match e {
                TraceEvent::Note { a, .. } => *a,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn event_json_labels_are_stable() {
        let e = TraceEvent::NodeComplete {
            at: SimTime::ZERO,
            node: NodeId(9),
        };
        assert_eq!(e.to_json(), r#"{"t":0,"ev":"complete","node":9}"#);
        assert_eq!(LossCause::Phy.label(), "phy");
        assert_eq!(LossCause::AppDrop.label(), "app_drop");
    }
}

//! Conservatively-synchronized sharded parallel engine.
//!
//! The topology is tiled into square cells at least as wide as the
//! longest link ([`SpatialPartition`]), cells are grouped into
//! contiguous shards, and each shard runs its nodes on its own worker
//! thread with its own event queue. Virtual time advances in *lookahead
//! windows* of `L = MediumConfig::lookahead_us()` microseconds: every
//! packet spends at least `L` on the air, so a transmission decided in
//! window `w` cannot be heard before window `w + 1` — shards therefore
//! process a whole window independently and exchange cross-shard
//! deliveries and transmission announcements at a barrier between
//! windows, never needing rollback.
//!
//! # Shard-count independence
//!
//! Every rule below is *content-based* — derived from the topology, the
//! seed, and the fixed global window grid, never from the shard count —
//! so a fixed seed produces identical metrics, traces, and final images
//! at every shard count:
//!
//! * Events are ordered by [`OrderKey`], not insertion sequence.
//! * Each node draws from its own seeded RNG streams (protocol, CSMA
//!   backoff, reception), so draw sequences never depend on how nodes
//!   interleave globally.
//! * Same-cell transmissions affect CSMA/collision state immediately
//!   (cells are never split, so same-cell coupling is always
//!   thread-local); cross-cell transmissions become visible exactly one
//!   window boundary after their decision window, at every shard count
//!   — including shard count 1.
//! * Shards always finish a whole window before stopping, so stop
//!   decisions (completion, deadline, stall, violation) are taken at
//!   window granularity from globally merged state.
//!
//! The flip side: results are *not* bit-identical to the sequential
//! [`Simulator`](crate::sim::Simulator), whose single global RNG and
//! insertion-order tie-breaks cannot be partitioned. The sequential
//! engine remains the golden anchor; this engine is self-consistent
//! across shard counts and statistically equivalent (same medium model,
//! same per-draw distributions). See `DESIGN.md` §9.

use crate::builder::{SharedInvariant, SimBuilder};
use crate::capsule::{Capsule, CapsuleSpec, EngineDigest, RunDigest, SHARDED_ENGINE};
use crate::energy::EnergyLedger;
use crate::event::OrderKey;
use crate::fault::{FaultEvent, PPM_ONE};
use crate::metrics::Metrics;
use crate::node::{Action, Context, NodeId, PacketKind, Protocol};
use crate::noise::NoiseState;
use crate::sim::{DiagnosticDump, NodeDiag, Outcome, RunReport, SimConfig};
use crate::time::{Duration, SimTime};
use crate::topology::{SpatialPartition, Topology};
use crate::trace::{merge_keyed, merge_keyed_traces, KeyedTraceEvent, LossCause, TraceEvent};
use crate::violation::ViolationRecord;
use lrs_rng::DetRng;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError};

/// Result of a sharded run: the merged view a sequential caller would
/// have had, plus the per-node `harvest` extracted before the protocol
/// instances were dropped inside their worker threads.
pub struct ShardedRun<R> {
    /// Outcome, latency, and (when stalled/violated) a diagnostic dump.
    pub report: RunReport,
    /// Network-wide metric counters, merged across shards.
    pub metrics: Metrics,
    /// Per-node radio energy, merged across shards.
    pub energy: EnergyLedger,
    /// The merged trace, in deterministic global order. Empty unless a
    /// sink was attached or
    /// [`collect_trace`](SimBuilder::collect_trace) was enabled.
    pub trace: Vec<TraceEvent>,
    /// The same trace with each event's [`OrderKey`] and emit sequence
    /// attached — the content-based order replay digests are built
    /// over. Empty whenever `trace` is.
    pub keyed_trace: Vec<KeyedTraceEvent>,
    /// One harvest value per node, indexed by node id. May be shorter
    /// than the node count if a worker panicked mid-callback (the node
    /// being called when the panic hit cannot be harvested).
    pub harvest: Vec<R>,
    /// The shard count the run used.
    pub shards: usize,
}

/// Static, shard-count-independent facts every worker reads.
struct Plan<'a> {
    topology: &'a Topology,
    config: SimConfig,
    seed: u64,
    /// Owning shard of each node.
    assign: Vec<u32>,
    /// Spatial cell of each node (cells are never split across shards).
    cell: Vec<u32>,
    /// Per sender: bitmask of shards owning a cross-cell in-range
    /// receiver — the shards its transmission announcements must reach.
    announce_mask: Vec<u64>,
    /// Time-sorted fault schedule (indexed by [`OrderKey::fault`]).
    faults: Vec<FaultEvent>,
    /// Lookahead window length (µs).
    lookahead: u64,
    /// Virtual-time limit (µs): min of the run deadline and
    /// [`SimConfig::max_sim_time`].
    deadline: u64,
    /// Whether workers keep the full keyed trace (sink attached or
    /// collection requested), as opposed to only the diagnostic ring.
    collect: bool,
}

/// A transmission another node may collide with or defer to.
#[derive(Clone, Copy, Debug)]
struct TxRec {
    id: u64,
    from: NodeId,
    start: u64,
    end: u64,
    /// Window of the *broadcast decision* — cross-cell visibility is
    /// granted strictly after this window, at every shard count.
    action_window: u64,
}

/// Cross-shard mail exchanged at window barriers.
enum Inbound {
    Deliver {
        at: u64,
        to: NodeId,
        from: NodeId,
        data: Arc<Vec<u8>>,
        kind: PacketKind,
        tx_id: u64,
    },
    Announce(TxRec),
}

/// What each shard reports at a barrier, for the coordinator.
#[derive(Clone, Default)]
struct Status {
    /// Earliest pending event, if any (after draining the inbox).
    next: Option<OrderKey>,
    /// All local nodes complete or permanently failed.
    satisfied: bool,
    /// Sum of live local nodes' [`Protocol::progress`].
    progress: u128,
    /// Latest event time this shard has processed (µs).
    max_processed: u64,
    /// First local invariant violation, by key order.
    violation: Option<(OrderKey, ViolationRecord)>,
}

/// The coordinator's verdict after each window.
#[derive(Clone)]
enum Control {
    Continue {
        window: u64,
    },
    Stop {
        outcome: Outcome,
        final_time: SimTime,
        violation: Option<ViolationRecord>,
        reason: Option<String>,
    },
}

struct Shared {
    barrier: Barrier,
    inboxes: Vec<Mutex<Vec<Inbound>>>,
    statuses: Vec<Mutex<Status>>,
    control: Mutex<Control>,
    /// First worker panic, surfaced as [`Outcome::WorkerPanicked`]
    /// instead of the poisoned-mutex cascade the other workers would
    /// otherwise die with.
    panic: Mutex<Option<String>>,
}

/// Locks a mutex whether or not a panicking thread poisoned it. Every
/// engine lock goes through this: shared state here is only ever
/// replaced wholesale (never left half-written), so a poisoned value is
/// still coherent, and propagating the poison would bury the original
/// panic under "control poisoned" noise from every surviving worker.
fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Records the FIRST worker panic; later ones are usually cascades, so
/// the surfaced message stays the root cause.
fn record_panic(shared: &Shared, sid: usize, payload: &(dyn std::any::Any + Send), during: &str) {
    let mut slot = lock_tolerant(&shared.panic);
    if slot.is_none() {
        *slot = Some(format!(
            "shard {sid} worker panicked while {during}: {}",
            panic_message(payload)
        ));
    }
}

/// Barrier-participation loop for a worker whose node construction
/// panicked. std's [`Barrier`] has no poisoning: a participant that
/// simply exits would hang every live shard forever, so the dead worker
/// keeps the window protocol alive — reporting an always-satisfied
/// empty shard — until the coordinator sees the recorded panic and
/// publishes a stop verdict. If shard 0 itself is the dead one, it
/// must still coordinate, so it stops the run directly.
fn zombie_run(sid: usize, shared: &Shared) {
    loop {
        if matches!(*lock_tolerant(&shared.control), Control::Stop { .. }) {
            return;
        }
        shared.barrier.wait();
        lock_tolerant(&shared.inboxes[sid]).clear();
        *lock_tolerant(&shared.statuses[sid]) = Status {
            satisfied: true,
            ..Status::default()
        };
        shared.barrier.wait();
        if sid == 0 {
            let final_time = SimTime(
                shared
                    .statuses
                    .iter()
                    .map(|s| lock_tolerant(s).max_processed)
                    .max()
                    .unwrap_or(0),
            );
            let reason = lock_tolerant(&shared.panic).clone();
            *lock_tolerant(&shared.control) = Control::Stop {
                outcome: Outcome::WorkerPanicked,
                final_time,
                violation: None,
                reason,
            };
        }
        shared.barrier.wait();
    }
}

/// An event in a shard's queue, ordered purely by content.
enum SEvent {
    Fault(FaultEvent),
    Init(NodeId),
    Deliver {
        to: NodeId,
        from: NodeId,
        data: Arc<Vec<u8>>,
        kind: PacketKind,
        tx_id: u64,
    },
    Timer {
        node: NodeId,
        timer: crate::node::TimerId,
        generation: u64,
    },
}

struct Keyed {
    key: OrderKey,
    event: SEvent,
}

impl PartialEq for Keyed {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Keyed {}
impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Keyed {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// Fault overlay on one directed link (receiver-shard state).
#[derive(Clone, Copy)]
struct LinkFault {
    up: bool,
    ppm: u32,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            up: true,
            ppm: PPM_ONE,
        }
    }
}

/// Everything a worker sends back to the main thread when it exits.
struct WorkerOut<R> {
    metrics: Metrics,
    energy: EnergyLedger,
    trace_full: Vec<KeyedTraceEvent>,
    trace_ring: Vec<KeyedTraceEvent>,
    harvest: Vec<(u32, R)>,
    diags: Vec<NodeDiag>,
    queue_len: usize,
    pending_timers: usize,
}

/// Entry point called by [`SimBuilder::run_sharded`].
pub(crate) fn run<P, F, R, H>(
    builder: SimBuilder<P, F>,
    deadline: Duration,
    harvest: H,
) -> ShardedRun<R>
where
    P: Protocol,
    F: Fn(NodeId) -> P + Sync,
    R: Send,
    H: Fn(NodeId, &P) -> R + Sync,
{
    let SimBuilder {
        topology,
        seed,
        make_node,
        config,
        mut trace,
        invariant,
        faults,
        shards,
        collect_trace,
        capsule_path,
        scenario,
    } = builder;
    let capsule_spec = capsule_path.map(|path| CapsuleSpec { path, scenario });
    let n = topology.len();
    let mut deadline_us = deadline.as_micros();
    if let Some(limit) = config.max_sim_time {
        deadline_us = deadline_us.min(limit.as_micros());
    }
    if n == 0 {
        return ShardedRun {
            report: RunReport {
                outcome: Outcome::Complete,
                all_complete: true,
                final_time: SimTime::ZERO,
                latency: None,
                diagnostic: None,
            },
            metrics: Metrics::new(),
            energy: EnergyLedger::new(0),
            trace: Vec::new(),
            keyed_trace: Vec::new(),
            harvest: Vec::new(),
            shards,
        };
    }

    let partition = SpatialPartition::new(&topology);
    let assign = partition.shard_assignment(shards);
    let cell: Vec<u32> = (0..n)
        .map(|i| partition.cell_of(NodeId(i as u32)))
        .collect();
    let mut announce_mask = vec![0u64; n];
    for s in 0..n {
        for link in topology.links_from(NodeId(s as u32)) {
            if cell[link.to.index()] != cell[s] {
                announce_mask[s] |= 1u64 << assign[link.to.index()];
            }
        }
    }
    let mut fault_events: Vec<FaultEvent> = faults.events().to_vec();
    fault_events.sort_by_key(FaultEvent::at);
    let plan = Plan {
        topology: &topology,
        config,
        seed,
        assign,
        cell,
        announce_mask,
        faults: fault_events,
        lookahead: config.medium.lookahead_us(),
        deadline: deadline_us,
        collect: collect_trace || trace.is_some(),
    };
    let shared = Shared {
        barrier: Barrier::new(shards),
        inboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
        statuses: (0..shards).map(|_| Mutex::new(Status::default())).collect(),
        control: Mutex::new(Control::Continue { window: 0 }),
        panic: Mutex::new(None),
    };

    let mut outputs: Vec<WorkerOut<R>> = Vec::with_capacity(shards);
    let mut join_panic: Option<String> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|sid| {
                let plan = &plan;
                let shared = &shared;
                let make_node = &make_node;
                let harvest = &harvest;
                let invariant = invariant.clone();
                scope.spawn(move || {
                    // Node construction runs user code too; a panic here
                    // would otherwise kill the thread before its first
                    // barrier wait and hang every other shard.
                    let built = catch_unwind(AssertUnwindSafe(|| {
                        Worker::new(plan, sid as u32, make_node, invariant)
                    }));
                    match built {
                        Ok(mut worker) => {
                            worker.run(shared);
                            worker.finish(shared, harvest)
                        }
                        Err(payload) => {
                            record_panic(shared, sid, &*payload, "constructing nodes");
                            zombie_run(sid, shared);
                            WorkerOut {
                                metrics: Metrics::new(),
                                energy: EnergyLedger::new(plan.topology.len()),
                                trace_full: Vec::new(),
                                trace_ring: Vec::new(),
                                harvest: Vec::new(),
                                diags: Vec::new(),
                                queue_len: 0,
                                pending_timers: 0,
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(out) => outputs.push(out),
                // Harvest closures run after the stop verdict, outside
                // the catch_unwind umbrella; no barriers remain, so a
                // panic here cannot hang anyone — record and continue.
                Err(payload) => {
                    if join_panic.is_none() {
                        join_panic = Some(panic_message(&*payload));
                    }
                }
            }
        }
    });

    let control = shared
        .control
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let recorded_panic = shared
        .panic
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let (mut outcome, final_time, violation, mut reason) = match control {
        Control::Stop {
            outcome,
            final_time,
            violation,
            reason,
        } => (outcome, final_time, violation, reason),
        // Only reachable if a worker died in a way that bypassed every
        // zombie path; surface it rather than panic over it.
        Control::Continue { .. } => (Outcome::WorkerPanicked, SimTime::ZERO, None, None),
    };
    if let Some(msg) = join_panic {
        if outcome != Outcome::WorkerPanicked {
            outcome = Outcome::WorkerPanicked;
            reason = Some(format!("shard worker panicked during harvest: {msg}"));
        }
    }
    if outcome == Outcome::WorkerPanicked && reason.is_none() {
        reason = recorded_panic.or_else(|| Some("shard worker panicked".to_string()));
    }

    let mut metrics = Metrics::new();
    let mut energy = EnergyLedger::new(n);
    let mut full = Vec::new();
    let mut rings = Vec::new();
    let mut harvested: Vec<(u32, R)> = Vec::with_capacity(n);
    let mut diags: Vec<NodeDiag> = Vec::new();
    let mut queue_len = 0;
    let mut pending_timers = 0;
    for out in outputs {
        metrics.merge(&out.metrics);
        energy.merge(&out.energy);
        full.push(out.trace_full);
        rings.push(out.trace_ring);
        harvested.extend(out.harvest);
        diags.extend(out.diags);
        queue_len += out.queue_len;
        pending_timers += out.pending_timers;
    }
    harvested.sort_by_key(|(i, _)| *i);
    let harvest: Vec<R> = harvested.into_iter().map(|(_, r)| r).collect();

    let keyed = merge_keyed(full);
    if let Some(sink) = trace.as_mut() {
        for (_, _, event) in &keyed {
            sink.record(event);
        }
        sink.flush();
    }
    // `keyed` is empty unless `plan.collect` — workers only fill
    // `trace_full` when collecting — so these are both empty otherwise.
    let merged: Vec<TraceEvent> = keyed.iter().map(|(_, _, event)| event.clone()).collect();

    let diagnostic = if outcome.is_diagnostic() {
        diags.sort_by_key(|d| d.node.0);
        let mut recent = merge_keyed_traces(rings);
        let keep = config.diag_events.min(recent.len());
        recent.drain(..recent.len() - keep);
        Some(DiagnosticDump {
            at: final_time,
            reason: reason.unwrap_or_default(),
            queue_len,
            pending_timers,
            nodes: diags,
            recent,
            violation: violation.clone(),
        })
    } else {
        None
    };

    let all_complete = outcome == Outcome::Complete;
    let latency = if all_complete {
        metrics.dissemination_latency()
    } else {
        None
    };
    let report = RunReport {
        outcome,
        all_complete,
        final_time,
        latency,
        diagnostic,
    };
    if report.outcome.is_diagnostic() {
        if let Some(spec) = capsule_spec.as_ref() {
            let digest = if plan.collect {
                RunDigest::compute(&report, &metrics, &merged, Some(&keyed))
            } else {
                RunDigest::metrics_only(report.outcome, report.final_time, &metrics)
            };
            spec.write(&Capsule {
                seed,
                engine: SHARDED_ENGINE.to_string(),
                shards,
                deadline,
                config,
                topology: topology.clone(),
                faults: faults.clone(),
                scenario: spec.scenario.clone(),
                digests: vec![EngineDigest {
                    engine: SHARDED_ENGINE.to_string(),
                    shards,
                    digest,
                }],
            });
        }
    }
    ShardedRun {
        report,
        metrics,
        energy,
        trace: merged,
        keyed_trace: keyed,
        harvest,
        shards,
    }
}

/// One shard's worker state. Vectors are full-length (indexed by node
/// id) with only local entries populated — simpler and cache-friendly
/// versus id remapping.
struct Worker<'a, P, F> {
    plan: &'a Plan<'a>,
    sid: u32,
    make_node: &'a F,
    local: Vec<bool>,
    protocols: Vec<Option<P>>,
    /// Protocol-visible RNG, seeded exactly like the sequential engine.
    rngs: Vec<Option<DetRng>>,
    /// CSMA backoff draws (sender-side stream).
    tx_rngs: Vec<Option<DetRng>>,
    /// PRR / noise / app-loss / fault-degrade draws (receiver-side).
    rx_rngs: Vec<Option<DetRng>>,
    noise: Vec<Option<NoiseState>>,
    busy_until: Vec<u64>,
    timer_gens: HashMap<(u32, u32), u64>,
    queue: BinaryHeap<Reverse<Keyed>>,
    /// Known transmissions: local sends plus announced remote ones.
    txs: Vec<TxRec>,
    /// Per-sender transmission counter; ids are `(node << 32) | count`.
    tx_counts: Vec<u64>,
    metrics: Metrics,
    energy: EnergyLedger,
    complete: Vec<bool>,
    failed: Vec<bool>,
    pending_reboots: Vec<u32>,
    link_state: HashMap<(u32, u32), LinkFault>,
    drift_ppm: Vec<u32>,
    invariant: Option<SharedInvariant<P>>,
    violation: Option<(OrderKey, ViolationRecord)>,
    outbox: Vec<(usize, Inbound)>,
    trace_full: Vec<KeyedTraceEvent>,
    trace_ring: VecDeque<KeyedTraceEvent>,
    cur_key: OrderKey,
    emit_seq: u32,
    now: SimTime,
    max_processed: u64,
    /// Coordinator-only watchdog state (shard 0).
    watch_progress: u128,
    watch_since: u64,
    global_max: u64,
}

impl<'a, P, F> Worker<'a, P, F>
where
    P: Protocol,
    F: Fn(NodeId) -> P,
{
    fn new(
        plan: &'a Plan<'a>,
        sid: u32,
        make_node: &'a F,
        invariant: Option<SharedInvariant<P>>,
    ) -> Self {
        let n = plan.topology.len();
        let seed = plan.seed;
        let local: Vec<bool> = (0..n).map(|i| plan.assign[i] == sid).collect();
        let mut worker = Worker {
            plan,
            sid,
            make_node,
            protocols: (0..n).map(|_| None).collect(),
            rngs: (0..n).map(|_| None).collect(),
            tx_rngs: (0..n).map(|_| None).collect(),
            rx_rngs: (0..n).map(|_| None).collect(),
            noise: (0..n).map(|_| None).collect(),
            busy_until: vec![0; n],
            timer_gens: HashMap::new(),
            queue: BinaryHeap::new(),
            txs: Vec::new(),
            tx_counts: vec![0; n],
            metrics: Metrics::new(),
            energy: EnergyLedger::new(n),
            complete: vec![false; n],
            failed: vec![false; n],
            pending_reboots: vec![0; n],
            link_state: HashMap::new(),
            drift_ppm: vec![PPM_ONE; n],
            invariant,
            violation: None,
            outbox: Vec::new(),
            trace_full: Vec::new(),
            trace_ring: VecDeque::new(),
            cur_key: OrderKey::init(NodeId(0)),
            emit_seq: 0,
            now: SimTime::ZERO,
            max_processed: 0,
            watch_progress: 0,
            watch_since: 0,
            global_max: 0,
            local,
        };
        for i in 0..n {
            if !worker.local[i] {
                continue;
            }
            let id = NodeId(i as u32);
            worker.protocols[i] = Some((worker.make_node)(id));
            // The protocol stream matches the sequential engine's, so
            // node behavior is drawn from the same distribution; the tx
            // and rx streams replace the sequential engine's single
            // global medium RNG with per-node streams whose draw order
            // cannot depend on global interleaving.
            worker.rngs[i] = Some(DetRng::seed_from_u64(
                seed.wrapping_mul(0x9e3779b97f4a7c15) ^ (i as u64),
            ));
            worker.tx_rngs[i] = Some(DetRng::seed_from_u64(
                seed.wrapping_mul(0xff51afd7ed558ccd) ^ (i as u64),
            ));
            worker.rx_rngs[i] = Some(DetRng::seed_from_u64(
                seed.wrapping_mul(0xc4ceb9fe1a85ec53) ^ (i as u64),
            ));
            worker.noise[i] = Some(NoiseState::new(plan.config.medium.noise));
            worker.queue.push(Reverse(Keyed {
                key: OrderKey::init(id),
                event: SEvent::Init(id),
            }));
        }
        for (index, fault) in plan.faults.iter().enumerate() {
            let owner = fault.owner();
            if plan.assign[owner.index()] != sid {
                continue;
            }
            if let FaultEvent::Reboot { node, .. } = fault {
                worker.pending_reboots[node.index()] += 1;
            }
            worker.queue.push(Reverse(Keyed {
                key: OrderKey::fault(fault.at(), index as u64),
                event: SEvent::Fault(*fault),
            }));
        }
        worker
    }

    /// The barrier-synchronized main loop.
    ///
    /// Window processing runs protocol callbacks (user code), so it is
    /// wrapped in `catch_unwind`: a panicking worker turns into a
    /// *zombie* that keeps the barrier protocol alive (std's [`Barrier`]
    /// has no poisoning — a missing participant would hang every live
    /// shard forever) while the coordinator surfaces the recorded panic
    /// as [`Outcome::WorkerPanicked`].
    fn run(&mut self, shared: &Shared) {
        let mut dead = false;
        loop {
            let control = lock_tolerant(&shared.control).clone();
            let window = match control {
                Control::Stop { .. } => return,
                Control::Continue { window } => window,
            };
            if !dead {
                let processed = catch_unwind(AssertUnwindSafe(|| self.process_window(window)));
                if let Err(payload) = processed {
                    dead = true;
                    // Never publish a half-processed window.
                    self.outbox.clear();
                    record_panic(shared, self.sid as usize, &*payload, "processing a window");
                }
            }
            // Phase 1: publish cross-shard mail produced by this window.
            for (target, item) in self.outbox.drain(..) {
                lock_tolerant(&shared.inboxes[target]).push(item);
            }
            shared.barrier.wait();
            // Phase 2: absorb mail, then report status (the status must
            // see deliveries that just arrived, or the coordinator would
            // declare a drained queue that is about to refill).
            if dead {
                // Zombie: drop incoming mail and report an
                // always-satisfied idle shard; the coordinator stops the
                // run as soon as it sees the recorded panic.
                lock_tolerant(&shared.inboxes[self.sid as usize]).clear();
                *lock_tolerant(&shared.statuses[self.sid as usize]) = Status {
                    satisfied: true,
                    max_processed: self.max_processed,
                    violation: self.violation.clone(),
                    ..Status::default()
                };
            } else {
                self.drain_inbox(shared);
                let status = self.status();
                *lock_tolerant(&shared.statuses[self.sid as usize]) = status;
            }
            shared.barrier.wait();
            // Phase 3: shard 0 merges statuses into a verdict. A panic
            // in the coordinator itself must still produce a verdict or
            // phase-1 readers would spin on a stale Continue.
            if self.sid == 0 {
                let verdict = match catch_unwind(AssertUnwindSafe(|| self.coordinate(shared))) {
                    Ok(verdict) => verdict,
                    Err(payload) => Control::Stop {
                        outcome: Outcome::WorkerPanicked,
                        final_time: SimTime(self.global_max),
                        violation: None,
                        reason: Some(format!(
                            "coordinator panicked: {}",
                            panic_message(&*payload)
                        )),
                    },
                };
                *lock_tolerant(&shared.control) = verdict;
            }
            shared.barrier.wait();
        }
    }

    /// Processes every local event in `[window·L, (window+1)·L)` that
    /// does not exceed the deadline, in [`OrderKey`] order.
    fn process_window(&mut self, window: u64) {
        let end = (window + 1).saturating_mul(self.plan.lookahead);
        while let Some(Reverse(top)) = self.queue.peek() {
            if top.key.at >= end || top.key.at > self.plan.deadline {
                break;
            }
            let Keyed { key, event } = self.queue.pop().expect("peeked").0;
            self.cur_key = key;
            self.emit_seq = 0;
            self.now = SimTime(key.at);
            self.max_processed = self.max_processed.max(key.at);
            match event {
                SEvent::Fault(fault) => self.apply_fault(fault),
                SEvent::Init(node) => self.with_node(node.index(), |n, ctx| n.on_init(ctx)),
                SEvent::Deliver {
                    to,
                    from,
                    data,
                    kind,
                    tx_id,
                } => self.deliver(window, to, from, &data, kind, tx_id),
                SEvent::Timer {
                    node,
                    timer,
                    generation,
                } => {
                    if self.failed[node.index()] {
                        continue;
                    }
                    let current = self
                        .timer_gens
                        .get(&(node.0, timer.0))
                        .copied()
                        .unwrap_or(0);
                    if generation == current {
                        self.emit(TraceEvent::TimerFired {
                            at: self.now,
                            node,
                            timer,
                        });
                        self.with_node(node.index(), |n, ctx| n.on_timer(ctx, timer));
                    }
                }
            }
        }
        // Transmissions that can no longer overlap any delivery (same
        // 400 ms horizon as the sequential medium).
        let cutoff = (window.saturating_mul(self.plan.lookahead)).saturating_sub(400_000);
        self.txs.retain(|t| t.end >= cutoff);
    }

    fn deliver(
        &mut self,
        window: u64,
        to: NodeId,
        from: NodeId,
        data: &Arc<Vec<u8>>,
        kind: PacketKind,
        tx_id: u64,
    ) {
        if self.failed[to.index()] {
            return;
        }
        let at = self.now;
        let loss = |cause| TraceEvent::Loss {
            at,
            to,
            from,
            kind,
            cause,
            tx_id,
        };
        if self.fault_blocks_delivery(from, to) {
            self.metrics.count_phy_loss();
            self.emit(loss(LossCause::Fault));
            return;
        }
        // A fault plan can in principle prune a transmission whose
        // delivery is already queued across a shard boundary (the
        // retention horizon and the inbox hand-off race at the window
        // edge); dropping the orphan with a structured loss event is
        // always safer than panicking the worker.
        let Some(tx) = self.txs.iter().find(|t| t.id == tx_id).copied() else {
            self.metrics.count_phy_loss();
            self.emit(loss(LossCause::Pruned));
            return;
        };
        if self.plan.config.medium.collisions && self.collided(&tx, to, window) {
            self.metrics.count_collision();
            self.emit(loss(LossCause::Collision));
            return;
        }
        let prr = self
            .plan
            .topology
            .links_from(from)
            .iter()
            .find(|l| l.to == to)
            .map(|l| l.prr)
            .unwrap_or(0.0);
        let rng = self.rx_rngs[to.index()].as_mut().expect("local rx rng");
        let noise = self.noise[to.index()].as_mut().expect("local noise");
        let effective = prr * noise.factor_at(at, rng);
        if effective < 1.0 && !rng.gen_bool(effective.clamp(0.0, 1.0)) {
            self.metrics.count_phy_loss();
            self.emit(loss(LossCause::Phy));
            return;
        }
        if self.plan.config.medium.app_loss > 0.0 && rng.gen_bool(self.plan.config.medium.app_loss)
        {
            self.energy.record_rx(to, data.len());
            self.metrics.count_app_drop();
            self.emit(loss(LossCause::AppDrop));
            return;
        }
        self.metrics.count_rx(data.len());
        self.energy.record_rx(to, data.len());
        self.emit(TraceEvent::Rx {
            at,
            to,
            from,
            kind,
            bytes: data.len(),
            tx_id,
        });
        self.with_node(to.index(), |n, ctx| n.on_packet(ctx, from, data));
        self.check_invariant(to);
    }

    /// Whether another known transmission destroys this reception.
    ///
    /// Same-cell interferers are always visible (they are thread-local
    /// and key-ordered); cross-cell interferers count only if their
    /// decision window is strictly before the delivery window — the
    /// same horizon at which their announcements arrive, at every shard
    /// count. Cross-cell interference decided *within* the delivery
    /// window is invisible by construction: a bounded approximation the
    /// sequential engine does not make (`DESIGN.md` §9).
    fn collided(&self, tx: &TxRec, to: NodeId, window: u64) -> bool {
        let to_cell = self.plan.cell[to.index()];
        self.txs.iter().any(|other| {
            other.id != tx.id
                && other.start < tx.end
                && other.end > tx.start
                && (other.from == to || self.plan.topology.in_range(other.from, to))
                && (self.plan.cell[other.from.index()] == to_cell || other.action_window < window)
        })
    }

    fn fault_blocks_delivery(&mut self, from: NodeId, to: NodeId) -> bool {
        match self.link_state.get(&(from.0, to.0)).copied() {
            Some(f) if !f.up => true,
            Some(f) if f.ppm < PPM_ONE => {
                let rng = self.rx_rngs[to.index()].as_mut().expect("local rx rng");
                !rng.gen_bool(f.ppm as f64 / PPM_ONE as f64)
            }
            _ => false,
        }
    }

    fn apply_fault(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Crash { node, .. } => {
                let i = node.index();
                if self.failed[i] {
                    return;
                }
                self.failed[i] = true;
                self.emit(TraceEvent::Note {
                    at: self.now,
                    node,
                    label: "fault_crash",
                    a: 0,
                    b: 0,
                });
            }
            FaultEvent::Reboot { node, .. } => {
                let i = node.index();
                self.pending_reboots[i] = self.pending_reboots[i].saturating_sub(1);
                if !self.failed[i] {
                    return;
                }
                self.failed[i] = false;
                for ((owner, _), gen) in self.timer_gens.iter_mut() {
                    if *owner == node.0 {
                        *gen += 1;
                    }
                }
                self.complete[i] = false;
                self.emit(TraceEvent::Note {
                    at: self.now,
                    node,
                    label: "fault_reboot",
                    a: 0,
                    b: 0,
                });
                self.with_node(i, |n, ctx| n.on_reboot(ctx));
            }
            FaultEvent::LinkDown { from, to, .. } => {
                self.link_state.entry((from.0, to.0)).or_default().up = false;
            }
            FaultEvent::LinkUp { from, to, .. } => {
                self.link_state.entry((from.0, to.0)).or_default().up = true;
            }
            FaultEvent::Degrade { from, to, ppm, .. } => {
                self.link_state.entry((from.0, to.0)).or_default().ppm = ppm;
            }
            FaultEvent::ClockDrift { node, ppm, .. } => {
                self.drift_ppm[node.index()] = ppm;
            }
        }
    }

    fn with_node(&mut self, i: usize, f: impl FnOnce(&mut P, &mut Context<'_>)) {
        let mut node = self.protocols[i].take().expect("re-entrant node callback");
        let mut actions = Vec::new();
        {
            let cfg = &self.plan.config.medium;
            let mut ctx = Context::new(
                self.now,
                NodeId(i as u32),
                self.rngs[i].as_mut().expect("local ctx rng"),
                &mut actions,
                cfg.us_per_byte,
                cfg.per_packet_overhead_us,
            );
            f(&mut node, &mut ctx);
        }
        if !self.complete[i] && node.is_complete() {
            self.complete[i] = true;
            self.metrics.record_completion(NodeId(i as u32), self.now);
            self.emit(TraceEvent::NodeComplete {
                at: self.now,
                node: NodeId(i as u32),
            });
        }
        self.protocols[i] = Some(node);
        for action in actions {
            self.apply_action(NodeId(i as u32), action);
        }
    }

    fn apply_action(&mut self, from: NodeId, action: Action) {
        match action {
            Action::Broadcast { kind, data } => self.broadcast(from, kind, data),
            Action::SetTimer { timer, delay } => {
                let ppm = self.drift_ppm[from.index()];
                let delay = if ppm == PPM_ONE {
                    delay
                } else {
                    Duration::from_micros(
                        (delay.as_micros() as u128 * ppm as u128 / PPM_ONE as u128) as u64,
                    )
                };
                let gen = self.timer_gens.entry((from.0, timer.0)).or_insert(0);
                *gen += 1;
                let at = self.now + delay;
                self.queue.push(Reverse(Keyed {
                    key: OrderKey::timer(at, from, timer, *gen),
                    event: SEvent::Timer {
                        node: from,
                        timer,
                        generation: *gen,
                    },
                }));
            }
            Action::CancelTimer { timer } => {
                *self.timer_gens.entry((from.0, timer.0)).or_insert(0) += 1;
            }
            Action::Note { label, a, b } => {
                self.emit(TraceEvent::Note {
                    at: self.now,
                    node: from,
                    label,
                    a,
                    b,
                });
            }
        }
    }

    fn broadcast(&mut self, from: NodeId, kind: PacketKind, data: Vec<u8>) {
        let i = from.index();
        if self.failed[i] {
            return;
        }
        let medium = &self.plan.config.medium;
        self.metrics.count_tx(kind, data.len());
        self.energy.record_tx(from, data.len());
        let mut start = self.now.as_micros();
        if medium.csma {
            start = start.max(self.busy_until[i]);
            if medium.max_backoff_us > 0 {
                let rng = self.tx_rngs[i].as_mut().expect("local tx rng");
                start += rng.gen_range(0..=medium.max_backoff_us);
            }
        }
        let end = start + medium.airtime(data.len()).as_micros();
        let tx_id = ((from.0 as u64) << 32) | self.tx_counts[i];
        self.tx_counts[i] += 1;
        let action_window = self.now.as_micros() / self.plan.lookahead;
        let rec = TxRec {
            id: tx_id,
            from,
            start,
            end,
            action_window,
        };
        self.txs.push(rec);
        self.emit(TraceEvent::Tx {
            at: SimTime(start),
            from,
            kind,
            bytes: data.len(),
            tx_id,
        });
        // Same-cell hearers (always this shard) see the channel busy
        // immediately; cross-cell hearers learn at the next barrier via
        // the announcement, at every shard count.
        self.busy_until[i] = self.busy_until[i].max(end);
        let from_cell = self.plan.cell[i];
        let shared = Arc::new(data);
        for link in self.plan.topology.links_from(from) {
            let t = link.to.index();
            let same_cell = self.plan.cell[t] == from_cell;
            if same_cell {
                self.busy_until[t] = self.busy_until[t].max(end);
                self.queue.push(Reverse(Keyed {
                    key: OrderKey::deliver(SimTime(end), link.to, from, tx_id),
                    event: SEvent::Deliver {
                        to: link.to,
                        from,
                        data: Arc::clone(&shared),
                        kind,
                        tx_id,
                    },
                }));
            } else {
                let target = self.plan.assign[t] as usize;
                if target == self.sid as usize {
                    // Same shard, different cell: the delivery can go
                    // straight into the local queue (it lands in a later
                    // window regardless), but CSMA/collision visibility
                    // still flows through the announcement path below.
                    self.queue.push(Reverse(Keyed {
                        key: OrderKey::deliver(SimTime(end), link.to, from, tx_id),
                        event: SEvent::Deliver {
                            to: link.to,
                            from,
                            data: Arc::clone(&shared),
                            kind,
                            tx_id,
                        },
                    }));
                } else {
                    self.outbox.push((
                        target,
                        Inbound::Deliver {
                            at: end,
                            to: link.to,
                            from,
                            data: Arc::clone(&shared),
                            kind,
                            tx_id,
                        },
                    ));
                }
            }
        }
        let mut mask = self.plan.announce_mask[i];
        while mask != 0 {
            let target = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.outbox.push((target, Inbound::Announce(rec)));
        }
    }

    fn drain_inbox(&mut self, shared: &Shared) {
        let items = std::mem::take(&mut *lock_tolerant(&shared.inboxes[self.sid as usize]));
        for item in items {
            match item {
                Inbound::Deliver {
                    at,
                    to,
                    from,
                    data,
                    kind,
                    tx_id,
                } => {
                    self.queue.push(Reverse(Keyed {
                        key: OrderKey::deliver(SimTime(at), to, from, tx_id),
                        event: SEvent::Deliver {
                            to,
                            from,
                            data,
                            kind,
                            tx_id,
                        },
                    }));
                }
                Inbound::Announce(rec) => {
                    // Deferred cross-cell CSMA visibility; applies to
                    // local hearers whether or not the sender shares
                    // this shard (self-announces reach here too).
                    let from_cell = self.plan.cell[rec.from.index()];
                    for link in self.plan.topology.links_from(rec.from) {
                        let t = link.to.index();
                        if self.local[t] && self.plan.cell[t] != from_cell {
                            self.busy_until[t] = self.busy_until[t].max(rec.end);
                        }
                    }
                    // Local senders' records are already in the table.
                    if self.plan.assign[rec.from.index()] != self.sid {
                        self.txs.push(rec);
                    }
                }
            }
        }
    }

    fn check_invariant(&mut self, node: NodeId) {
        if self.violation.is_some() {
            return;
        }
        let Some(check) = self.invariant.as_ref() else {
            return;
        };
        if let Some(p) = self.protocols[node.index()].as_ref() {
            if let Err(violation) = check(p, node) {
                self.violation = Some((
                    self.cur_key,
                    ViolationRecord {
                        at: self.now,
                        node,
                        violation,
                    },
                ));
            }
        }
    }

    fn status(&self) -> Status {
        let satisfied = (0..self.local.len())
            .filter(|&i| self.local[i])
            .all(|i| self.complete[i] || (self.failed[i] && self.pending_reboots[i] == 0));
        let progress: u128 = self
            .protocols
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.local[i] && !self.failed[i])
            .filter_map(|(_, p)| p.as_ref())
            .map(|p| p.progress() as u128)
            .sum();
        Status {
            next: self.queue.peek().map(|Reverse(k)| k.key),
            satisfied,
            progress,
            max_processed: self.max_processed,
            violation: self.violation.clone(),
        }
    }

    /// Shard 0 only: merge all statuses into the next [`Control`].
    fn coordinate(&mut self, shared: &Shared) -> Control {
        let statuses: Vec<Status> = shared
            .statuses
            .iter()
            .map(|s| lock_tolerant(s).clone())
            .collect();
        for s in &statuses {
            self.global_max = self.global_max.max(s.max_processed);
        }
        let final_time = SimTime(self.global_max);
        // A recorded panic preempts every other verdict: zombie shards
        // report themselves satisfied to keep the barriers moving, so
        // without this check a panic could masquerade as Complete.
        if let Some(reason) = lock_tolerant(&shared.panic).clone() {
            return Control::Stop {
                outcome: Outcome::WorkerPanicked,
                final_time,
                violation: None,
                reason: Some(reason),
            };
        }
        if let Some((_, record)) = statuses
            .iter()
            .filter_map(|s| s.violation.as_ref())
            .min_by_key(|(key, _)| *key)
        {
            return Control::Stop {
                outcome: Outcome::InvariantViolated,
                final_time,
                reason: Some(record.to_string()),
                violation: Some(record.clone()),
            };
        }
        if statuses.iter().all(|s| s.satisfied) {
            return Control::Stop {
                outcome: Outcome::Complete,
                final_time,
                violation: None,
                reason: None,
            };
        }
        let Some(min) = statuses.iter().filter_map(|s| s.next).min() else {
            return Control::Stop {
                outcome: Outcome::Drained,
                final_time,
                violation: None,
                reason: None,
            };
        };
        if min.at > self.plan.deadline {
            return Control::Stop {
                outcome: Outcome::TimedOut,
                final_time: SimTime(self.plan.deadline),
                violation: None,
                reason: None,
            };
        }
        if let Some(window) = self.plan.config.stall_window {
            let progress: u128 = statuses.iter().map(|s| s.progress).sum();
            if progress > self.watch_progress {
                self.watch_progress = progress;
                self.watch_since = self.global_max;
            } else if self.global_max.saturating_sub(self.watch_since) >= window.as_micros() {
                return Control::Stop {
                    outcome: Outcome::Stalled,
                    final_time,
                    violation: None,
                    reason: Some(format!(
                        "stall: no goodput progress within the {:.0}s watchdog window",
                        window.as_secs_f64()
                    )),
                };
            }
        }
        Control::Continue {
            window: min.at / self.plan.lookahead,
        }
    }

    /// After the stop verdict: harvest local nodes and, when the
    /// outcome carries a diagnostic dump, snapshot local state.
    fn finish<R, H>(mut self, shared: &Shared, harvest: &H) -> WorkerOut<R>
    where
        H: Fn(NodeId, &P) -> R,
    {
        let control = lock_tolerant(&shared.control).clone();
        let needs_dump = matches!(
            control,
            Control::Stop {
                outcome: Outcome::Stalled | Outcome::InvariantViolated | Outcome::WorkerPanicked,
                ..
            }
        );
        let mut harvested = Vec::new();
        let mut diags = Vec::new();
        for i in 0..self.local.len() {
            if !self.local[i] {
                continue;
            }
            // A panic inside `with_node` leaves that node's slot taken;
            // harvest what survives.
            let Some(p) = self.protocols[i].as_ref() else {
                continue;
            };
            harvested.push((i as u32, harvest(NodeId(i as u32), p)));
            if needs_dump {
                diags.push(NodeDiag {
                    node: NodeId(i as u32),
                    complete: self.complete[i],
                    failed: self.failed[i],
                    progress: p.progress(),
                    detail: p.diagnostic(),
                });
            }
        }
        let pending_timers = if needs_dump {
            self.queue
                .iter()
                .filter(|Reverse(k)| match &k.event {
                    SEvent::Timer {
                        node,
                        timer,
                        generation,
                    } => {
                        !self.failed[node.index()]
                            && *generation
                                == self
                                    .timer_gens
                                    .get(&(node.0, timer.0))
                                    .copied()
                                    .unwrap_or(0)
                    }
                    _ => false,
                })
                .count()
        } else {
            0
        };
        WorkerOut {
            metrics: self.metrics,
            energy: self.energy,
            trace_full: std::mem::take(&mut self.trace_full),
            trace_ring: self.trace_ring.into_iter().collect(),
            harvest: harvested,
            diags,
            queue_len: self.queue.len(),
            pending_timers,
        }
    }

    fn emit(&mut self, event: TraceEvent) {
        let keyed = (self.cur_key, self.emit_seq, event);
        self.emit_seq += 1;
        if self.plan.config.diag_events > 0 {
            if self.trace_ring.len() == self.plan.config.diag_events {
                self.trace_ring.pop_front();
            }
            self.trace_ring.push_back(keyed.clone());
        }
        if self.plan.collect {
            self.trace_full.push(keyed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TimerId;

    struct Null;
    impl Protocol for Null {
        fn on_init(&mut self, _ctx: &mut Context<'_>) {}
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _data: &[u8]) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: TimerId) {}
        fn is_complete(&self) -> bool {
            false
        }
    }

    /// Regression for the `expect("delivery for pruned transmission")`
    /// panic: a delivery whose `TxRec` is no longer in the table (a
    /// fault plan pruned it while the delivery was queued across a
    /// shard boundary) must drop with a structured `Pruned` loss event,
    /// not kill the worker.
    #[test]
    fn delivery_for_pruned_transmission_is_dropped_not_panicked() {
        let topology = Topology::star(2);
        let plan = Plan {
            topology: &topology,
            config: SimConfig::default(),
            seed: 1,
            assign: vec![0, 0],
            cell: vec![0, 0],
            announce_mask: vec![0, 0],
            faults: Vec::new(),
            lookahead: 2_000,
            deadline: 1_000_000,
            collect: true,
        };
        let make = |_: NodeId| Null;
        let mut worker = Worker::new(&plan, 0, &make, None);
        worker.now = SimTime(42);
        worker.cur_key = OrderKey::deliver(SimTime(42), NodeId(1), NodeId(0), 999);
        let losses_before = worker.metrics.phy_losses();
        worker.deliver(
            0,
            NodeId(1),
            NodeId(0),
            &Arc::new(vec![1, 2, 3]),
            PacketKind::Data,
            999,
        );
        assert_eq!(worker.metrics.phy_losses(), losses_before + 1);
        assert!(worker.trace_full.iter().any(|(_, _, event)| matches!(
            event,
            TraceEvent::Loss {
                cause: LossCause::Pruned,
                tx_id: 999,
                ..
            }
        )));
    }

    #[test]
    fn panic_message_extracts_str_and_string_payloads() {
        let from_str: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(&*from_str), "boom");
        let from_string: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(&*from_string), "kaboom");
        let opaque: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(&*opaque), "non-string panic payload");
    }
}

//! Flight-recorder capture format.
//!
//! A [`Capsule`] records everything needed to re-execute a simulation
//! run bit-identically: the seed (from which every per-node RNG stream
//! is derived), the full [`SimConfig`], the exact topology (positions
//! *and* the sampled link table, so no link model is resampled on
//! replay), the complete fault schedule, free-form scenario tags that
//! let tooling reconstruct the protocol under test, and the run digests
//! ([`RunDigest`]) that replay must reproduce.
//!
//! Two encodings share one line dialect:
//!
//! * **JSONL** — the repo's existing hand-rolled one-object-per-line
//!   dialect (see `trace.rs`/`fault.rs`), extended with `capsule*`
//!   event labels. Human-greppable, diff-friendly.
//! * **Binary-framed** — an `LRSC` magic, a little-endian `u32`
//!   version, then length-prefixed frames each holding one JSONL line.
//!   Same information, self-delimiting, safe to concatenate with other
//!   artifacts.
//!
//! Floating-point fields (positions, PRRs, loss probabilities) are
//! stored as IEEE-754 bit patterns (`f64::to_bits`) so a round trip is
//! exact — a capsule that re-derives even one PRR differently would
//! silently break bit-identical replay.

use crate::fault::{json_str_field, json_u64_field, FaultEvent, FaultPlan};
use crate::metrics::Metrics;
use crate::node::NodeId;
use crate::noise::{BurstyNoise, NoiseModel};
use crate::sim::{Outcome, RunReport, SimConfig};
use crate::time::{Duration, SimTime};
use crate::topology::{Link, Position, Topology};
use crate::trace::{KeyedTraceEvent, TraceEvent};
use crate::violation::ContentDigest;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Current capture-format version, written in the header line.
pub const CAPSULE_VERSION: u64 = 1;

/// Magic prefix of the binary-framed encoding.
pub const FRAME_MAGIC: [u8; 4] = *b"LRSC";

/// Engine label for the sequential [`Simulator`](crate::sim::Simulator).
pub const SEQUENTIAL_ENGINE: &str = "sequential";

/// Engine label for the sharded engine
/// ([`SimBuilder::run_sharded`](crate::SimBuilder::run_sharded)).
pub const SHARDED_ENGINE: &str = "sharded";

/// The per-node RNG stream-derivation constants, recorded in the
/// header so a capsule documents its own reproduction recipe: protocol
/// stream `seed·c₀ ^ node`, tx stream `seed·c₁ ^ node`, rx stream
/// `seed·c₂ ^ node`.
pub const RNG_STREAMS: &str = "9e3779b97f4a7c15,ff51afd7ed558ccd,c4ceb9fe1a85ec53";

/// Condensed identity of a finished run: what replay must reproduce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunDigest {
    /// [`Outcome::label`] of the run.
    pub outcome: String,
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
    /// Number of trace events digested (0 when the trace was not
    /// collected).
    pub events: u64,
    /// FNV-1a over every trace line (newline-terminated), or
    /// [`ContentDigest::MISSING`] when the trace was not collected.
    pub trace: ContentDigest,
    /// FNV-1a over the canonical metrics JSON line.
    pub metrics: ContentDigest,
    /// FNV-1a over the `(OrderKey, emit index)` sequence of the merged
    /// keyed trace — sharded engine only; [`ContentDigest::MISSING`]
    /// for sequential runs, whose event order is queue-internal.
    pub order: ContentDigest,
}

impl RunDigest {
    /// Digests a finished run from its report, metrics, and (merged)
    /// trace. Pass `keyed` when the sharded engine's keyed trace is
    /// available; the order digest is `MISSING` otherwise.
    pub fn compute(
        report: &RunReport,
        metrics: &Metrics,
        trace: &[TraceEvent],
        keyed: Option<&[KeyedTraceEvent]>,
    ) -> Self {
        let mut trace_digest = ContentDigest::EMPTY;
        for event in trace {
            trace_digest = trace_digest
                .absorb(event.to_json().as_bytes())
                .absorb(b"\n");
        }
        let order = match keyed {
            Some(keys) => {
                let mut d = ContentDigest::EMPTY;
                for (key, seq, _) in keys {
                    d = d
                        .absorb(&key.at.to_le_bytes())
                        .absorb(&[key.class])
                        .absorb(&key.a.to_le_bytes())
                        .absorb(&key.b.to_le_bytes())
                        .absorb(&key.c.to_le_bytes())
                        .absorb(&seq.to_le_bytes());
                }
                d
            }
            None => ContentDigest::MISSING,
        };
        RunDigest {
            outcome: report.outcome.label().to_string(),
            final_time: report.final_time,
            events: trace.len() as u64,
            trace: trace_digest,
            metrics: Self::metrics_digest(report.final_time, metrics),
            order,
        }
    }

    /// Digest of a run whose trace was not collected (e.g. the
    /// sequential engine's automatic failure dump): outcome, final
    /// time, and metrics only; trace/order digests are `MISSING`.
    pub fn metrics_only(outcome: Outcome, final_time: SimTime, metrics: &Metrics) -> Self {
        RunDigest {
            outcome: outcome.label().to_string(),
            final_time,
            events: 0,
            trace: ContentDigest::MISSING,
            metrics: Self::metrics_digest(final_time, metrics),
            order: ContentDigest::MISSING,
        }
    }

    fn metrics_digest(final_time: SimTime, metrics: &Metrics) -> ContentDigest {
        ContentDigest::of(metrics.to_trace_json(final_time).as_bytes())
    }
}

/// A [`RunDigest`] tagged with the engine that produced it. The two
/// engines legitimately differ event-for-event (the sharded engine's
/// content-derived order is not the sequential queue order), so a
/// capsule records one digest per engine; the sharded digest is
/// shard-count independent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineDigest {
    /// [`SEQUENTIAL_ENGINE`] or [`SHARDED_ENGINE`].
    pub engine: String,
    /// Shard count of the digested run (1 for sequential).
    pub shards: usize,
    /// The digest itself.
    pub digest: RunDigest,
}

/// Everything needed to re-execute a run bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct Capsule {
    /// The run seed; all per-node RNG streams derive from it (see
    /// [`RNG_STREAMS`]).
    pub seed: u64,
    /// Engine of the captured run.
    pub engine: String,
    /// Shard count of the captured run (1 for sequential).
    pub shards: usize,
    /// The deadline the run was started with.
    pub deadline: Duration,
    /// Full simulation configuration (radio, noise, watchdog).
    pub config: SimConfig,
    /// Exact topology, including the sampled per-link PRR table.
    pub topology: Topology,
    /// The complete fault schedule.
    pub faults: FaultPlan,
    /// Free-form key/value tags describing how to reconstruct the
    /// protocol under test (scheme name, image length, params, …).
    pub scenario: Vec<(String, String)>,
    /// Recorded run digests, one per engine that executed the scenario.
    pub digests: Vec<EngineDigest>,
}

/// Errors loading or parsing a capsule.
#[derive(Debug)]
pub enum CapsuleError {
    /// File-system error while loading.
    Io(io::Error),
    /// The byte stream is not a framed capsule (bad magic, truncated
    /// frame, or non-UTF-8 content).
    BadFrame(&'static str),
    /// The capsule was written by a newer format version.
    UnsupportedVersion(u64),
    /// A JSONL line failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for CapsuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapsuleError::Io(err) => write!(f, "capsule I/O error: {err}"),
            CapsuleError::BadFrame(why) => write!(f, "bad capsule frame: {why}"),
            CapsuleError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "capsule version {v} is newer than supported {CAPSULE_VERSION}"
                )
            }
            CapsuleError::Malformed { line, reason } => {
                write!(f, "malformed capsule line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CapsuleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CapsuleError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for CapsuleError {
    fn from(err: io::Error) -> Self {
        CapsuleError::Io(err)
    }
}

/// Escapes `"` and `\` for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extracts `"key":"…"` honoring `\"`/`\\` escapes (the plain
/// [`json_str_field`] stops at the first quote).
fn json_escaped_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
}

impl Capsule {
    /// Looks up a scenario tag by key.
    pub fn scenario_value(&self, key: &str) -> Option<&str> {
        self.scenario
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The recorded digest for `engine`, if any. Sharded digests are
    /// shard-count independent, so the first match wins.
    pub fn digest_for(&self, engine: &str) -> Option<&EngineDigest> {
        self.digests.iter().find(|d| d.engine == engine)
    }

    /// Renders the capsule as JSON Lines (trailing newline included).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            r#"{{"ev":"capsule","version":{CAPSULE_VERSION},"seed":{},"engine":"{}","shards":{},"deadline_us":{},"rng_streams":"{RNG_STREAMS}"}}"#,
            self.seed,
            self.engine,
            self.shards,
            self.deadline.as_micros(),
        ));
        out.push('\n');
        let medium = &self.config.medium;
        out.push_str(&format!(
            r#"{{"ev":"capsule_config","us_per_byte":{},"overhead_us":{},"max_backoff_us":{},"csma":{},"collisions":{},"app_loss_bits":{},"diag_events":{}"#,
            medium.us_per_byte,
            medium.per_packet_overhead_us,
            medium.max_backoff_us,
            u8::from(medium.csma),
            u8::from(medium.collisions),
            medium.app_loss.to_bits(),
            self.config.diag_events,
        ));
        if let Some(limit) = self.config.max_sim_time {
            out.push_str(&format!(r#","max_sim_time_us":{}"#, limit.as_micros()));
        }
        if let Some(window) = self.config.stall_window {
            out.push_str(&format!(r#","stall_window_us":{}"#, window.as_micros()));
        }
        if let NoiseModel::Bursty(noise) = medium.noise {
            out.push_str(&format!(
                r#","noise":"bursty","noise_quiet_us":{},"noise_noisy_us":{},"noise_factor_bits":{}"#,
                noise.mean_quiet_us,
                noise.mean_noisy_us,
                noise.noisy_prr_factor.to_bits(),
            ));
        }
        out.push_str("}\n");
        for (i, position) in self.topology.positions().iter().enumerate() {
            out.push_str(&format!(
                r#"{{"ev":"capsule_node","node":{i},"x_bits":{},"y_bits":{}}}"#,
                position.x.to_bits(),
                position.y.to_bits(),
            ));
            out.push('\n');
        }
        for from in 0..self.topology.len() {
            for link in self.topology.links_from(NodeId(from as u32)) {
                out.push_str(&format!(
                    r#"{{"ev":"capsule_link","from":{from},"to":{},"prr_bits":{}}}"#,
                    link.to.0,
                    link.prr.to_bits(),
                ));
                out.push('\n');
            }
        }
        for (key, value) in &self.scenario {
            out.push_str(&format!(
                r#"{{"ev":"capsule_scenario","key":"{}","value":"{}"}}"#,
                escape(key),
                escape(value),
            ));
            out.push('\n');
        }
        for event in self.faults.events() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        for entry in &self.digests {
            out.push_str(&format!(
                r#"{{"ev":"capsule_digest","engine":"{}","shards":{},"outcome":"{}","final_time":{},"events":{},"trace":"{}","metrics":"{}","order":"{}"}}"#,
                entry.engine,
                entry.shards,
                entry.digest.outcome,
                entry.digest.final_time.as_micros(),
                entry.digest.events,
                entry.digest.trace,
                entry.digest.metrics,
                entry.digest.order,
            ));
            out.push('\n');
        }
        out
    }

    /// Parses the JSONL encoding.
    pub fn from_jsonl(text: &str) -> Result<Self, CapsuleError> {
        let mal = |line: usize, reason: &str| CapsuleError::Malformed {
            line,
            reason: reason.to_string(),
        };
        let mut header: Option<(u64, String, usize, Duration)> = None;
        let mut config: Option<SimConfig> = None;
        let mut positions: Vec<(usize, Position)> = Vec::new();
        let mut link_rows: Vec<(usize, Link)> = Vec::new();
        let mut scenario: Vec<(String, String)> = Vec::new();
        let mut fault_events: Vec<FaultEvent> = Vec::new();
        let mut digests: Vec<EngineDigest> = Vec::new();
        for (index, line) in text.lines().enumerate() {
            let no = index + 1;
            if line.trim().is_empty() {
                continue;
            }
            let ev = json_str_field(line, "ev").ok_or_else(|| mal(no, "missing \"ev\" field"))?;
            match ev {
                "capsule" => {
                    let version = json_u64_field(line, "version")
                        .ok_or_else(|| mal(no, "missing version"))?;
                    if version > CAPSULE_VERSION {
                        return Err(CapsuleError::UnsupportedVersion(version));
                    }
                    header = Some((
                        json_u64_field(line, "seed").ok_or_else(|| mal(no, "missing seed"))?,
                        json_str_field(line, "engine")
                            .ok_or_else(|| mal(no, "missing engine"))?
                            .to_string(),
                        json_u64_field(line, "shards").ok_or_else(|| mal(no, "missing shards"))?
                            as usize,
                        Duration::from_micros(
                            json_u64_field(line, "deadline_us")
                                .ok_or_else(|| mal(no, "missing deadline_us"))?,
                        ),
                    ));
                }
                "capsule_config" => {
                    let field = |key: &str| {
                        json_u64_field(line, key).ok_or_else(|| mal(no, &format!("missing {key}")))
                    };
                    let noise = match json_str_field(line, "noise") {
                        Some("bursty") => NoiseModel::Bursty(BurstyNoise {
                            mean_quiet_us: field("noise_quiet_us")?,
                            mean_noisy_us: field("noise_noisy_us")?,
                            noisy_prr_factor: f64::from_bits(field("noise_factor_bits")?),
                        }),
                        Some(other) => {
                            return Err(mal(no, &format!("unknown noise model \"{other}\"")))
                        }
                        None => NoiseModel::None,
                    };
                    config = Some(SimConfig {
                        medium: crate::medium::MediumConfig {
                            us_per_byte: field("us_per_byte")?,
                            per_packet_overhead_us: field("overhead_us")?,
                            max_backoff_us: field("max_backoff_us")?,
                            csma: field("csma")? != 0,
                            collisions: field("collisions")? != 0,
                            app_loss: f64::from_bits(field("app_loss_bits")?),
                            noise,
                        },
                        max_sim_time: json_u64_field(line, "max_sim_time_us")
                            .map(Duration::from_micros),
                        stall_window: json_u64_field(line, "stall_window_us")
                            .map(Duration::from_micros),
                        diag_events: field("diag_events")? as usize,
                    });
                }
                "capsule_node" => {
                    let field = |key: &str| {
                        json_u64_field(line, key).ok_or_else(|| mal(no, &format!("missing {key}")))
                    };
                    positions.push((
                        field("node")? as usize,
                        Position {
                            x: f64::from_bits(field("x_bits")?),
                            y: f64::from_bits(field("y_bits")?),
                        },
                    ));
                }
                "capsule_link" => {
                    let field = |key: &str| {
                        json_u64_field(line, key).ok_or_else(|| mal(no, &format!("missing {key}")))
                    };
                    link_rows.push((
                        field("from")? as usize,
                        Link {
                            to: NodeId(field("to")? as u32),
                            prr: f64::from_bits(field("prr_bits")?),
                        },
                    ));
                }
                "capsule_scenario" => {
                    scenario.push((
                        json_escaped_str_field(line, "key")
                            .ok_or_else(|| mal(no, "missing key"))?,
                        json_escaped_str_field(line, "value")
                            .ok_or_else(|| mal(no, "missing value"))?,
                    ));
                }
                "capsule_digest" => {
                    let hex = |key: &str| -> Result<ContentDigest, CapsuleError> {
                        let text = json_str_field(line, key)
                            .ok_or_else(|| mal(no, &format!("missing {key}")))?;
                        u64::from_str_radix(text, 16)
                            .map(ContentDigest)
                            .map_err(|_| mal(no, &format!("non-hex {key} digest")))
                    };
                    let field = |key: &str| {
                        json_u64_field(line, key).ok_or_else(|| mal(no, &format!("missing {key}")))
                    };
                    digests.push(EngineDigest {
                        engine: json_str_field(line, "engine")
                            .ok_or_else(|| mal(no, "missing engine"))?
                            .to_string(),
                        shards: field("shards")? as usize,
                        digest: RunDigest {
                            outcome: json_str_field(line, "outcome")
                                .ok_or_else(|| mal(no, "missing outcome"))?
                                .to_string(),
                            final_time: SimTime(field("final_time")?),
                            events: field("events")?,
                            trace: hex("trace")?,
                            metrics: hex("metrics")?,
                            order: hex("order")?,
                        },
                    });
                }
                other if other.starts_with("fault_") => {
                    let event = FaultEvent::from_json(line)
                        .ok_or_else(|| mal(no, "unparseable fault event"))?;
                    fault_events.push(event);
                }
                other => return Err(mal(no, &format!("unknown event \"{other}\""))),
            }
        }
        let (seed, engine, shards, deadline) =
            header.ok_or_else(|| mal(0, "no \"capsule\" header line"))?;
        let config = config.ok_or_else(|| mal(0, "no \"capsule_config\" line"))?;
        positions.sort_by_key(|(i, _)| *i);
        for (slot, (index, _)) in positions.iter().enumerate() {
            if slot != *index {
                return Err(mal(0, &format!("node table has a gap at n{slot}")));
            }
        }
        let n = positions.len();
        let mut links: Vec<Vec<Link>> = vec![Vec::new(); n];
        for (from, link) in link_rows {
            if from >= n || (link.to.0 as usize) >= n {
                return Err(mal(0, &format!("link n{from}→n{} out of range", link.to.0)));
            }
            links[from].push(link);
        }
        let topology = Topology::from_parts(positions.into_iter().map(|(_, p)| p).collect(), links);
        let mut faults = FaultPlan::new();
        for event in fault_events {
            faults.push(event);
        }
        Ok(Capsule {
            seed,
            engine,
            shards,
            deadline,
            config,
            topology,
            faults,
            scenario,
            digests,
        })
    }

    /// Renders the binary-framed encoding: `LRSC` magic, `u32` LE
    /// version, then one length-prefixed frame per JSONL line.
    pub fn to_framed(&self) -> Vec<u8> {
        let jsonl = self.to_jsonl();
        let mut out = Vec::with_capacity(jsonl.len() + 64);
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&(CAPSULE_VERSION as u32).to_le_bytes());
        for line in jsonl.lines() {
            out.extend_from_slice(&(line.len() as u32).to_le_bytes());
            out.extend_from_slice(line.as_bytes());
        }
        out
    }

    /// Parses the binary-framed encoding.
    pub fn from_framed(bytes: &[u8]) -> Result<Self, CapsuleError> {
        if bytes.len() < 8 || bytes[..4] != FRAME_MAGIC {
            return Err(CapsuleError::BadFrame("missing LRSC magic"));
        }
        let version = u64::from(u32::from_le_bytes(
            bytes[4..8].try_into().expect("4 bytes sliced"),
        ));
        if version > CAPSULE_VERSION {
            return Err(CapsuleError::UnsupportedVersion(version));
        }
        let mut text = String::with_capacity(bytes.len());
        let mut off = 8;
        while off < bytes.len() {
            if off + 4 > bytes.len() {
                return Err(CapsuleError::BadFrame("truncated frame length"));
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes sliced"))
                as usize;
            off += 4;
            if off + len > bytes.len() {
                return Err(CapsuleError::BadFrame("truncated frame body"));
            }
            let line = std::str::from_utf8(&bytes[off..off + len])
                .map_err(|_| CapsuleError::BadFrame("frame is not UTF-8"))?;
            text.push_str(line);
            text.push('\n');
            off += len;
        }
        Self::from_jsonl(&text)
    }

    /// Saves to `path`: binary-framed when the extension is `lrsc` or
    /// `bin`, JSONL otherwise.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let framed = matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("lrsc" | "bin")
        );
        if framed {
            std::fs::write(path, self.to_framed())
        } else {
            std::fs::write(path, self.to_jsonl())
        }
    }

    /// Loads from `path`, auto-detecting the encoding by the frame
    /// magic.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CapsuleError> {
        let bytes = std::fs::read(path)?;
        if bytes.starts_with(&FRAME_MAGIC) {
            Self::from_framed(&bytes)
        } else {
            let text = String::from_utf8(bytes)
                .map_err(|_| CapsuleError::BadFrame("capsule is not UTF-8"))?;
            Self::from_jsonl(&text)
        }
    }
}

/// Where (and with which scenario tags) the automatic failure dump
/// writes its capsule. Built by
/// [`SimBuilder::capsule_on_failure`](crate::SimBuilder::capsule_on_failure)
/// or handed to
/// [`Simulator::set_capsule_on_failure`](crate::sim::Simulator::set_capsule_on_failure).
#[derive(Clone, Debug)]
pub struct CapsuleSpec {
    /// Output path; parent directories are created on demand.
    pub path: PathBuf,
    /// Scenario tags recorded into the capsule.
    pub scenario: Vec<(String, String)>,
}

impl CapsuleSpec {
    /// A spec writing to `path` with no scenario tags.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CapsuleSpec {
            path: path.into(),
            scenario: Vec::new(),
        }
    }

    /// Adds a scenario tag.
    pub fn tag(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.scenario.push((key.into(), value.to_string()));
        self
    }

    /// Best-effort write used by the automatic failure dumps: creates
    /// parent directories and reports (rather than propagates) I/O
    /// errors, because a failing run must still return its report.
    pub(crate) fn write(&self, capsule: &Capsule) {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        if let Err(err) = capsule.save(&self.path) {
            eprintln!(
                "warning: failed to write failure capsule {}: {err}",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::MediumConfig;

    fn sample_capsule() -> Capsule {
        let mut faults = FaultPlan::new();
        faults.crash(NodeId(3), SimTime(400_000));
        faults.link_outage(
            NodeId(1),
            NodeId(2),
            SimTime(100_000),
            Duration::from_secs(1),
        );
        Capsule {
            seed: 0xDEAD_BEEF,
            engine: SHARDED_ENGINE.to_string(),
            shards: 4,
            deadline: Duration::from_secs(100),
            config: SimConfig {
                medium: MediumConfig {
                    app_loss: 0.05,
                    noise: NoiseModel::Bursty(BurstyNoise::heavy()),
                    ..MediumConfig::default()
                },
                max_sim_time: Some(Duration::from_secs(3_000)),
                stall_window: Some(Duration::from_secs(400)),
                diag_events: 64,
            },
            topology: Topology::grid(3, 10.0, 7),
            faults,
            scenario: vec![
                ("scheme".to_string(), "lr-seluge".to_string()),
                ("note".to_string(), "quote \" and back\\slash".to_string()),
            ],
            digests: vec![EngineDigest {
                engine: SHARDED_ENGINE.to_string(),
                shards: 4,
                digest: RunDigest {
                    outcome: "stalled".to_string(),
                    final_time: SimTime(123_456),
                    events: 42,
                    trace: ContentDigest(0x1122_3344_5566_7788),
                    metrics: ContentDigest(0x99AA_BBCC_DDEE_FF00),
                    order: ContentDigest::MISSING,
                },
            }],
        }
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let capsule = sample_capsule();
        let text = capsule.to_jsonl();
        let parsed = Capsule::from_jsonl(&text).expect("parse");
        assert_eq!(parsed, capsule);
        // Every line is a self-contained JSON object.
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn framed_round_trip_is_exact_and_magic_prefixed() {
        let capsule = sample_capsule();
        let bytes = capsule.to_framed();
        assert_eq!(&bytes[..4], b"LRSC");
        assert_eq!(Capsule::from_framed(&bytes).expect("parse"), capsule);
    }

    #[test]
    fn newer_versions_are_rejected() {
        let text = sample_capsule()
            .to_jsonl()
            .replacen("\"version\":1", "\"version\":99", 1);
        assert!(matches!(
            Capsule::from_jsonl(&text),
            Err(CapsuleError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let bytes = sample_capsule().to_framed();
        assert!(matches!(
            Capsule::from_framed(&bytes[..bytes.len() - 3]),
            Err(CapsuleError::BadFrame(_))
        ));
        assert!(matches!(
            Capsule::from_framed(b"NOPE"),
            Err(CapsuleError::BadFrame(_))
        ));
    }

    #[test]
    fn scenario_lookup_and_escaping() {
        let capsule = sample_capsule();
        let parsed = Capsule::from_jsonl(&capsule.to_jsonl()).expect("parse");
        assert_eq!(parsed.scenario_value("scheme"), Some("lr-seluge"));
        assert_eq!(
            parsed.scenario_value("note"),
            Some("quote \" and back\\slash")
        );
        assert_eq!(parsed.scenario_value("absent"), None);
    }

    #[test]
    fn digest_lookup_by_engine() {
        let capsule = sample_capsule();
        assert!(capsule.digest_for(SHARDED_ENGINE).is_some());
        assert!(capsule.digest_for(SEQUENTIAL_ENGINE).is_none());
    }
}

//! Virtual time for the discrete-event simulation.
//!
//! The types live in `lrs-host` (the host-agnostic protocol contract)
//! so that real-time hosts and the simulator share one clock
//! vocabulary; this module re-exports them under their historical
//! simulator paths.

pub use lrs_host::time::{Duration, SimTime};

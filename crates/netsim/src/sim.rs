//! The simulator main loop.

use crate::energy::EnergyLedger;
use crate::event::{Event, EventQueue};
use crate::medium::{Delivery, Medium, MediumConfig};
use crate::metrics::Metrics;
use crate::node::{Action, Context, NodeId, Protocol};
use crate::time::{Duration, SimTime};
use crate::topology::Topology;
use crate::trace::{LossCause, TraceEvent, TraceSink};
use lrs_rng::DetRng;
use std::collections::HashMap;
use std::rc::Rc;

/// Simulation-wide configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimConfig {
    /// Radio and loss-process parameters.
    pub medium: MediumConfig,
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Whether every node reported completion.
    pub all_complete: bool,
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
    /// Dissemination latency (time the last node completed), if all did.
    pub latency: Option<SimTime>,
}

/// A deterministic discrete-event simulation over one protocol type.
pub struct Simulator<P: Protocol> {
    topology: Topology,
    medium: Medium,
    queue: EventQueue,
    protocols: Vec<Option<P>>,
    rngs: Vec<DetRng>,
    timer_gens: HashMap<(u32, u32), u64>,
    metrics: Metrics,
    energy: EnergyLedger,
    now: SimTime,
    complete: Vec<bool>,
    /// Nodes removed from the simulation (crash-failure injection).
    failed: Vec<bool>,
    /// Pending failure times, applied as virtual time passes.
    failures: Vec<(NodeId, SimTime)>,
    /// Optional structured event sink (purely observational).
    trace: Option<Box<dyn TraceSink>>,
}

impl<P: Protocol> Simulator<P> {
    /// Builds a simulator; `make_node` constructs the protocol instance
    /// for each node id.
    pub fn new(
        topology: Topology,
        config: SimConfig,
        seed: u64,
        mut make_node: impl FnMut(NodeId) -> P,
    ) -> Self {
        let n = topology.len();
        let medium = Medium::new(config.medium, n, seed);
        let protocols: Vec<Option<P>> = (0..n).map(|i| Some(make_node(NodeId(i as u32)))).collect();
        let rngs = (0..n)
            .map(|i| DetRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ (i as u64)))
            .collect();
        Simulator {
            topology,
            medium,
            queue: EventQueue::new(),
            protocols,
            rngs,
            timer_gens: HashMap::new(),
            metrics: Metrics::new(),
            energy: EnergyLedger::new(n),
            now: SimTime::ZERO,
            complete: vec![false; n],
            failed: vec![false; n],
            failures: Vec::new(),
            trace: None,
        }
    }

    /// Attaches a structured-event sink. Sinks observe the run; they can
    /// never alter it, so metrics and outcome are identical with or
    /// without one.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detaches and returns the current trace sink (flushed), if any.
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.trace.take();
        if let Some(s) = sink.as_mut() {
            s.flush();
        }
        sink
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(&event);
        }
    }

    /// Schedules a crash failure: from `at` onward the node neither
    /// transmits nor receives, and no longer gates run completion.
    /// Call before [`run`](Self::run).
    pub fn schedule_failure(&mut self, node: NodeId, at: SimTime) {
        self.failures.push((node, at));
    }

    /// Whether `node` has crash-failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed[node.index()]
    }

    /// Per-node radio energy ledger.
    pub fn energy(&self) -> &EnergyLedger {
        &self.energy
    }

    fn apply_due_failures(&mut self) {
        let now = self.now;
        let mut newly: Vec<NodeId> = Vec::new();
        self.failures.retain(|&(node, at)| {
            if at <= now {
                newly.push(node);
                false
            } else {
                true
            }
        });
        for node in newly {
            self.failed[node.index()] = true;
            // A dead node no longer gates completion.
            self.complete[node.index()] = true;
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The metric counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a node's protocol state (for assertions).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &P {
        self.protocols[id.index()]
            .as_ref()
            .expect("node is not mid-callback")
    }

    /// Runs until every node completes, the event queue drains, or
    /// `deadline` passes. Returns a report; metrics stay accessible.
    pub fn run(&mut self, deadline: Duration) -> RunReport {
        let deadline = SimTime::ZERO + deadline;
        // Initialize every node.
        for i in 0..self.protocols.len() {
            self.with_node(i, |node, ctx| node.on_init(ctx));
        }
        self.refresh_completion();
        while !self.all_complete() {
            let Some(at) = self.queue.peek_time() else {
                break; // stalled: no pending events
            };
            if at > deadline {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked");
            self.now = at;
            self.apply_due_failures();
            match event {
                Event::Deliver {
                    to,
                    from,
                    data,
                    kind,
                    tx_id,
                } => {
                    if self.failed[to.index()] {
                        continue;
                    }
                    let outcome = self.medium.deliver(self.now, tx_id, to, &self.topology);
                    let loss = |cause| TraceEvent::Loss {
                        at,
                        to,
                        from,
                        kind,
                        cause,
                        tx_id,
                    };
                    match outcome {
                        Delivery::Received => {
                            self.metrics.count_rx(data.len());
                            self.energy.record_rx(to, data.len());
                            self.emit(TraceEvent::Rx {
                                at,
                                to,
                                from,
                                kind,
                                bytes: data.len(),
                                tx_id,
                            });
                            self.with_node(to.index(), |node, ctx| {
                                node.on_packet(ctx, from, &data)
                            });
                        }
                        Delivery::Collision => {
                            self.metrics.count_collision();
                            self.emit(loss(LossCause::Collision));
                        }
                        Delivery::PhyLoss => {
                            self.metrics.count_phy_loss();
                            self.emit(loss(LossCause::Phy));
                        }
                        Delivery::AppDrop => {
                            // The radio decoded the packet; the drop is an
                            // application-layer event (energy still paid).
                            self.energy.record_rx(to, data.len());
                            self.metrics.count_app_drop();
                            self.emit(loss(LossCause::AppDrop));
                        }
                    }
                }
                Event::Timer {
                    node,
                    timer,
                    generation,
                } => {
                    if self.failed[node.index()] {
                        continue;
                    }
                    let current = self
                        .timer_gens
                        .get(&(node.0, timer.0))
                        .copied()
                        .unwrap_or(0);
                    if generation == current {
                        self.emit(TraceEvent::TimerFired { at, node, timer });
                        self.with_node(node.index(), |n, ctx| n.on_timer(ctx, timer));
                    }
                }
            }
        }
        let latency = if self.all_complete() {
            self.metrics.dissemination_latency()
        } else {
            None
        };
        RunReport {
            all_complete: self.all_complete(),
            final_time: self.now,
            latency,
        }
    }

    fn all_complete(&self) -> bool {
        self.complete.iter().all(|&c| c)
    }

    fn refresh_completion(&mut self) {
        for i in 0..self.protocols.len() {
            if !self.complete[i] {
                if let Some(p) = self.protocols[i].as_ref() {
                    if p.is_complete() {
                        self.complete[i] = true;
                        self.metrics.record_completion(NodeId(i as u32), self.now);
                        self.emit(TraceEvent::NodeComplete {
                            at: self.now,
                            node: NodeId(i as u32),
                        });
                    }
                }
            }
        }
    }

    /// Runs `f` with node `i`'s protocol and a fresh context, then applies
    /// the produced actions.
    fn with_node(&mut self, i: usize, f: impl FnOnce(&mut P, &mut Context<'_>)) {
        let mut node = self.protocols[i].take().expect("re-entrant node callback");
        let mut actions = Vec::new();
        {
            let cfg = self.medium.config();
            let mut ctx = Context {
                now: self.now,
                id: NodeId(i as u32),
                rng: &mut self.rngs[i],
                actions: &mut actions,
                us_per_byte: cfg.us_per_byte,
                per_packet_overhead_us: cfg.per_packet_overhead_us,
            };
            f(&mut node, &mut ctx);
        }
        // Completion check before re-inserting.
        if !self.complete[i] && node.is_complete() {
            self.complete[i] = true;
            self.metrics.record_completion(NodeId(i as u32), self.now);
            self.emit(TraceEvent::NodeComplete {
                at: self.now,
                node: NodeId(i as u32),
            });
        }
        self.protocols[i] = Some(node);
        for action in actions {
            self.apply_action(NodeId(i as u32), action);
        }
    }

    fn apply_action(&mut self, from: NodeId, action: Action) {
        match action {
            Action::Broadcast { kind, data } => {
                if self.failed[from.index()] {
                    return;
                }
                self.metrics.count_tx(kind, data.len());
                self.energy.record_tx(from, data.len());
                let tx = self
                    .medium
                    .begin_broadcast(self.now, from, data.len(), &self.topology);
                self.emit(TraceEvent::Tx {
                    at: tx.start,
                    from,
                    kind,
                    bytes: data.len(),
                    tx_id: tx.id,
                });
                let shared = Rc::new(data);
                for link in self.topology.links_from(from) {
                    self.queue.push(
                        tx.end,
                        Event::Deliver {
                            to: link.to,
                            from,
                            data: Rc::clone(&shared),
                            kind,
                            tx_id: tx.id,
                        },
                    );
                }
            }
            Action::SetTimer { timer, delay } => {
                let gen = self.timer_gens.entry((from.0, timer.0)).or_insert(0);
                *gen += 1;
                self.queue.push(
                    self.now + delay,
                    Event::Timer {
                        node: from,
                        timer,
                        generation: *gen,
                    },
                );
            }
            Action::CancelTimer { timer } => {
                // Bumping the generation invalidates any pending event.
                *self.timer_gens.entry((from.0, timer.0)).or_insert(0) += 1;
            }
            Action::Note { label, a, b } => {
                self.emit(TraceEvent::Note {
                    at: self.now,
                    node: from,
                    label,
                    a,
                    b,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{PacketKind, TimerId};

    /// Node 0 pings every second; others count pings.
    struct Pinger {
        is_source: bool,
        pings_heard: u32,
        goal: u32,
    }

    impl Protocol for Pinger {
        fn on_init(&mut self, ctx: &mut Context<'_>) {
            if self.is_source {
                ctx.set_timer(TimerId(0), Duration::from_secs(1));
            }
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _data: &[u8]) {
            self.pings_heard += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId) {
            ctx.broadcast(PacketKind::Data, vec![0xAB; 20]);
            ctx.set_timer(TimerId(0), Duration::from_secs(1));
        }
        fn is_complete(&self) -> bool {
            self.is_source || self.pings_heard >= self.goal
        }
    }

    fn pinger_sim(seed: u64) -> Simulator<Pinger> {
        Simulator::new(Topology::star(4), SimConfig::default(), seed, |id| Pinger {
            is_source: id == NodeId(0),
            pings_heard: 0,
            goal: 3,
        })
    }

    #[test]
    fn pings_propagate_and_complete() {
        let mut sim = pinger_sim(1);
        let report = sim.run(Duration::from_secs(60));
        assert!(report.all_complete);
        assert!(report.latency.is_some());
        assert_eq!(sim.metrics().tx_packets(PacketKind::Data), 3);
        // 3 broadcasts × 3 receivers.
        assert_eq!(sim.metrics().rx_packets(), 9);
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = pinger_sim(7).run(Duration::from_secs(60));
        let r2 = pinger_sim(7).run(Duration::from_secs(60));
        assert_eq!(r1.final_time, r2.final_time);
        assert_eq!(r1.latency, r2.latency);
    }

    #[test]
    fn deadline_stops_incomplete_run() {
        // Goal can never be met within half a second (first ping at 1 s).
        let mut sim = pinger_sim(3);
        let report = sim.run(Duration::from_millis(500));
        assert!(!report.all_complete);
        assert!(report.latency.is_none());
    }

    /// A node whose re-armed timer must fire only once.
    struct Rearmer {
        fires: u32,
    }
    impl Protocol for Rearmer {
        fn on_init(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(TimerId(1), Duration::from_secs(1));
            ctx.set_timer(TimerId(1), Duration::from_secs(2)); // supersedes
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: NodeId, _: &[u8]) {}
        fn on_timer(&mut self, _: &mut Context<'_>, _: TimerId) {
            self.fires += 1;
        }
        fn is_complete(&self) -> bool {
            false
        }
    }

    #[test]
    fn rearmed_timer_fires_once() {
        let mut sim = Simulator::new(Topology::star(1), SimConfig::default(), 0, |_| Rearmer {
            fires: 0,
        });
        let _ = sim.run(Duration::from_secs(10));
        assert_eq!(sim.node(NodeId(0)).fires, 1);
    }

    /// Cancel prevents firing entirely.
    struct Canceler {
        fires: u32,
    }
    impl Protocol for Canceler {
        fn on_init(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(TimerId(1), Duration::from_secs(1));
            ctx.cancel_timer(TimerId(1));
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: NodeId, _: &[u8]) {}
        fn on_timer(&mut self, _: &mut Context<'_>, _: TimerId) {
            self.fires += 1;
        }
        fn is_complete(&self) -> bool {
            false
        }
    }

    #[test]
    fn canceled_timer_never_fires() {
        let mut sim = Simulator::new(Topology::star(1), SimConfig::default(), 0, |_| Canceler {
            fires: 0,
        });
        let _ = sim.run(Duration::from_secs(10));
        assert_eq!(sim.node(NodeId(0)).fires, 0);
    }
}

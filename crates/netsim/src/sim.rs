//! The simulator main loop.

use crate::capsule::{Capsule, CapsuleSpec, EngineDigest, RunDigest, SEQUENTIAL_ENGINE};
use crate::energy::EnergyLedger;
use crate::event::{Event, EventQueue};
use crate::fault::{FaultEvent, FaultPlan, PPM_ONE};
use crate::medium::{Delivery, Medium, MediumConfig};
use crate::metrics::Metrics;
use crate::node::{Action, Context, NodeId, Protocol};
use crate::time::{Duration, SimTime};
use crate::topology::Topology;
use crate::trace::{LossCause, RingTrace, TraceEvent, TraceSink};
use crate::violation::{InvariantViolation, ViolationRecord};
use lrs_rng::DetRng;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Simulation-wide configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Radio and loss-process parameters.
    pub medium: MediumConfig,
    /// Hard virtual-time limit; a run that reaches it stops with
    /// [`Outcome::TimedOut`] regardless of the `run` deadline argument.
    /// `None` leaves only the per-run deadline.
    pub max_sim_time: Option<Duration>,
    /// Stall watchdog: if no node makes [`Protocol::progress`] within a
    /// window of this length, the run aborts with [`Outcome::Stalled`]
    /// and a [`DiagnosticDump`]. `None` disables the watchdog.
    pub stall_window: Option<Duration>,
    /// How many recent trace events the simulator retains internally
    /// for diagnostic dumps (0 disables retention).
    pub diag_events: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            medium: MediumConfig::default(),
            max_sim_time: None,
            stall_window: None,
            diag_events: 64,
        }
    }
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every (non-failed) node reported completion.
    Complete,
    /// The virtual-time limit (`run` deadline or
    /// [`SimConfig::max_sim_time`]) passed first.
    TimedOut,
    /// The event queue drained with nodes still incomplete.
    Drained,
    /// The stall watchdog saw no progress across its window.
    Stalled,
    /// The attached invariant checker reported a violation.
    InvariantViolated,
    /// A worker thread of the sharded engine panicked. The first panic
    /// message is surfaced in the report's diagnostic reason, instead of
    /// cascading into `"control poisoned"` secondary panics.
    WorkerPanicked,
}

impl Outcome {
    /// Stable lowercase label for JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Complete => "complete",
            Outcome::TimedOut => "timed_out",
            Outcome::Drained => "drained",
            Outcome::Stalled => "stalled",
            Outcome::InvariantViolated => "invariant_violated",
            Outcome::WorkerPanicked => "worker_panicked",
        }
    }

    /// Whether this outcome is diagnostic — the run ended abnormally
    /// (stall, invariant violation, worker panic) rather than by a
    /// normal terminal condition. Diagnostic outcomes are the ones the
    /// flight recorder dumps failure capsules for.
    pub fn is_diagnostic(self) -> bool {
        matches!(
            self,
            Outcome::Stalled | Outcome::InvariantViolated | Outcome::WorkerPanicked
        )
    }
}

/// One node's state snapshot inside a [`DiagnosticDump`].
#[derive(Clone, Debug)]
pub struct NodeDiag {
    /// The node.
    pub node: NodeId,
    /// Whether it reported completion.
    pub complete: bool,
    /// Whether it is crash-failed right now.
    pub failed: bool,
    /// Its [`Protocol::progress`] value.
    pub progress: u64,
    /// Its [`Protocol::diagnostic`] line (page/packet bit-vectors).
    pub detail: String,
}

/// Structured post-mortem emitted when the watchdog trips or an
/// invariant fails: enough to explain a stall without rerunning under a
/// debugger.
#[derive(Clone, Debug)]
pub struct DiagnosticDump {
    /// Virtual time of the dump.
    pub at: SimTime,
    /// Why the dump was taken.
    pub reason: String,
    /// Pending events in the queue.
    pub queue_len: usize,
    /// Pending *live* timers (superseded generations excluded).
    pub pending_timers: usize,
    /// Per-node state snapshots.
    pub nodes: Vec<NodeDiag>,
    /// The most recent trace events (bounded by
    /// [`SimConfig::diag_events`]).
    pub recent: Vec<TraceEvent>,
    /// The violated invariant, when the dump was taken for
    /// [`Outcome::InvariantViolated`] — serialized structurally by
    /// [`DiagnosticDump::to_json`].
    pub violation: Option<ViolationRecord>,
}

/// Escapes `"` and `\` for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl DiagnosticDump {
    /// Renders the dump as one JSON object.
    pub fn to_json(&self) -> String {
        let mut nodes = String::new();
        for d in &self.nodes {
            if !nodes.is_empty() {
                nodes.push(',');
            }
            nodes.push_str(&format!(
                r#"{{"node":{},"complete":{},"failed":{},"progress":{},"detail":"{}"}}"#,
                d.node.0,
                d.complete,
                d.failed,
                d.progress,
                escape_json(&d.detail)
            ));
        }
        let mut recent = String::new();
        for event in &self.recent {
            if !recent.is_empty() {
                recent.push(',');
            }
            recent.push_str(&event.to_json());
        }
        let violation = match &self.violation {
            Some(record) => format!(r#","violation":{}"#, record.to_json()),
            None => String::new(),
        };
        format!(
            r#"{{"t":{},"ev":"diagnostic","reason":"{}","queue":{},"pending_timers":{},"nodes":[{}],"recent":[{}]{}}}"#,
            self.at.as_micros(),
            escape_json(&self.reason),
            self.queue_len,
            self.pending_timers,
            nodes,
            recent,
            violation
        )
    }
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub outcome: Outcome,
    /// Whether every node reported completion.
    pub all_complete: bool,
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
    /// Dissemination latency (time the last node completed), if all did.
    pub latency: Option<SimTime>,
    /// Post-mortem attached on [`Outcome::Stalled`] and
    /// [`Outcome::InvariantViolated`].
    pub diagnostic: Option<DiagnosticDump>,
}

/// Fault overlay on one directed link.
#[derive(Clone, Copy, Debug)]
struct LinkFault {
    up: bool,
    ppm: u32,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            up: true,
            ppm: PPM_ONE,
        }
    }
}

/// Per-delivery hook validating protocol invariants; an `Err` aborts
/// the run with [`Outcome::InvariantViolated`].
pub type InvariantChecker<P> = Box<dyn FnMut(&P, NodeId) -> Result<(), InvariantViolation>>;

/// A deterministic discrete-event simulation over one protocol type.
pub struct Simulator<P: Protocol> {
    topology: Topology,
    medium: Medium,
    queue: EventQueue,
    protocols: Vec<Option<P>>,
    rngs: Vec<DetRng>,
    timer_gens: HashMap<(u32, u32), u64>,
    metrics: Metrics,
    energy: EnergyLedger,
    now: SimTime,
    complete: Vec<bool>,
    /// Nodes currently crash-failed (a pending reboot can clear this).
    failed: Vec<bool>,
    /// Scheduled faults, applied as virtual time passes.
    faults: VecDeque<FaultEvent>,
    /// Fault overlay per directed link `(from, to)`.
    link_state: HashMap<(u32, u32), LinkFault>,
    /// Per-node clock rate in ppm of nominal.
    drift_ppm: Vec<u32>,
    /// Dedicated stream for fault-layer draws (link degradation), so an
    /// empty fault plan leaves runs bit-identical.
    fault_rng: DetRng,
    /// Reboots applied so far.
    reboots: u64,
    /// Optional per-delivery invariant checker.
    invariant: Option<InvariantChecker<P>>,
    /// First invariant violation, if any.
    violation: Option<ViolationRecord>,
    /// Always-on bounded event ring feeding diagnostic dumps.
    diag: RingTrace,
    diag_capacity: usize,
    max_sim_time: Option<Duration>,
    stall_window: Option<Duration>,
    /// Optional structured event sink (purely observational).
    trace: Option<Box<dyn TraceSink>>,
    /// The full configuration, retained for failure capsules.
    config: SimConfig,
    /// The run seed, retained for failure capsules.
    seed: u64,
    /// Every scheduled fault in arrival order, retained for failure
    /// capsules (`faults` itself is consumed as virtual time passes).
    fault_log: Vec<FaultEvent>,
    /// When set, a watchdog/invariant failure writes a replay capsule.
    capsule: Option<CapsuleSpec>,
}

impl<P: Protocol> Simulator<P> {
    /// Constructor backing
    /// [`SimBuilder::build`](crate::builder::SimBuilder::build), the
    /// sole public way to obtain a simulator.
    pub(crate) fn from_parts(
        topology: Topology,
        config: SimConfig,
        seed: u64,
        mut make_node: impl FnMut(NodeId) -> P,
    ) -> Self {
        let n = topology.len();
        let medium = Medium::new(config.medium, n, seed);
        let protocols: Vec<Option<P>> = (0..n).map(|i| Some(make_node(NodeId(i as u32)))).collect();
        let rngs = (0..n)
            .map(|i| DetRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ (i as u64)))
            .collect();
        Simulator {
            topology,
            medium,
            queue: EventQueue::new(),
            protocols,
            rngs,
            timer_gens: HashMap::new(),
            metrics: Metrics::new(),
            energy: EnergyLedger::new(n),
            now: SimTime::ZERO,
            complete: vec![false; n],
            failed: vec![false; n],
            faults: VecDeque::new(),
            link_state: HashMap::new(),
            drift_ppm: vec![PPM_ONE; n],
            fault_rng: DetRng::seed_from_u64(seed.wrapping_mul(0xa076_1d64_78bd_642f) ^ 0xFA),
            reboots: 0,
            invariant: None,
            violation: None,
            diag: RingTrace::new(config.diag_events.max(1)),
            diag_capacity: config.diag_events,
            max_sim_time: config.max_sim_time,
            stall_window: config.stall_window,
            trace: None,
            config,
            seed,
            fault_log: Vec::new(),
            capsule: None,
        }
    }

    /// Attaches a structured-event sink. Sinks observe the run; they can
    /// never alter it, so metrics and outcome are identical with or
    /// without one.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detaches and returns the current trace sink (flushed), if any.
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut sink = self.trace.take();
        if let Some(s) = sink.as_mut() {
            s.flush();
        }
        sink
    }

    /// Attaches a per-delivery invariant checker: called with the
    /// receiving node's state after every accepted packet, aborting the
    /// run with [`Outcome::InvariantViolated`] on the first `Err`.
    /// Runtime-toggleable (attach for chaos runs, skip for perf runs);
    /// checkers receive `&P` and so can never alter the run.
    pub fn set_invariant_checker(&mut self, check: InvariantChecker<P>) {
        self.invariant = Some(check);
    }

    /// The first invariant violation, if any.
    pub fn invariant_violation(&self) -> Option<&ViolationRecord> {
        self.violation.as_ref()
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if self.diag_capacity > 0 {
            self.diag.record(&event);
        }
        if let Some(sink) = self.trace.as_mut() {
            sink.record(&event);
        }
    }

    /// Schedules a crash failure: from `at` onward the node neither
    /// transmits nor receives, and no longer gates run completion.
    /// Call before [`run`](Self::run).
    pub fn schedule_failure(&mut self, node: NodeId, at: SimTime) {
        self.faults.push_back(FaultEvent::Crash { node, at });
        self.fault_log.push(FaultEvent::Crash { node, at });
    }

    /// Schedules a reboot of a (by then) crashed node: RAM state is
    /// lost and [`Protocol::on_reboot`] decides what flash restores.
    /// Call before [`run`](Self::run).
    pub fn schedule_reboot(&mut self, node: NodeId, at: SimTime) {
        self.faults.push_back(FaultEvent::Reboot { node, at });
        self.fault_log.push(FaultEvent::Reboot { node, at });
    }

    /// Schedules every event of `plan`. Call before [`run`](Self::run).
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        self.faults.extend(plan.events().iter().copied());
        self.fault_log.extend(plan.events().iter().copied());
    }

    /// Arms the flight recorder: when the run ends in
    /// [`Outcome::Stalled`] or [`Outcome::InvariantViolated`], a replay
    /// capsule (seed, config, topology, full fault schedule, scenario
    /// tags) is written to the spec's path so the failure ships its own
    /// reproducer. The write is best-effort: an I/O error is reported on
    /// stderr but never changes the run's report.
    pub fn set_capsule_on_failure(&mut self, spec: CapsuleSpec) {
        self.capsule = Some(spec);
    }

    /// Whether `node` is currently crash-failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed[node.index()]
    }

    /// Reboots applied so far.
    pub fn reboots(&self) -> u64 {
        self.reboots
    }

    /// Per-node radio energy ledger.
    pub fn energy(&self) -> &EnergyLedger {
        &self.energy
    }

    fn apply_fault(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Crash { node, .. } => {
                let i = node.index();
                if self.failed[i] {
                    return;
                }
                self.failed[i] = true;
                self.emit(TraceEvent::Note {
                    at: self.now,
                    node,
                    label: "fault_crash",
                    a: 0,
                    b: 0,
                });
            }
            FaultEvent::Reboot { node, .. } => {
                let i = node.index();
                if !self.failed[i] {
                    return;
                }
                self.failed[i] = false;
                self.reboots += 1;
                // Timers armed before the crash died with the RAM.
                for ((owner, _), gen) in self.timer_gens.iter_mut() {
                    if *owner == node.0 {
                        *gen += 1;
                    }
                }
                // Completion is re-evaluated from what flash restored.
                self.complete[i] = false;
                self.emit(TraceEvent::Note {
                    at: self.now,
                    node,
                    label: "fault_reboot",
                    a: 0,
                    b: 0,
                });
                self.with_node(i, |n, ctx| n.on_reboot(ctx));
            }
            FaultEvent::LinkDown { from, to, .. } => {
                self.link_state.entry((from.0, to.0)).or_default().up = false;
            }
            FaultEvent::LinkUp { from, to, .. } => {
                self.link_state.entry((from.0, to.0)).or_default().up = true;
            }
            FaultEvent::Degrade { from, to, ppm, .. } => {
                self.link_state.entry((from.0, to.0)).or_default().ppm = ppm;
            }
            FaultEvent::ClockDrift { node, ppm, .. } => {
                self.drift_ppm[node.index()] = ppm;
            }
        }
    }

    /// Whether the fault overlay blocks this delivery (link forced
    /// down, or a degradation draw fails).
    fn fault_blocks_delivery(&mut self, from: NodeId, to: NodeId) -> bool {
        match self.link_state.get(&(from.0, to.0)).copied() {
            Some(f) if !f.up => true,
            Some(f) if f.ppm < PPM_ONE => !self.fault_rng.gen_bool(f.ppm as f64 / PPM_ONE as f64),
            _ => false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The metric counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a node's protocol state (for assertions).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &P {
        self.protocols[id.index()]
            .as_ref()
            .expect("node is not mid-callback")
    }

    /// Sum of per-node progress over live nodes, for the watchdog.
    fn total_progress(&self) -> u128 {
        self.protocols
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.failed[i])
            .filter_map(|(_, p)| p.as_ref())
            .map(|p| p.progress() as u128)
            .sum()
    }

    /// Takes a structured state snapshot (any time; the watchdog calls
    /// this when it trips).
    pub fn dump(&self, reason: impl Into<String>) -> DiagnosticDump {
        let pending_timers = self
            .queue
            .iter()
            .filter(|(_, event)| match event {
                Event::Timer {
                    node,
                    timer,
                    generation,
                } => {
                    !self.failed[node.index()]
                        && *generation
                            == self
                                .timer_gens
                                .get(&(node.0, timer.0))
                                .copied()
                                .unwrap_or(0)
                }
                _ => false,
            })
            .count();
        let nodes = self
            .protocols
            .iter()
            .enumerate()
            .map(|(i, p)| NodeDiag {
                node: NodeId(i as u32),
                complete: self.complete[i],
                failed: self.failed[i],
                progress: p.as_ref().map_or(0, |p| p.progress()),
                detail: p.as_ref().map(|p| p.diagnostic()).unwrap_or_default(),
            })
            .collect();
        DiagnosticDump {
            at: self.now,
            reason: reason.into(),
            queue_len: self.queue.len(),
            pending_timers,
            nodes,
            recent: self.diag.events().cloned().collect(),
            violation: self.violation.clone(),
        }
    }

    /// Runs until every node completes, the event queue drains, a time
    /// limit (`deadline` or [`SimConfig::max_sim_time`]) passes, the
    /// stall watchdog trips, or an invariant fails. Returns a report;
    /// metrics stay accessible.
    pub fn run(&mut self, deadline: Duration) -> RunReport {
        let requested_deadline = deadline;
        let mut deadline = SimTime::ZERO + deadline;
        if let Some(limit) = self.max_sim_time {
            let limit = SimTime::ZERO + limit;
            if limit < deadline {
                deadline = limit;
            }
        }
        self.faults.make_contiguous().sort_by_key(FaultEvent::at);
        // Faults at t = 0 (clock drift, pre-severed links) take effect
        // before node init, so the very first timer arm sees them.
        while self
            .faults
            .front()
            .is_some_and(|event| event.at() <= self.now)
        {
            let fault = self.faults.pop_front().expect("peeked");
            self.apply_fault(fault);
        }
        // Initialize every node.
        for i in 0..self.protocols.len() {
            self.with_node(i, |node, ctx| node.on_init(ctx));
        }
        self.refresh_completion();
        let mut stopped = None;
        let mut watch_progress = self.total_progress();
        let mut watch_since = self.now;
        while !self.all_complete() {
            // Faults are events too: a reboot must fire even if the
            // packet/timer queue has drained, and a crash scheduled
            // between two queued events applies at its exact time.
            let next_fault = self.faults.front().map(FaultEvent::at);
            let at = match (next_fault, self.queue.peek_time()) {
                (Some(f), Some(e)) => f.min(e),
                (Some(f), None) => f,
                (None, Some(e)) => e,
                (None, None) => {
                    stopped = Some(Outcome::Drained);
                    break;
                }
            };
            if at > deadline {
                stopped = Some(Outcome::TimedOut);
                break;
            }
            if next_fault.is_some_and(|f| f <= at) {
                self.now = at;
                let fault = self.faults.pop_front().expect("peeked");
                self.apply_fault(fault);
                continue;
            }
            let (at, event) = self.queue.pop().expect("peeked");
            self.now = at;
            match event {
                Event::Deliver {
                    to,
                    from,
                    data,
                    kind,
                    tx_id,
                } => {
                    if self.failed[to.index()] {
                        continue;
                    }
                    let loss = |cause| TraceEvent::Loss {
                        at,
                        to,
                        from,
                        kind,
                        cause,
                        tx_id,
                    };
                    if self.fault_blocks_delivery(from, to) {
                        self.metrics.count_phy_loss();
                        self.emit(loss(LossCause::Fault));
                        continue;
                    }
                    let outcome = self.medium.deliver(self.now, tx_id, to, &self.topology);
                    match outcome {
                        Delivery::Received => {
                            self.metrics.count_rx(data.len());
                            self.energy.record_rx(to, data.len());
                            self.emit(TraceEvent::Rx {
                                at,
                                to,
                                from,
                                kind,
                                bytes: data.len(),
                                tx_id,
                            });
                            self.with_node(to.index(), |node, ctx| {
                                node.on_packet(ctx, from, &data)
                            });
                            self.check_invariant(to);
                        }
                        Delivery::Collision => {
                            self.metrics.count_collision();
                            self.emit(loss(LossCause::Collision));
                        }
                        Delivery::PhyLoss => {
                            self.metrics.count_phy_loss();
                            self.emit(loss(LossCause::Phy));
                        }
                        Delivery::AppDrop => {
                            // The radio decoded the packet; the drop is an
                            // application-layer event (energy still paid).
                            self.energy.record_rx(to, data.len());
                            self.metrics.count_app_drop();
                            self.emit(loss(LossCause::AppDrop));
                        }
                        Delivery::Pruned => {
                            self.metrics.count_phy_loss();
                            self.emit(loss(LossCause::Pruned));
                        }
                    }
                }
                Event::Timer {
                    node,
                    timer,
                    generation,
                } => {
                    if self.failed[node.index()] {
                        continue;
                    }
                    let current = self
                        .timer_gens
                        .get(&(node.0, timer.0))
                        .copied()
                        .unwrap_or(0);
                    if generation == current {
                        self.emit(TraceEvent::TimerFired { at, node, timer });
                        self.with_node(node.index(), |n, ctx| n.on_timer(ctx, timer));
                    }
                }
            }
            if self.violation.is_some() {
                stopped = Some(Outcome::InvariantViolated);
                break;
            }
            if let Some(window) = self.stall_window {
                if self.now.saturating_since(watch_since).as_micros() >= window.as_micros() {
                    let p = self.total_progress();
                    if p > watch_progress {
                        watch_progress = p;
                        watch_since = self.now;
                    } else {
                        stopped = Some(Outcome::Stalled);
                        break;
                    }
                }
            }
        }
        let outcome = stopped.unwrap_or(if self.all_complete() {
            Outcome::Complete
        } else {
            Outcome::Drained
        });
        let diagnostic = match outcome {
            Outcome::Stalled => Some(self.dump(format!(
                "stall: no goodput progress within the {:.0}s watchdog window",
                self.stall_window.map_or(0.0, |w| w.as_secs_f64())
            ))),
            Outcome::InvariantViolated => {
                let record = self
                    .violation
                    .as_ref()
                    .expect("outcome is InvariantViolated only when a violation was recorded");
                Some(self.dump(record.to_string()))
            }
            _ => None,
        };
        if matches!(outcome, Outcome::Stalled | Outcome::InvariantViolated) {
            self.write_failure_capsule(outcome, requested_deadline);
        }
        let latency = if self.all_complete() {
            self.metrics.dissemination_latency()
        } else {
            None
        };
        RunReport {
            outcome,
            all_complete: self.all_complete(),
            final_time: self.now,
            latency,
            diagnostic,
        }
    }

    /// Writes the armed failure capsule, if any. The sequential engine
    /// does not retain its full trace, so the recorded digest covers
    /// outcome, final time, and metrics; trace/order digests are
    /// [`ContentDigest::MISSING`](crate::violation::ContentDigest::MISSING)
    /// and skipped by replay verification.
    fn write_failure_capsule(&self, outcome: Outcome, deadline: Duration) {
        let Some(spec) = self.capsule.as_ref() else {
            return;
        };
        let mut faults = FaultPlan::new();
        for event in &self.fault_log {
            faults.push(*event);
        }
        let digest = RunDigest::metrics_only(outcome, self.now, &self.metrics);
        let capsule = Capsule {
            seed: self.seed,
            engine: SEQUENTIAL_ENGINE.to_string(),
            shards: 1,
            deadline,
            config: self.config,
            topology: self.topology.clone(),
            faults,
            scenario: spec.scenario.clone(),
            digests: vec![EngineDigest {
                engine: SEQUENTIAL_ENGINE.to_string(),
                shards: 1,
                digest,
            }],
        };
        spec.write(&capsule);
    }

    /// Runs the invariant checker (if attached) against `node`.
    fn check_invariant(&mut self, node: NodeId) {
        if self.violation.is_some() {
            return;
        }
        let Some(mut check) = self.invariant.take() else {
            return;
        };
        if let Some(p) = self.protocols[node.index()].as_ref() {
            if let Err(violation) = check(p, node) {
                self.violation = Some(ViolationRecord {
                    at: self.now,
                    node,
                    violation,
                });
            }
        }
        self.invariant = Some(check);
    }

    /// Whether every node is complete or crash-failed (a dead node no
    /// longer gates completion).
    fn all_complete(&self) -> bool {
        // A crash-failed node only counts as "complete" if no reboot is
        // pending for it: a permanent casualty must not hold the run
        // open forever, but a node that is about to come back still has
        // dissemination work left.
        self.complete
            .iter()
            .enumerate()
            .all(|(i, &c)| c || (self.failed[i] && !self.reboot_pending(NodeId(i as u32))))
    }

    /// Whether the remaining fault schedule reboots `node`.
    fn reboot_pending(&self, node: NodeId) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, FaultEvent::Reboot { node: n, .. } if *n == node))
    }

    fn refresh_completion(&mut self) {
        for i in 0..self.protocols.len() {
            if !self.complete[i] {
                if let Some(p) = self.protocols[i].as_ref() {
                    if p.is_complete() {
                        self.complete[i] = true;
                        self.metrics.record_completion(NodeId(i as u32), self.now);
                        self.emit(TraceEvent::NodeComplete {
                            at: self.now,
                            node: NodeId(i as u32),
                        });
                    }
                }
            }
        }
    }

    /// Runs `f` with node `i`'s protocol and a fresh context, then applies
    /// the produced actions.
    fn with_node(&mut self, i: usize, f: impl FnOnce(&mut P, &mut Context<'_>)) {
        let mut node = self.protocols[i].take().expect("re-entrant node callback");
        let mut actions = Vec::new();
        {
            let cfg = self.medium.config();
            let mut ctx = Context::new(
                self.now,
                NodeId(i as u32),
                &mut self.rngs[i],
                &mut actions,
                cfg.us_per_byte,
                cfg.per_packet_overhead_us,
            );
            f(&mut node, &mut ctx);
        }
        // Completion check before re-inserting.
        if !self.complete[i] && node.is_complete() {
            self.complete[i] = true;
            self.metrics.record_completion(NodeId(i as u32), self.now);
            self.emit(TraceEvent::NodeComplete {
                at: self.now,
                node: NodeId(i as u32),
            });
        }
        self.protocols[i] = Some(node);
        for action in actions {
            self.apply_action(NodeId(i as u32), action);
        }
    }

    fn apply_action(&mut self, from: NodeId, action: Action) {
        match action {
            Action::Broadcast { kind, data } => {
                if self.failed[from.index()] {
                    return;
                }
                self.metrics.count_tx(kind, data.len());
                self.energy.record_tx(from, data.len());
                let tx = self
                    .medium
                    .begin_broadcast(self.now, from, data.len(), &self.topology);
                self.emit(TraceEvent::Tx {
                    at: tx.start,
                    from,
                    kind,
                    bytes: data.len(),
                    tx_id: tx.id,
                });
                let shared = Arc::new(data);
                for link in self.topology.links_from(from) {
                    self.queue.push(
                        tx.end,
                        Event::Deliver {
                            to: link.to,
                            from,
                            data: Arc::clone(&shared),
                            kind,
                            tx_id: tx.id,
                        },
                    );
                }
            }
            Action::SetTimer { timer, delay } => {
                // A drifting clock stretches or compresses every arm.
                let ppm = self.drift_ppm[from.index()];
                let delay = if ppm == PPM_ONE {
                    delay
                } else {
                    Duration::from_micros(
                        (delay.as_micros() as u128 * ppm as u128 / PPM_ONE as u128) as u64,
                    )
                };
                let gen = self.timer_gens.entry((from.0, timer.0)).or_insert(0);
                *gen += 1;
                self.queue.push(
                    self.now + delay,
                    Event::Timer {
                        node: from,
                        timer,
                        generation: *gen,
                    },
                );
            }
            Action::CancelTimer { timer } => {
                // Bumping the generation invalidates any pending event.
                *self.timer_gens.entry((from.0, timer.0)).or_insert(0) += 1;
            }
            Action::Note { label, a, b } => {
                self.emit(TraceEvent::Note {
                    at: self.now,
                    node: from,
                    label,
                    a,
                    b,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimBuilder;
    use crate::node::{PacketKind, TimerId};

    #[test]
    fn diagnostic_outcomes_are_exactly_the_capsule_dump_triggers() {
        for outcome in [
            Outcome::Complete,
            Outcome::TimedOut,
            Outcome::Drained,
            Outcome::Stalled,
            Outcome::InvariantViolated,
            Outcome::WorkerPanicked,
        ] {
            let expected = matches!(
                outcome,
                Outcome::Stalled | Outcome::InvariantViolated | Outcome::WorkerPanicked
            );
            assert_eq!(outcome.is_diagnostic(), expected, "{}", outcome.label());
        }
    }

    /// Node 0 pings every second; others count pings.
    struct Pinger {
        is_source: bool,
        pings_heard: u32,
        goal: u32,
    }

    impl Protocol for Pinger {
        fn on_init(&mut self, ctx: &mut Context<'_>) {
            if self.is_source {
                ctx.set_timer(TimerId(0), Duration::from_secs(1));
            }
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _data: &[u8]) {
            self.pings_heard += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId) {
            ctx.broadcast(PacketKind::Data, vec![0xAB; 20]);
            ctx.set_timer(TimerId(0), Duration::from_secs(1));
        }
        fn is_complete(&self) -> bool {
            self.is_source || self.pings_heard >= self.goal
        }
        fn progress(&self) -> u64 {
            u64::from(self.pings_heard)
        }
    }

    fn pinger_sim(seed: u64) -> Simulator<Pinger> {
        pinger_sim_with(seed, SimConfig::default())
    }

    fn pinger_sim_with(seed: u64, config: SimConfig) -> Simulator<Pinger> {
        SimBuilder::new(Topology::star(4), seed, |id| Pinger {
            is_source: id == NodeId(0),
            pings_heard: 0,
            goal: 3,
        })
        .config(config)
        .build()
    }

    #[test]
    fn pings_propagate_and_complete() {
        let mut sim = pinger_sim(1);
        let report = sim.run(Duration::from_secs(60));
        assert!(report.all_complete);
        assert_eq!(report.outcome, Outcome::Complete);
        assert!(report.latency.is_some());
        assert!(report.diagnostic.is_none());
        assert_eq!(sim.metrics().tx_packets(PacketKind::Data), 3);
        // 3 broadcasts × 3 receivers.
        assert_eq!(sim.metrics().rx_packets(), 9);
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = pinger_sim(7).run(Duration::from_secs(60));
        let r2 = pinger_sim(7).run(Duration::from_secs(60));
        assert_eq!(r1.final_time, r2.final_time);
        assert_eq!(r1.latency, r2.latency);
    }

    #[test]
    fn deadline_stops_incomplete_run() {
        // Goal can never be met within half a second (first ping at 1 s).
        let mut sim = pinger_sim(3);
        let report = sim.run(Duration::from_millis(500));
        assert!(!report.all_complete);
        assert!(report.latency.is_none());
        assert_eq!(report.outcome, Outcome::TimedOut);
    }

    #[test]
    fn max_sim_time_overrides_longer_deadlines() {
        let mut sim = pinger_sim_with(
            3,
            SimConfig {
                max_sim_time: Some(Duration::from_millis(500)),
                ..SimConfig::default()
            },
        );
        let report = sim.run(Duration::from_secs(3600));
        assert_eq!(report.outcome, Outcome::TimedOut);
        assert!(!report.all_complete);
        assert!(report.final_time <= SimTime::ZERO + Duration::from_millis(500));
    }

    #[test]
    fn empty_fault_plan_leaves_run_identical() {
        let baseline = pinger_sim(7).run(Duration::from_secs(60));
        let mut sim = pinger_sim(7);
        sim.inject_faults(&FaultPlan::new());
        let report = sim.run(Duration::from_secs(60));
        assert_eq!(report.final_time, baseline.final_time);
        assert_eq!(report.latency, baseline.latency);
    }

    #[test]
    fn crash_then_reboot_restores_a_node() {
        // The source crashes after its second ping and reboots two
        // seconds later; `on_reboot` re-runs `on_init`, so pings resume
        // and receivers still reach their goal.
        let mut sim = pinger_sim(1);
        sim.schedule_failure(NodeId(0), SimTime(2_500_000));
        sim.schedule_reboot(NodeId(0), SimTime(4_500_000));
        let report = sim.run(Duration::from_secs(60));
        assert!(report.all_complete);
        assert_eq!(report.outcome, Outcome::Complete);
        assert_eq!(sim.reboots(), 1);
        assert!(!sim.is_failed(NodeId(0)));
    }

    #[test]
    fn link_down_blocks_and_link_up_restores_delivery() {
        let mut plan = FaultPlan::new();
        // Node 1 is deaf to the source for the first 2.5 s.
        plan.link_outage(
            NodeId(0),
            NodeId(1),
            SimTime::ZERO,
            Duration::from_millis(2500),
        );
        let mut sim = pinger_sim(1);
        sim.inject_faults(&plan);
        let report = sim.run(Duration::from_secs(60));
        assert!(report.all_complete);
        // Nodes 2/3 heard the early pings node 1 missed.
        assert!(sim.node(NodeId(2)).pings_heard > sim.node(NodeId(1)).pings_heard - 1);
        assert!(sim.node(NodeId(1)).pings_heard >= 3);
    }

    #[test]
    fn degraded_link_loses_some_deliveries() {
        let mut plan = FaultPlan::new();
        plan.degrade(NodeId(0), NodeId(1), 200_000, SimTime::ZERO);
        let mut sim = pinger_sim(1);
        sim.inject_faults(&plan);
        let report = sim.run(Duration::from_secs(120));
        // Node 1 eventually completes, but needs more source pings than
        // the healthy receivers did.
        assert!(report.all_complete);
        assert!(sim.metrics().tx_packets(PacketKind::Data) > 3);
    }

    #[test]
    fn clock_drift_slows_a_node_down() {
        let mut plan = FaultPlan::new();
        // The source's clock runs at half speed: timers take twice as
        // long, so pings land at 2 s, 4 s, 6 s instead of 1/2/3 s.
        plan.clock_drift(NodeId(0), 2_000_000, SimTime::ZERO);
        let mut sim = pinger_sim(1);
        sim.inject_faults(&plan);
        let report = sim.run(Duration::from_secs(60));
        assert!(report.all_complete);
        let drifted = report.latency.expect("complete");
        let baseline = pinger_sim(1)
            .run(Duration::from_secs(60))
            .latency
            .expect("complete");
        assert!(drifted.as_micros() >= 2 * baseline.as_micros() - 1_000_000);
    }

    #[test]
    fn watchdog_trips_on_stall_with_a_dump() {
        // Sever every source link: receivers can never progress, but
        // the source's timer keeps the queue alive forever.
        let mut plan = FaultPlan::new();
        for to in 1..4 {
            plan.push(FaultEvent::LinkDown {
                from: NodeId(0),
                to: NodeId(to),
                at: SimTime::ZERO,
            });
        }
        let mut sim = pinger_sim_with(
            1,
            SimConfig {
                stall_window: Some(Duration::from_secs(5)),
                ..SimConfig::default()
            },
        );
        sim.inject_faults(&plan);
        let report = sim.run(Duration::from_secs(3600));
        assert_eq!(report.outcome, Outcome::Stalled);
        assert!(!report.all_complete);
        let dump = report.diagnostic.expect("stall dump");
        assert_eq!(dump.nodes.len(), 4);
        assert!(dump.pending_timers >= 1);
        assert!(!dump.recent.is_empty());
        let json = dump.to_json();
        assert!(json.contains(r#""ev":"diagnostic""#));
        assert!(json.contains(r#""reason":"stall"#));
        // Aborted after roughly one window, not at the deadline.
        assert!(report.final_time < SimTime::ZERO + Duration::from_secs(60));
    }

    #[test]
    fn invariant_checker_aborts_the_run() {
        let mut sim = pinger_sim(1);
        sim.set_invariant_checker(Box::new(|node: &Pinger, _id| {
            if node.pings_heard >= 2 {
                Err(InvariantViolation::Custom {
                    message: format!("pings_heard reached {}", node.pings_heard),
                })
            } else {
                Ok(())
            }
        }));
        let report = sim.run(Duration::from_secs(60));
        assert_eq!(report.outcome, Outcome::InvariantViolated);
        let record = sim.invariant_violation().expect("violation");
        assert_ne!(record.node, NodeId(0));
        assert!(record.violation.to_string().contains("pings_heard"));
        let json = report.diagnostic.expect("dump").to_json();
        assert!(json.contains("invariant violated"));
        // The violation is serialized structurally, not only as a string.
        assert!(json.contains(r#""violation":{"t":"#), "{json}");
        assert!(json.contains(r#""kind":"custom""#), "{json}");
    }

    /// A node whose re-armed timer must fire only once.
    struct Rearmer {
        fires: u32,
    }
    impl Protocol for Rearmer {
        fn on_init(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(TimerId(1), Duration::from_secs(1));
            ctx.set_timer(TimerId(1), Duration::from_secs(2)); // supersedes
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: NodeId, _: &[u8]) {}
        fn on_timer(&mut self, _: &mut Context<'_>, _: TimerId) {
            self.fires += 1;
        }
        fn is_complete(&self) -> bool {
            false
        }
    }

    #[test]
    fn rearmed_timer_fires_once() {
        let mut sim = SimBuilder::new(Topology::star(1), 0, |_| Rearmer { fires: 0 }).build();
        let report = sim.run(Duration::from_secs(10));
        assert_eq!(sim.node(NodeId(0)).fires, 1);
        assert_eq!(report.outcome, Outcome::Drained);
    }

    /// Cancel prevents firing entirely.
    struct Canceler {
        fires: u32,
    }
    impl Protocol for Canceler {
        fn on_init(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(TimerId(1), Duration::from_secs(1));
            ctx.cancel_timer(TimerId(1));
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: NodeId, _: &[u8]) {}
        fn on_timer(&mut self, _: &mut Context<'_>, _: TimerId) {
            self.fires += 1;
        }
        fn is_complete(&self) -> bool {
            false
        }
    }

    #[test]
    fn canceled_timer_never_fires() {
        let mut sim = SimBuilder::new(Topology::star(1), 0, |_| Canceler { fires: 0 }).build();
        let _ = sim.run(Duration::from_secs(10));
        assert_eq!(sim.node(NodeId(0)).fires, 0);
    }
}

//! Node identities, the protocol trait, and the execution context.
//!
//! The contract lives in `lrs-host`: protocols written against
//! [`Protocol`] are host-agnostic, and this simulator is one of two
//! drivers (the other being `lrs_host::host::Host`, a real-time socket
//! loop). This module re-exports the contract under its historical
//! simulator paths; see the crate root for the simulator-side
//! semantics of each [`Action`].

pub use lrs_host::node::{Action, Context, NodeId, PacketKind, Protocol, TimerId};

//! Node identities, the protocol trait, and the execution context.
//!
//! Dissemination protocols (Deluge, Seluge, LR-Seluge) are written
//! against [`Protocol`]; the simulator delivers packets and timer
//! expirations, and the protocol reacts by broadcasting packets and
//! (re)arming timers through the [`Context`].

use crate::time::{Duration, SimTime};
use lrs_rng::DetRng;

/// A node identifier (index into the topology's node list).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol-chosen timer identifier. Re-arming the same id replaces the
/// pending expiration (only the latest arm fires).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u32);

/// Classification of packets for the metric counters (the paper reports
/// data, SNACK, and advertisement counts separately, plus the signature
/// packet).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PacketKind {
    /// Periodic Trickle advertisement.
    Adv,
    /// Selective-NACK request.
    Snack,
    /// Code-image data packet.
    Data,
    /// Hash-page (`M0`) packet.
    HashPage,
    /// The signed Merkle-root packet.
    Signature,
}

impl PacketKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [PacketKind; 5] = [
        PacketKind::Adv,
        PacketKind::Snack,
        PacketKind::Data,
        PacketKind::HashPage,
        PacketKind::Signature,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            PacketKind::Adv => "adv",
            PacketKind::Snack => "snack",
            PacketKind::Data => "data",
            PacketKind::HashPage => "hashpage",
            PacketKind::Signature => "sig",
        }
    }
}

/// Actions a protocol can request; collected by the [`Context`] and
/// executed by the simulator after the handler returns.
#[derive(Debug)]
pub(crate) enum Action {
    Broadcast { kind: PacketKind, data: Vec<u8> },
    SetTimer { timer: TimerId, delay: Duration },
    CancelTimer { timer: TimerId },
    Note { label: &'static str, a: u64, b: u64 },
}

/// The environment handed to every protocol callback.
pub struct Context<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node being executed.
    pub id: NodeId,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) actions: &'a mut Vec<Action>,
    /// Airtime per byte, for protocols that pace their transmissions.
    pub(crate) us_per_byte: u64,
    pub(crate) per_packet_overhead_us: u64,
}

impl<'a> Context<'a> {
    /// Broadcasts a packet to all one-hop neighbors.
    ///
    /// The transmission is subject to CSMA deferral, airtime, collisions,
    /// per-link loss, and the application-layer drop probability.
    pub fn broadcast(&mut self, kind: PacketKind, data: Vec<u8>) {
        self.actions.push(Action::Broadcast { kind, data });
    }

    /// Arms (or re-arms) timer `timer` to fire after `delay`.
    pub fn set_timer(&mut self, timer: TimerId, delay: Duration) {
        self.actions.push(Action::SetTimer { timer, delay });
    }

    /// Cancels a pending timer (no-op if not armed).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.actions.push(Action::CancelTimer { timer });
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Emits a protocol-level trace annotation (SNACK round, page
    /// completion, scheduler decision, …). Purely observational: the
    /// event reaches an attached [`TraceSink`](crate::trace::TraceSink)
    /// and is otherwise dropped, so noting never changes a run.
    pub fn note(&mut self, label: &'static str, a: u64, b: u64) {
        self.actions.push(Action::Note { label, a, b });
    }

    /// Time a packet of `bytes` occupies the channel.
    pub fn airtime(&self, bytes: usize) -> Duration {
        Duration::from_micros(self.per_packet_overhead_us + self.us_per_byte * bytes as u64)
    }
}

/// A per-node protocol state machine.
///
/// Implementations must be deterministic given the [`Context`] RNG; the
/// simulator guarantees reproducible runs for a fixed seed.
pub trait Protocol {
    /// Called once at time zero.
    fn on_init(&mut self, ctx: &mut Context<'_>);

    /// Called when a packet is received (after all loss processes).
    fn on_packet(&mut self, ctx: &mut Context<'_>, from: NodeId, data: &[u8]);

    /// Called when an armed timer fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId);

    /// Whether this node has finished its dissemination goal; the
    /// simulator records the first time this becomes true and can stop
    /// early once every node is complete.
    fn is_complete(&self) -> bool;

    /// Called when the node restarts after a crash fault. The protocol
    /// must drop whatever its model considers volatile RAM state and
    /// resume from what survives in "flash". The default treats the
    /// whole protocol as flash-resident and simply re-runs
    /// [`on_init`](Self::on_init).
    fn on_reboot(&mut self, ctx: &mut Context<'_>) {
        self.on_init(ctx);
    }

    /// A monotone-per-node goodput indicator for the simulator's stall
    /// watchdog: any genuine forward progress (a buffered packet, a
    /// completed page) must eventually increase it. The default only
    /// distinguishes incomplete from complete.
    fn progress(&self) -> u64 {
        u64::from(self.is_complete())
    }

    /// One-line state description (page/packet bit-vectors and the
    /// like) included in the watchdog's diagnostic dump. Empty by
    /// default.
    fn diagnostic(&self) -> String {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_formula() {
        let mut rng = DetRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let ctx = Context {
            now: SimTime::ZERO,
            id: NodeId(0),
            rng: &mut rng,
            actions: &mut actions,
            us_per_byte: 416,
            per_packet_overhead_us: 1000,
        };
        assert_eq!(ctx.airtime(36), Duration::from_micros(1000 + 36 * 416));
    }

    #[test]
    fn actions_queue_in_order() {
        let mut rng = DetRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut ctx = Context {
            now: SimTime::ZERO,
            id: NodeId(1),
            rng: &mut rng,
            actions: &mut actions,
            us_per_byte: 1,
            per_packet_overhead_us: 0,
        };
        ctx.broadcast(PacketKind::Adv, vec![1]);
        ctx.set_timer(TimerId(7), Duration::from_secs(1));
        ctx.cancel_timer(TimerId(7));
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Broadcast { .. }));
        assert!(matches!(
            actions[1],
            Action::SetTimer {
                timer: TimerId(7),
                ..
            }
        ));
        assert!(matches!(
            actions[2],
            Action::CancelTimer { timer: TimerId(7) }
        ));
    }

    #[test]
    fn packet_kind_labels() {
        for kind in PacketKind::ALL {
            assert!(!kind.label().is_empty());
        }
    }
}

//! Discrete-event lossy wireless network simulator.
//!
//! This crate is the evaluation substrate for the LR-Seluge reproduction:
//! the paper evaluates Deluge/Seluge/LR-Seluge in TOSSIM-style
//! simulations; we implement the equivalent simulator from scratch.
//!
//! * A virtual-time event queue drives per-node protocol state machines
//!   ([`sim`], [`event`]).
//! * Protocols are implemented against the [`Protocol`] trait and interact
//!   with the world through a [`Context`] (broadcast, timers, RNG).
//! * The broadcast [`medium`] models transmission airtime, CSMA-style
//!   deferral with random backoff, half-duplex radios, and collisions
//!   between overlapping in-range transmissions.
//! * Packet losses combine per-link PRR from the [`topology`], optional
//!   bursty [`noise`], and the paper's application-layer i.i.d. drop
//!   probability `p` (§VI-A: "packet losses are emulated by each node
//!   dropping received data, advertisement, or SNACK packets with the
//!   same probability p at the application layer").
//! * [`topology`] builds one-hop stars, 15×15 grids at tight/medium
//!   density (standing in for the TinyOS `15-15-*-mica2-grid.txt` files),
//!   and random deployments.
//! * [`trickle`] implements the Trickle advertisement timer used by the
//!   MAINTAIN state, and [`metrics`] the counters behind every figure.
//! * [`fault`] schedules deterministic crash/reboot, link-churn,
//!   asymmetric-degradation, and clock-drift faults; the simulator's
//!   stall watchdog and per-delivery invariant hooks turn livelocks and
//!   protocol violations into structured diagnostics instead of hangs.
//! * [`attack`] is the adversary-side sibling of [`fault`]: seeded,
//!   replayable schedules of adversarial-node placement and behaviour,
//!   serialized into capsule scenario tags.
//!
//! * [`builder`] provides the fluent [`SimBuilder`] entry point, and
//!   [`shard`] a conservatively-synchronized parallel engine that
//!   partitions the topology into spatial shards with per-shard event
//!   queues and worker threads; for a fixed seed its results are
//!   identical at every shard count.
//!
//! # Example
//!
//! ```
//! use lrs_netsim::{
//!     builder::SimBuilder,
//!     topology::Topology,
//!     node::{Context, NodeId, PacketKind, Protocol, TimerId},
//!     time::Duration,
//! };
//!
//! /// Every node floods a token once.
//! struct Flood { seen: bool }
//! impl Protocol for Flood {
//!     fn on_init(&mut self, ctx: &mut Context<'_>) {
//!         if ctx.id == NodeId(0) {
//!             self.seen = true;
//!             ctx.broadcast(PacketKind::Data, b"token".to_vec());
//!         }
//!     }
//!     fn on_packet(&mut self, ctx: &mut Context<'_>, _from: NodeId, _data: &[u8]) {
//!         if !self.seen {
//!             self.seen = true;
//!             ctx.broadcast(PacketKind::Data, b"token".to_vec());
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerId) {}
//!     fn is_complete(&self) -> bool { self.seen }
//! }
//!
//! let topo = Topology::line(5, 1.0);
//! let mut sim = SimBuilder::new(topo, 42, |_| Flood { seen: false }).build();
//! let report = sim.run(Duration::from_secs(60));
//! assert!(report.all_complete);
//! ```

pub mod attack;
pub mod builder;
pub mod capsule;
pub mod digest;
pub mod energy;
pub mod event;
pub mod fault;
pub mod medium;
pub mod metrics;
pub mod node;
pub mod noise;
pub mod replay;
pub mod shard;
pub mod shrink;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;
pub mod trickle;
pub mod violation;

pub use attack::{AttackConfig, AttackEntry, AttackPlan, AttackVector};
pub use builder::SimBuilder;
pub use capsule::{Capsule, CapsuleError, CapsuleSpec, EngineDigest, RunDigest};
pub use event::OrderKey;
pub use fault::{FaultConfig, FaultEvent, FaultPlan, PPM_ONE};
pub use metrics::Metrics;
pub use node::{Context, NodeId, PacketKind, Protocol, TimerId};
pub use replay::{
    bisect_engines, bisect_shard_counts, first_divergence, first_keyed_divergence,
    replay_sequential, replay_sharded, verify_replay, DigestMismatch, Divergence, ReplayError,
    ReplayRun,
};
pub use shard::ShardedRun;
pub use shrink::{ddmin, shrink_fault_plan, ShrinkStats};
pub use sim::{DiagnosticDump, NodeDiag, Outcome, RunReport, SimConfig, Simulator};
pub use time::{Duration, SimTime};
pub use topology::Topology;
pub use trace::{JsonlTrace, LossCause, RingTrace, SharedRingTrace, TraceEvent, TraceSink};
pub use violation::{BufferKind, ContentDigest, InvariantViolation, ViolationRecord};

//! Per-node radio energy accounting.
//!
//! The paper's motivation for minimizing transmissions is the sensor
//! nodes' energy budget (§I: bogus traffic "depletes the limited
//! energy"; §VI compares communication cost as its proxy). This module
//! turns the byte counters into joules using mica2/CC1000-class
//! constants, so experiments can report per-node energy directly.

use crate::node::NodeId;

/// Radio energy parameters.
///
/// Defaults approximate a mica2's CC1000 at 3 V: ~16.5 mA transmit and
/// ~9.6 mA receive at 19.2 kbps ⇒ per-byte energy at 416 µs/byte.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// Energy to transmit one byte (joules).
    pub tx_j_per_byte: f64,
    /// Energy to receive one byte (joules).
    pub rx_j_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 3 V * 16.5 mA * 416 µs  and  3 V * 9.6 mA * 416 µs.
        EnergyModel {
            tx_j_per_byte: 3.0 * 0.0165 * 416e-6,
            rx_j_per_byte: 3.0 * 0.0096 * 416e-6,
        }
    }
}

/// Per-node byte counters, maintained by the simulator.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnergyLedger {
    tx_bytes: Vec<u64>,
    rx_bytes: Vec<u64>,
}

impl EnergyLedger {
    /// Creates a ledger for `n` nodes.
    pub fn new(n: usize) -> Self {
        EnergyLedger {
            tx_bytes: vec![0; n],
            rx_bytes: vec![0; n],
        }
    }

    /// Records a transmission by `node`.
    pub fn record_tx(&mut self, node: NodeId, bytes: usize) {
        self.tx_bytes[node.index()] += bytes as u64;
    }

    /// Records a reception by `node` (counted whenever the radio decoded
    /// the packet, even if the application later drops or rejects it —
    /// that is precisely the DoS cost the paper's design bounds).
    pub fn record_rx(&mut self, node: NodeId, bytes: usize) {
        self.rx_bytes[node.index()] += bytes as u64;
    }

    /// Bytes transmitted by `node`.
    pub fn tx_bytes(&self, node: NodeId) -> u64 {
        self.tx_bytes[node.index()]
    }

    /// Bytes received by `node`.
    pub fn rx_bytes(&self, node: NodeId) -> u64 {
        self.rx_bytes[node.index()]
    }

    /// Adds `other`'s counters elementwise. Both ledgers must cover the
    /// same node count; the sharded engine merges per-shard ledgers
    /// (each zero outside its own nodes) into one network-wide view.
    pub fn merge(&mut self, other: &EnergyLedger) {
        assert_eq!(self.tx_bytes.len(), other.tx_bytes.len());
        for (a, b) in self.tx_bytes.iter_mut().zip(&other.tx_bytes) {
            *a += b;
        }
        for (a, b) in self.rx_bytes.iter_mut().zip(&other.rx_bytes) {
            *a += b;
        }
    }

    /// Energy spent by `node` under `model` (joules).
    pub fn joules(&self, node: NodeId, model: &EnergyModel) -> f64 {
        self.tx_bytes[node.index()] as f64 * model.tx_j_per_byte
            + self.rx_bytes[node.index()] as f64 * model.rx_j_per_byte
    }

    /// Total energy across all nodes (joules).
    pub fn total_joules(&self, model: &EnergyModel) -> f64 {
        (0..self.tx_bytes.len())
            .map(|i| self.joules(NodeId(i as u32), model))
            .sum()
    }

    /// The node that spent the most energy — network lifetime is gated
    /// by the worst-off node.
    pub fn max_joules(&self, model: &EnergyModel) -> (NodeId, f64) {
        (0..self.tx_bytes.len())
            .map(|i| (NodeId(i as u32), self.joules(NodeId(i as u32), model)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((NodeId(0), 0.0))
    }

    /// One-line drain summary under `model` — the graceful-degradation
    /// report's energy column.
    pub fn summary(&self, model: &EnergyModel) -> EnergySummary {
        let n = self.tx_bytes.len();
        let total_j = self.total_joules(model);
        let (max_node, max_j) = self.max_joules(model);
        EnergySummary {
            total_j,
            mean_j: if n > 0 { total_j / n as f64 } else { 0.0 },
            max_j,
            max_node,
        }
    }
}

/// Network-wide energy-drain summary (see [`EnergyLedger::summary`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergySummary {
    /// Total energy spent across all nodes (joules).
    pub total_j: f64,
    /// Mean per-node energy (joules).
    pub mean_j: f64,
    /// Energy spent by the worst-off node (joules).
    pub max_j: f64,
    /// The worst-off node.
    pub max_node: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_and_converts() {
        let model = EnergyModel::default();
        let mut ledger = EnergyLedger::new(3);
        ledger.record_tx(NodeId(0), 100);
        ledger.record_rx(NodeId(1), 100);
        ledger.record_rx(NodeId(2), 50);
        assert_eq!(ledger.tx_bytes(NodeId(0)), 100);
        assert_eq!(ledger.rx_bytes(NodeId(1)), 100);
        // Transmitting costs more than receiving the same bytes.
        assert!(ledger.joules(NodeId(0), &model) > ledger.joules(NodeId(1), &model));
        assert!(ledger.joules(NodeId(1), &model) > ledger.joules(NodeId(2), &model));
        let total = ledger.total_joules(&model);
        let parts: f64 = (0..3).map(|i| ledger.joules(NodeId(i), &model)).sum();
        assert!((total - parts).abs() < 1e-12);
    }

    #[test]
    fn max_identifies_hotspot() {
        let model = EnergyModel::default();
        let mut ledger = EnergyLedger::new(3);
        ledger.record_tx(NodeId(2), 1000);
        ledger.record_rx(NodeId(1), 10);
        let (node, j) = ledger.max_joules(&model);
        assert_eq!(node, NodeId(2));
        assert!(j > 0.0);
    }

    #[test]
    fn summary_matches_scalar_accessors() {
        let model = EnergyModel::default();
        let mut ledger = EnergyLedger::new(4);
        ledger.record_tx(NodeId(1), 300);
        ledger.record_rx(NodeId(3), 700);
        let s = ledger.summary(&model);
        assert_eq!(s.total_j, ledger.total_joules(&model));
        assert_eq!(s.mean_j, s.total_j / 4.0);
        let (node, j) = ledger.max_joules(&model);
        assert_eq!((s.max_node, s.max_j), (node, j));
        // An empty ledger summarizes to zeros, not NaN.
        assert_eq!(EnergyLedger::new(0).summary(&model).mean_j, 0.0);
    }

    #[test]
    fn default_constants_sane() {
        let m = EnergyModel::default();
        assert!(m.tx_j_per_byte > m.rx_j_per_byte);
        // ~20 µJ per transmitted byte at these constants.
        assert!(m.tx_j_per_byte > 1e-6 && m.tx_j_per_byte < 1e-4);
    }
}

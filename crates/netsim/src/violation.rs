//! Typed protocol-invariant violations.
//!
//! PR 3 introduced per-delivery invariant checking with stringly-typed
//! errors (`Result<(), String>`); this module replaces them with a
//! structured [`InvariantViolation`] shared by every scheme (LR-Seluge,
//! Seluge, and custom checkers) so diagnostic dumps can serialize the
//! failure structurally — which buffer, which page, which packet index,
//! and the expected/actual content digests — instead of an opaque
//! message.
//!
//! Digests are 64-bit FNV-1a condensations of the compared byte
//! strings: enough to tell *that* and *where* two buffers diverged in a
//! dump, without pulling a crypto dependency into the simulator.

use crate::node::NodeId;
use crate::time::SimTime;
use std::fmt;

/// A 64-bit content digest (FNV-1a) used to report expected/actual
/// bytes in violations without embedding whole packets.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentDigest(pub u64);

impl ContentDigest {
    /// The FNV-1a offset basis — the digest of the empty byte string,
    /// and the seed for incremental digests built with [`absorb`].
    ///
    /// [`absorb`]: ContentDigest::absorb
    pub const EMPTY: ContentDigest = ContentDigest(0xcbf2_9ce4_8422_2325);

    /// Digests `bytes` (FNV-1a 64).
    pub fn of(bytes: &[u8]) -> Self {
        ContentDigest::EMPTY.absorb(bytes)
    }

    /// Folds `bytes` into a running digest, so multi-part streams can
    /// be digested without concatenating:
    /// `EMPTY.absorb(a).absorb(b) == ContentDigest::of(a ++ b)`.
    pub fn absorb(self, bytes: &[u8]) -> Self {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        ContentDigest(h)
    }

    /// Digest of an absent value (e.g. a node whose image failed to
    /// reassemble).
    pub const MISSING: ContentDigest = ContentDigest(0);
}

impl fmt::Debug for ContentDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for ContentDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Which packet buffer a buffer-shape violation refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferKind {
    /// The hash-page (`M0`) packet buffer.
    HashPage,
    /// The in-flight data-page packet buffer.
    Page,
}

impl BufferKind {
    /// Stable lowercase label for JSON output.
    pub fn label(self) -> &'static str {
        match self {
            BufferKind::HashPage => "hash_page",
            BufferKind::Page => "page",
        }
    }
}

/// A violated protocol invariant, as detected by a scheme's
/// `verify_invariants` or a custom checker.
///
/// Every variant carries the structure a post-mortem needs: the buffer
/// and page/packet coordinates involved, and expected/actual
/// [`ContentDigest`]s where byte content diverged. The node and virtual
/// time are attached by the simulator (see [`ViolationRecord`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// The completion counter exceeds the number of items.
    CompletionOverflow {
        /// Items the node claims complete.
        complete: u64,
        /// Items that exist.
        total: u64,
    },
    /// A packet buffer's slot count or occupancy disagrees with its
    /// bound or its counter.
    BufferBound {
        /// Which buffer.
        buffer: BufferKind,
        /// Slots the buffer holds.
        slots: u64,
        /// Occupied slots actually counted.
        held: u64,
        /// The node's own occupancy counter.
        count: u64,
    },
    /// An unauthenticated (byte-divergent) packet sits in a buffer.
    UnauthenticPacket {
        /// Which buffer.
        buffer: BufferKind,
        /// Page the packet belongs to (`None` for the hash page).
        page: Option<u32>,
        /// Packet index within the page.
        index: u32,
        /// Digest of the authentic packet.
        expected: ContentDigest,
        /// Digest of the buffered bytes.
        actual: ContentDigest,
    },
    /// Page packets are buffered although no page is in flight.
    UnexpectedBufferOccupancy {
        /// The node's completion counter at the time.
        complete: u64,
    },
    /// The stored signature body differs from the authentic artifacts.
    SignatureMismatch {
        /// Digest of the authentic signature body.
        expected: ContentDigest,
        /// Digest of the stored body (or [`ContentDigest::MISSING`]).
        actual: ContentDigest,
    },
    /// A completed page's bytes differ from preprocessing.
    PageMismatch {
        /// The diverging page.
        page: u32,
        /// The diverging packet within it, when known.
        packet: Option<u32>,
        /// Digest of the authentic bytes.
        expected: ContentDigest,
        /// Digest of the node's bytes.
        actual: ContentDigest,
    },
    /// Fewer completed pages are held than the completion counter
    /// implies.
    PagesMissing {
        /// The node's completion counter.
        complete: u64,
        /// Completed pages actually held.
        held: u64,
    },
    /// A complete node's reassembled image differs from the origin.
    ImageMismatch {
        /// Digest of the origin image.
        expected: ContentDigest,
        /// Digest of the node's image (or [`ContentDigest::MISSING`]).
        actual: ContentDigest,
    },
    /// A free-form violation from a custom checker.
    Custom {
        /// Human-readable description.
        message: String,
    },
}

impl InvariantViolation {
    /// Stable lowercase kind label for JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            InvariantViolation::CompletionOverflow { .. } => "completion_overflow",
            InvariantViolation::BufferBound { .. } => "buffer_bound",
            InvariantViolation::UnauthenticPacket { .. } => "unauthentic_packet",
            InvariantViolation::UnexpectedBufferOccupancy { .. } => "unexpected_buffer",
            InvariantViolation::SignatureMismatch { .. } => "signature_mismatch",
            InvariantViolation::PageMismatch { .. } => "page_mismatch",
            InvariantViolation::PagesMissing { .. } => "pages_missing",
            InvariantViolation::ImageMismatch { .. } => "image_mismatch",
            InvariantViolation::Custom { .. } => "custom",
        }
    }

    /// Renders the violation as one JSON object with a `"kind"` tag and
    /// the variant's fields.
    pub fn to_json(&self) -> String {
        let kind = self.kind();
        match self {
            InvariantViolation::CompletionOverflow { complete, total } => {
                format!(r#"{{"kind":"{kind}","complete":{complete},"total":{total}}}"#)
            }
            InvariantViolation::BufferBound {
                buffer,
                slots,
                held,
                count,
            } => format!(
                r#"{{"kind":"{kind}","buffer":"{}","slots":{slots},"held":{held},"count":{count}}}"#,
                buffer.label()
            ),
            InvariantViolation::UnauthenticPacket {
                buffer,
                page,
                index,
                expected,
                actual,
            } => format!(
                r#"{{"kind":"{kind}","buffer":"{}","page":{},"index":{index},"expected":"{expected}","actual":"{actual}"}}"#,
                buffer.label(),
                page.map_or("null".to_string(), |p| p.to_string()),
            ),
            InvariantViolation::UnexpectedBufferOccupancy { complete } => {
                format!(r#"{{"kind":"{kind}","complete":{complete}}}"#)
            }
            InvariantViolation::SignatureMismatch { expected, actual } => {
                format!(r#"{{"kind":"{kind}","expected":"{expected}","actual":"{actual}"}}"#)
            }
            InvariantViolation::PageMismatch {
                page,
                packet,
                expected,
                actual,
            } => format!(
                r#"{{"kind":"{kind}","page":{page},"packet":{},"expected":"{expected}","actual":"{actual}"}}"#,
                packet.map_or("null".to_string(), |p| p.to_string()),
            ),
            InvariantViolation::PagesMissing { complete, held } => {
                format!(r#"{{"kind":"{kind}","complete":{complete},"held":{held}}}"#)
            }
            InvariantViolation::ImageMismatch { expected, actual } => {
                format!(r#"{{"kind":"{kind}","expected":"{expected}","actual":"{actual}"}}"#)
            }
            InvariantViolation::Custom { message } => format!(
                r#"{{"kind":"{kind}","message":"{}"}}"#,
                message.replace('\\', "\\\\").replace('"', "\\\"")
            ),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::CompletionOverflow { complete, total } => {
                write!(f, "complete={complete} exceeds {total} items")
            }
            InvariantViolation::BufferBound {
                buffer,
                slots,
                held,
                count,
            } => write!(
                f,
                "{} buffer bound violated: {slots} slots, {held} held, count {count}",
                buffer.label()
            ),
            InvariantViolation::UnauthenticPacket {
                buffer,
                page,
                index,
                ..
            } => match page {
                Some(p) => write!(
                    f,
                    "unauthentic {} packet buffered: page {p} idx {index}",
                    buffer.label()
                ),
                None => write!(
                    f,
                    "unauthentic {} packet buffered at {index}",
                    buffer.label()
                ),
            },
            InvariantViolation::UnexpectedBufferOccupancy { complete } => {
                write!(f, "page packets buffered while complete={complete}")
            }
            InvariantViolation::SignatureMismatch { .. } => {
                write!(f, "signature item complete but body does not match")
            }
            InvariantViolation::PageMismatch { page, packet, .. } => match packet {
                Some(j) => write!(f, "completed page {page} packet {j} differs"),
                None => write!(f, "decoded page {page} differs from preprocessing"),
            },
            InvariantViolation::PagesMissing { complete, held } => {
                write!(
                    f,
                    "complete={complete} but only {held} completed pages held"
                )
            }
            InvariantViolation::ImageMismatch { .. } => {
                write!(f, "complete node's image differs from origin")
            }
            InvariantViolation::Custom { message } => f.write_str(message),
        }
    }
}

impl From<String> for InvariantViolation {
    /// Wraps a free-form message, easing migration of string-based
    /// custom checkers.
    fn from(message: String) -> Self {
        InvariantViolation::Custom { message }
    }
}

impl From<&str> for InvariantViolation {
    fn from(message: &str) -> Self {
        InvariantViolation::Custom {
            message: message.to_string(),
        }
    }
}

/// A violation pinned to the node and virtual time where the simulator
/// observed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViolationRecord {
    /// When the violating delivery was processed.
    pub at: SimTime,
    /// The node whose state violated the invariant.
    pub node: NodeId,
    /// What was violated.
    pub violation: InvariantViolation,
}

impl ViolationRecord {
    /// Renders the record as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"t":{},"node":{},"violation":{}}}"#,
            self.at.as_micros(),
            self.node.0,
            self.violation.to_json()
        )
    }
}

impl fmt::Display for ViolationRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated at t={}us on n{}: {}",
            self.at.as_micros(),
            self.node.0,
            self.violation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_distinguishes_content() {
        let a = ContentDigest::of(b"hello");
        let b = ContentDigest::of(b"hellp");
        assert_ne!(a, b);
        assert_eq!(a, ContentDigest::of(b"hello"));
        assert_eq!(format!("{a}").len(), 16);
    }

    #[test]
    fn json_is_structured_per_variant() {
        let v = InvariantViolation::UnauthenticPacket {
            buffer: BufferKind::Page,
            page: Some(3),
            index: 7,
            expected: ContentDigest(1),
            actual: ContentDigest(2),
        };
        let json = v.to_json();
        assert!(json.contains(r#""kind":"unauthentic_packet""#), "{json}");
        assert!(json.contains(r#""page":3"#), "{json}");
        assert!(json.contains(r#""index":7"#), "{json}");
        let hp = InvariantViolation::UnauthenticPacket {
            buffer: BufferKind::HashPage,
            page: None,
            index: 2,
            expected: ContentDigest(1),
            actual: ContentDigest(2),
        };
        assert!(hp.to_json().contains(r#""page":null"#));
        let c = InvariantViolation::Custom {
            message: "say \"no\"".into(),
        };
        assert!(c.to_json().contains(r#"\"no\""#));
    }

    #[test]
    fn display_matches_legacy_strings() {
        // Dump `reason` strings built from Display stay greppable like
        // the PR 3 string errors they replace.
        let v = InvariantViolation::PageMismatch {
            page: 4,
            packet: None,
            expected: ContentDigest(0),
            actual: ContentDigest(1),
        };
        assert_eq!(v.to_string(), "decoded page 4 differs from preprocessing");
        let r = ViolationRecord {
            at: SimTime(120),
            node: NodeId(9),
            violation: v,
        };
        assert!(r.to_string().contains("t=120us on n9"));
        assert!(r
            .to_json()
            .contains(r#""violation":{"kind":"page_mismatch""#));
    }

    #[test]
    fn string_conversion_builds_custom() {
        let v: InvariantViolation = "boom".into();
        assert_eq!(v.kind(), "custom");
        assert_eq!(v.to_string(), "boom");
    }
}

//! The Trickle timer (Levis et al., NSDI 2004).
//!
//! Deluge, Seluge, and LR-Seluge all regulate advertisement frequency
//! with Trickle (paper §IV-D-1): each node maintains an interval `I`
//! in `[I_min, I_max]`; within each interval it picks a random time
//! `t ∈ [I/2, I)` and broadcasts its advertisement at `t` only if it has
//! heard fewer than `K` consistent advertisements this interval. `I`
//! doubles at every interval end (up to `I_max`) and resets to `I_min` on
//! inconsistency (a neighbor with newer/older state).
//!
//! This module is a pure state machine; protocols drive it with two
//! timers and feed it heard advertisements.

use crate::time::Duration;
use lrs_rng::DetRng;

/// Trickle parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrickleConfig {
    /// Smallest interval.
    pub i_min: Duration,
    /// Largest interval.
    pub i_max: Duration,
    /// Redundancy constant `K`.
    pub k: u32,
}

impl Default for TrickleConfig {
    fn default() -> Self {
        TrickleConfig {
            i_min: Duration::from_millis(500),
            i_max: Duration::from_secs(60),
            k: 1,
        }
    }
}

/// What the protocol should do when an interval begins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalPlan {
    /// Delay from interval start to the (potential) advertisement.
    pub fire_in: Duration,
    /// Total interval length (arm the interval-end timer with this).
    pub interval: Duration,
}

/// The Trickle state machine.
#[derive(Clone, Debug)]
pub struct Trickle {
    config: TrickleConfig,
    interval: Duration,
    heard: u32,
}

impl Trickle {
    /// Creates the timer at `I = I_min`.
    pub fn new(config: TrickleConfig) -> Self {
        Trickle {
            interval: config.i_min,
            config,
            heard: 0,
        }
    }

    /// Begins a new interval: resets the redundancy counter and picks the
    /// advertisement point `t ∈ [I/2, I)`.
    pub fn begin_interval(&mut self, rng: &mut DetRng) -> IntervalPlan {
        self.heard = 0;
        let half = self.interval.half().as_micros().max(1);
        let fire_in = Duration::from_micros(half + rng.gen_range(0..half));
        IntervalPlan {
            fire_in,
            interval: self.interval,
        }
    }

    /// Interval ended: doubles `I` (clamped to `I_max`). The caller should
    /// then call [`begin_interval`](Self::begin_interval) again.
    pub fn interval_expired(&mut self) {
        self.interval = self.interval.mul(2).min(self.config.i_max);
    }

    /// A consistent advertisement was overheard.
    pub fn heard_consistent(&mut self) {
        self.heard += 1;
    }

    /// An inconsistency was detected: reset `I` to `I_min`. Returns true
    /// if the interval actually changed (the caller should restart its
    /// interval timers in that case).
    pub fn reset(&mut self) -> bool {
        if self.interval > self.config.i_min {
            self.interval = self.config.i_min;
            true
        } else {
            false
        }
    }

    /// Whether the advertisement at the fire point should be suppressed.
    pub fn suppress(&self) -> bool {
        self.heard >= self.config.k
    }

    /// The current interval length.
    pub fn interval(&self) -> Duration {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrickleConfig {
        TrickleConfig {
            i_min: Duration::from_secs(1),
            i_max: Duration::from_secs(8),
            k: 1,
        }
    }

    #[test]
    fn fire_point_in_second_half() {
        let mut t = Trickle::new(cfg());
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..100 {
            let plan = t.begin_interval(&mut rng);
            assert!(plan.fire_in >= plan.interval.half());
            assert!(plan.fire_in < plan.interval + Duration::from_micros(1));
        }
    }

    #[test]
    fn interval_doubles_to_max() {
        let mut t = Trickle::new(cfg());
        assert_eq!(t.interval(), Duration::from_secs(1));
        t.interval_expired();
        assert_eq!(t.interval(), Duration::from_secs(2));
        t.interval_expired();
        t.interval_expired();
        assert_eq!(t.interval(), Duration::from_secs(8));
        t.interval_expired();
        assert_eq!(t.interval(), Duration::from_secs(8), "clamped at i_max");
    }

    #[test]
    fn reset_returns_to_imin() {
        let mut t = Trickle::new(cfg());
        t.interval_expired();
        t.interval_expired();
        assert!(t.reset());
        assert_eq!(t.interval(), Duration::from_secs(1));
        assert!(!t.reset(), "already at i_min");
    }

    #[test]
    fn suppression_after_k_heard() {
        let mut t = Trickle::new(cfg());
        let mut rng = DetRng::seed_from_u64(0);
        let _ = t.begin_interval(&mut rng);
        assert!(!t.suppress());
        t.heard_consistent();
        assert!(t.suppress());
        // New interval clears the counter.
        let _ = t.begin_interval(&mut rng);
        assert!(!t.suppress());
    }
}

//! Network topologies and per-link reception quality.
//!
//! The paper's one-hop experiments use a fully connected cluster with
//! perfect links (losses injected at the application layer); the
//! multi-hop experiments use 15×15 mica2 grids at two densities. The
//! original TinyOS topology files are not redistributable, so
//! [`Topology::grid`] regenerates equivalent grids from a distance-based
//! link model with per-link log-normal-style shadowing jitter — what the
//! TinyOS topology tool itself does from a propagation model.

use crate::node::NodeId;
use lrs_rng::DetRng;

/// A node position in meters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Position {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A directed link with a packet-reception ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Receiving node.
    pub to: NodeId,
    /// Packet-reception ratio in [0, 1] before noise and app-layer drops.
    pub prr: f64,
}

/// A static network topology: positions plus a directed PRR link table.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    positions: Vec<Position>,
    /// Outgoing links per node (only links with prr > 0 are stored).
    links: Vec<Vec<Link>>,
}

/// Distance-based link model parameters (mica2-flavored).
///
/// PRR is ~1 inside `connected_radius`, decays smoothly to 0 at
/// `max_radius`, with multiplicative per-link jitter standing in for
/// log-normal shadowing.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Radius of near-perfect reception (m).
    pub connected_radius: f64,
    /// Radius beyond which no packets are received (m).
    pub max_radius: f64,
    /// Magnitude of per-link random PRR jitter in the transitional region.
    pub shadowing_jitter: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            connected_radius: 12.0,
            max_radius: 30.0,
            shadowing_jitter: 0.15,
        }
    }
}

impl LinkModel {
    /// Mean PRR at distance `d` (before jitter).
    pub fn mean_prr(&self, d: f64) -> f64 {
        if d <= self.connected_radius {
            0.98
        } else if d >= self.max_radius {
            0.0
        } else {
            // Smooth cubic falloff across the transitional region, which
            // empirically matches measured mica2 PRR-vs-distance curves.
            let t = (d - self.connected_radius) / (self.max_radius - self.connected_radius);
            0.98 * (1.0 - t * t * (3.0 - 2.0 * t))
        }
    }
}

impl Topology {
    /// Reassembles a topology from explicit positions and per-node link
    /// tables.
    ///
    /// This is the flight-recorder path: a capsule stores the exact
    /// link table of the captured run, and replay must reuse it verbatim
    /// rather than resample any link model.
    ///
    /// # Panics
    ///
    /// Panics if `links.len() != positions.len()` or a link targets a
    /// node outside the position table.
    pub fn from_parts(positions: Vec<Position>, links: Vec<Vec<Link>>) -> Self {
        assert_eq!(
            positions.len(),
            links.len(),
            "one link table per node required"
        );
        let n = positions.len();
        for out in &links {
            for link in out {
                assert!(
                    (link.to.0 as usize) < n,
                    "link target n{} out of range (n={n})",
                    link.to.0
                );
            }
        }
        Topology { positions, links }
    }

    /// Builds a topology from explicit positions and a link model.
    ///
    /// Per-link shadowing jitter is sampled deterministically from `seed`.
    pub fn from_positions(positions: Vec<Position>, model: LinkModel, seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed ^ 0x7090_70e0);
        let n = positions.len();
        let mut links = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = positions[i].distance(&positions[j]);
                let mean = model.mean_prr(d);
                if mean <= 0.0 {
                    continue;
                }
                let jitter = 1.0 + model.shadowing_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
                let prr = (mean * jitter).clamp(0.0, 1.0);
                if prr > 0.01 {
                    links[i].push(Link {
                        to: NodeId(j as u32),
                        prr,
                    });
                }
            }
        }
        Topology { positions, links }
    }

    /// A fully connected one-hop cluster of `n` nodes with perfect links
    /// (PRR 1.0): the paper's §VI-A/B setting where "nodes are placed
    /// close enough to eliminate packet transmission errors".
    pub fn star(n: usize) -> Self {
        let positions = (0..n)
            .map(|i| {
                let angle = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
                Position {
                    x: 2.0 * angle.cos(),
                    y: 2.0 * angle.sin(),
                }
            })
            .collect::<Vec<_>>();
        let links = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| Link {
                        to: NodeId(j as u32),
                        prr: 1.0,
                    })
                    .collect()
            })
            .collect();
        Topology { positions, links }
    }

    /// A line of `n` nodes with the given per-hop PRR; adjacent nodes
    /// only. Useful for unit tests of multi-hop pipelining.
    pub fn line(n: usize, prr: f64) -> Self {
        let positions = (0..n)
            .map(|i| Position {
                x: i as f64 * 10.0,
                y: 0.0,
            })
            .collect::<Vec<_>>();
        let mut links = vec![Vec::new(); n];
        for (i, node_links) in links.iter_mut().enumerate() {
            if i > 0 {
                node_links.push(Link {
                    to: NodeId(i as u32 - 1),
                    prr,
                });
            }
            if i + 1 < n {
                node_links.push(Link {
                    to: NodeId(i as u32 + 1),
                    prr,
                });
            }
        }
        Topology { positions, links }
    }

    /// A `side × side` grid with the given spacing in meters, under the
    /// default mica2-flavored link model.
    ///
    /// `spacing ≈ 8` reproduces the *tight* (high-density) 15×15 grid;
    /// `spacing ≈ 15` the *medium* (low-density) one.
    pub fn grid(side: usize, spacing: f64, seed: u64) -> Self {
        let positions = (0..side * side)
            .map(|i| Position {
                x: (i % side) as f64 * spacing,
                y: (i / side) as f64 * spacing,
            })
            .collect();
        Self::from_positions(positions, LinkModel::default(), seed)
    }

    /// `n` nodes placed uniformly at random in a `width × height` area.
    pub fn random(n: usize, width: f64, height: f64, seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let positions = (0..n)
            .map(|_| Position {
                x: rng.gen::<f64>() * width,
                y: rng.gen::<f64>() * height,
            })
            .collect();
        Self::from_positions(positions, LinkModel::default(), seed)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Node positions.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Outgoing links of `node`.
    pub fn links_from(&self, node: NodeId) -> &[Link] {
        &self.links[node.index()]
    }

    /// Whether `b` can hear `a` at all.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        self.links[a.index()].iter().any(|l| l.to == b)
    }

    /// Average out-degree (diagnostic for density classification).
    pub fn mean_degree(&self) -> f64 {
        if self.positions.is_empty() {
            return 0.0;
        }
        self.links.iter().map(|l| l.len()).sum::<usize>() as f64 / self.positions.len() as f64
    }

    /// Longest distance between any linked pair (m). Zero for
    /// link-only topologies with degenerate positions.
    pub fn max_link_distance(&self) -> f64 {
        let mut max = 0.0f64;
        for (i, out) in self.links.iter().enumerate() {
            for l in out {
                let d = self.positions[i].distance(&self.positions[l.to.index()]);
                if d > max {
                    max = d;
                }
            }
        }
        max
    }

    /// Whether the directed link graph is strongly connected (every node
    /// reachable from node 0 and vice versa), which dissemination needs.
    pub fn is_connected(&self) -> bool {
        if self.positions.is_empty() {
            return true;
        }
        let reach = |start: usize, reverse: bool| {
            let mut seen = vec![false; self.positions.len()];
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                for (v, seen_v) in seen.iter_mut().enumerate() {
                    let connected = if reverse {
                        self.links[v].iter().any(|l| l.to.index() == u)
                    } else {
                        self.links[u].iter().any(|l| l.to.index() == v)
                    };
                    if connected && !*seen_v {
                        *seen_v = true;
                        stack.push(v);
                    }
                }
            }
            seen.into_iter().filter(|&s| s).count()
        };
        reach(0, false) == self.positions.len() && reach(0, true) == self.positions.len()
    }
}

/// A spatial tiling of a topology into square cells at least as wide as
/// the longest link, used by the sharded engine ([`crate::shard`]).
///
/// Because the cell side is ≥ every link distance, two linked nodes are
/// always in the same or adjacent cells. Cells are ranked in row-major
/// `(cy, cx)` order of the *occupied* cells only, and shard assignment
/// slices that ranking into contiguous blocks — both derived purely from
/// the topology, never from the shard count, so the partition at `k`
/// shards is always a coarsening of the same underlying cell order.
#[derive(Clone, Debug)]
pub struct SpatialPartition {
    /// Occupied-cell rank of each node (dense, 0-based).
    cell_of: Vec<u32>,
    /// Number of occupied cells.
    num_cells: usize,
    /// Cell side length (m).
    cell_side: f64,
}

impl SpatialPartition {
    /// Tiles `topology` by its longest link distance.
    pub fn new(topology: &Topology) -> Self {
        let positions = topology.positions();
        if positions.is_empty() {
            return SpatialPartition {
                cell_of: Vec::new(),
                num_cells: 0,
                cell_side: 1.0,
            };
        }
        // Side must cover the longest link so linked nodes never sit more
        // than one cell apart; 1 m floor guards all-colocated layouts.
        let side = topology.max_link_distance().max(1.0);
        let min_x = positions.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let min_y = positions.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
        let coord = |p: &Position| {
            (
                ((p.y - min_y) / side).floor() as i64,
                ((p.x - min_x) / side).floor() as i64,
            )
        };
        let mut occupied: Vec<(i64, i64)> = positions.iter().map(coord).collect();
        occupied.sort_unstable();
        occupied.dedup();
        let rank = |c: (i64, i64)| occupied.binary_search(&c).expect("own cell occupied") as u32;
        let cell_of = positions.iter().map(|p| rank(coord(p))).collect();
        SpatialPartition {
            cell_of,
            num_cells: occupied.len(),
            cell_side: side,
        }
    }

    /// Occupied-cell rank of `node`.
    pub fn cell_of(&self, node: NodeId) -> u32 {
        self.cell_of[node.index()]
    }

    /// Number of occupied cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Cell side length in meters (≥ the longest link distance).
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Assigns every cell to one of `shards` contiguous blocks and
    /// returns the shard of each node. Cells are never split, so nodes
    /// sharing a cell always share a shard.
    pub fn shard_assignment(&self, shards: usize) -> Vec<u32> {
        let shards = shards.max(1);
        self.cell_of
            .iter()
            .map(|&cell| {
                (cell as usize * shards)
                    .checked_div(self.num_cells)
                    .unwrap_or(0) as u32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_fully_connected() {
        let t = Topology::star(5);
        assert_eq!(t.len(), 5);
        for i in 0..5u32 {
            assert_eq!(t.links_from(NodeId(i)).len(), 4);
            for l in t.links_from(NodeId(i)) {
                assert_eq!(l.prr, 1.0);
            }
        }
        assert!(t.is_connected());
    }

    #[test]
    fn line_links_adjacent_only() {
        let t = Topology::line(4, 0.9);
        assert_eq!(t.links_from(NodeId(0)).len(), 1);
        assert_eq!(t.links_from(NodeId(1)).len(), 2);
        assert!(t.in_range(NodeId(1), NodeId(2)));
        assert!(!t.in_range(NodeId(0), NodeId(2)));
        assert!(t.is_connected());
    }

    #[test]
    fn grid_densities_differ() {
        let tight = Topology::grid(15, 8.0, 1);
        let medium = Topology::grid(15, 15.0, 1);
        assert_eq!(tight.len(), 225);
        assert_eq!(medium.len(), 225);
        assert!(
            tight.mean_degree() > medium.mean_degree() * 1.5,
            "tight {} vs medium {}",
            tight.mean_degree(),
            medium.mean_degree()
        );
        assert!(tight.is_connected());
        assert!(medium.is_connected());
    }

    #[test]
    fn link_model_monotone() {
        let m = LinkModel::default();
        assert!(m.mean_prr(0.0) > 0.9);
        assert_eq!(m.mean_prr(100.0), 0.0);
        let mut last = 1.0;
        for d in 0..40 {
            let prr = m.mean_prr(d as f64);
            assert!(prr <= last + 1e-12, "PRR not monotone at d={d}");
            last = prr;
        }
    }

    #[test]
    fn topology_deterministic_for_seed() {
        let a = Topology::grid(5, 10.0, 7);
        let b = Topology::grid(5, 10.0, 7);
        for i in 0..25u32 {
            assert_eq!(a.links_from(NodeId(i)), b.links_from(NodeId(i)));
        }
    }

    #[test]
    fn partition_keeps_linked_nodes_within_adjacent_cells() {
        let t = Topology::grid(10, 15.0, 3);
        let p = SpatialPartition::new(&t);
        assert!(p.cell_side() >= t.max_link_distance());
        assert!(p.num_cells() >= 2);
        // Every link spans at most one cell in each axis: verify via the
        // assignment being monotone-contiguous and covering all shards.
        for k in [1usize, 2, 4, 8] {
            let assign = p.shard_assignment(k);
            assert_eq!(assign.len(), t.len());
            let max = *assign.iter().max().unwrap() as usize;
            assert!(max < k);
            // Nodes sharing a cell share a shard.
            for i in 0..t.len() {
                for j in 0..t.len() {
                    if p.cell_of(NodeId(i as u32)) == p.cell_of(NodeId(j as u32)) {
                        assert_eq!(assign[i], assign[j]);
                    }
                }
            }
        }
    }

    #[test]
    fn partition_shard_assignment_is_coarsening_of_cells() {
        let t = Topology::random(60, 120.0, 90.0, 5);
        let p = SpatialPartition::new(&t);
        let a2 = p.shard_assignment(2);
        let a4 = p.shard_assignment(4);
        // Cells mapped together at 4 shards are also together at 2.
        for i in 0..t.len() {
            for j in 0..t.len() {
                if a4[i] == a4[j] {
                    assert_eq!(a2[i], a2[j]);
                }
            }
        }
    }

    #[test]
    fn random_topology_in_bounds() {
        let t = Topology::random(50, 100.0, 60.0, 3);
        for p in t.positions() {
            assert!(p.x >= 0.0 && p.x <= 100.0);
            assert!(p.y >= 0.0 && p.y <= 60.0);
        }
    }
}

//! Deterministic capsule replay and divergence bisection.
//!
//! [`replay_sequential`] and [`replay_sharded`] re-execute a
//! [`Capsule`] on the corresponding engine and hand back the run plus
//! its recomputed [`RunDigest`]; [`verify_replay`] asserts the digest
//! matches what the capsule recorded. The caller supplies `make_node`
//! (reconstructed from the capsule's scenario tags), because protocol
//! state is the one thing the capture format deliberately does not
//! serialize — the whole point of deterministic replay is that seed +
//! config + topology + faults regenerate it.
//!
//! The divergence bisector ([`first_divergence`] /
//! [`first_keyed_divergence`] and the [`bisect_shard_counts`] /
//! [`bisect_engines`] drivers) compares two event streams element by
//! element and reports the first disagreement with surrounding context
//! — the "which `OrderKey` went wrong" answer that turns a
//! shard-count-dependent bug from a bisection-by-hand afternoon into
//! one function call.

use crate::builder::SimBuilder;
use crate::capsule::{Capsule, EngineDigest, RunDigest, SEQUENTIAL_ENGINE, SHARDED_ENGINE};
use crate::event::OrderKey;
use crate::metrics::Metrics;
use crate::node::{NodeId, Protocol};
use crate::sim::RunReport;
use crate::trace::{KeyedTraceEvent, SharedRingTrace, TraceEvent};
use crate::violation::ContentDigest;
use std::fmt;

/// A re-executed capsule: the run's report, metrics, trace, and the
/// digest recomputed from them.
pub struct ReplayRun {
    /// Engine that executed the replay.
    pub engine: String,
    /// Shard count used (1 for sequential).
    pub shards: usize,
    /// The run's report.
    pub report: RunReport,
    /// The run's metric counters.
    pub metrics: Metrics,
    /// The full event trace, globally ordered.
    pub trace: Vec<TraceEvent>,
    /// The keyed trace (sharded replays only).
    pub keyed: Option<Vec<KeyedTraceEvent>>,
    /// Digest recomputed from this replay.
    pub digest: RunDigest,
}

/// Re-executes `capsule` on the sequential engine, collecting the full
/// trace through a [`SharedRingTrace`] so the digest covers every
/// event.
pub fn replay_sequential<P, F>(capsule: &Capsule, make_node: F) -> ReplayRun
where
    P: Protocol + 'static,
    F: FnMut(NodeId) -> P,
{
    // `usize::MAX` capacity: the ring's bound is an eviction limit, the
    // buffer itself grows with what is actually recorded.
    let shared = SharedRingTrace::new(usize::MAX);
    let mut sim = SimBuilder::new(capsule.topology.clone(), capsule.seed, make_node)
        .config(capsule.config)
        .faults(capsule.faults.clone())
        .trace(shared.clone())
        .build();
    let report = sim.run(capsule.deadline);
    let trace = shared.events();
    let metrics = sim.metrics().clone();
    let digest = RunDigest::compute(&report, &metrics, &trace, None);
    ReplayRun {
        engine: SEQUENTIAL_ENGINE.to_string(),
        shards: 1,
        report,
        metrics,
        trace,
        keyed: None,
        digest,
    }
}

/// Re-executes `capsule` on the sharded engine at `shards` shards with
/// trace collection enabled.
pub fn replay_sharded<P, F>(capsule: &Capsule, shards: usize, make_node: F) -> ReplayRun
where
    P: Protocol,
    F: Fn(NodeId) -> P + Sync,
{
    let run = SimBuilder::new(capsule.topology.clone(), capsule.seed, make_node)
        .config(capsule.config)
        .faults(capsule.faults.clone())
        .shards(shards)
        .collect_trace(true)
        .run_sharded(capsule.deadline, |_, _| ());
    let digest = RunDigest::compute(
        &run.report,
        &run.metrics,
        &run.trace,
        Some(&run.keyed_trace),
    );
    ReplayRun {
        engine: SHARDED_ENGINE.to_string(),
        shards,
        report: run.report,
        metrics: run.metrics,
        trace: run.trace,
        keyed: Some(run.keyed_trace),
        digest,
    }
}

/// One digest field that differed between a capsule and its replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestMismatch {
    /// Which field diverged (`"outcome"`, `"final_time"`, `"events"`,
    /// `"trace"`, `"metrics"`, or `"order"`).
    pub field: &'static str,
    /// The capsule's recorded value.
    pub expected: String,
    /// The replay's value.
    pub actual: String,
}

impl fmt::Display for DigestMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay diverged on {}: recorded {}, replayed {}",
            self.field, self.expected, self.actual
        )
    }
}

/// Why [`verify_replay`] rejected a replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The capsule records no digest for the replayed engine.
    NoRecordedDigest {
        /// The engine that was replayed.
        engine: String,
    },
    /// The replay's digest differs from the recorded one.
    Mismatch(DigestMismatch),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::NoRecordedDigest { engine } => {
                write!(f, "capsule records no digest for the {engine} engine")
            }
            ReplayError::Mismatch(mismatch) => mismatch.fmt(f),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Compares a recorded digest against a replayed one, skipping fields
/// the recording could not capture ([`ContentDigest::MISSING`] trace or
/// order digests, e.g. from the sequential engine's automatic failure
/// dump, whose full trace is not retained).
pub fn check_digest(recorded: &RunDigest, actual: &RunDigest) -> Result<(), DigestMismatch> {
    let diff = |field, expected: &dyn fmt::Display, actual: &dyn fmt::Display| DigestMismatch {
        field,
        expected: expected.to_string(),
        actual: actual.to_string(),
    };
    if recorded.outcome != actual.outcome {
        return Err(diff("outcome", &recorded.outcome, &actual.outcome));
    }
    if recorded.final_time != actual.final_time {
        return Err(diff(
            "final_time",
            &recorded.final_time.as_micros(),
            &actual.final_time.as_micros(),
        ));
    }
    if recorded.metrics != actual.metrics {
        return Err(diff("metrics", &recorded.metrics, &actual.metrics));
    }
    if recorded.trace != ContentDigest::MISSING {
        if recorded.events != actual.events {
            return Err(diff("events", &recorded.events, &actual.events));
        }
        if recorded.trace != actual.trace {
            return Err(diff("trace", &recorded.trace, &actual.trace));
        }
    }
    if recorded.order != ContentDigest::MISSING
        && actual.order != ContentDigest::MISSING
        && recorded.order != actual.order
    {
        return Err(diff("order", &recorded.order, &actual.order));
    }
    Ok(())
}

/// Verifies a replay against the capsule's recorded digest for the same
/// engine. Sharded digests are shard-count independent, so any recorded
/// sharded digest verifies a replay at any shard count.
pub fn verify_replay(capsule: &Capsule, run: &ReplayRun) -> Result<(), ReplayError> {
    let recorded: &EngineDigest =
        capsule
            .digest_for(&run.engine)
            .ok_or_else(|| ReplayError::NoRecordedDigest {
                engine: run.engine.clone(),
            })?;
    check_digest(&recorded.digest, &run.digest).map_err(ReplayError::Mismatch)
}

/// The first point where two event streams disagree, with surrounding
/// context from both sides.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the first differing event; equals the shorter stream's
    /// length when one stream is a strict prefix of the other.
    pub index: usize,
    /// The left stream's event at `index`, if it has one.
    pub left: Option<TraceEvent>,
    /// The right stream's event at `index`, if it has one.
    pub right: Option<TraceEvent>,
    /// The left event's [`OrderKey`], when keyed streams were compared.
    pub left_key: Option<OrderKey>,
    /// The right event's [`OrderKey`], when keyed streams were compared.
    pub right_key: Option<OrderKey>,
    /// Events surrounding the divergence in the left stream.
    pub context_left: Vec<TraceEvent>,
    /// Events surrounding the divergence in the right stream.
    pub context_right: Vec<TraceEvent>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "streams diverge at event {}", self.index)?;
        let side = |f: &mut fmt::Formatter<'_>,
                    name: &str,
                    event: &Option<TraceEvent>,
                    key: &Option<OrderKey>|
         -> fmt::Result {
            match event {
                Some(e) => write!(f, "  {name}: {}", e.to_json())?,
                None => write!(f, "  {name}: <stream ended>")?,
            }
            if let Some(k) = key {
                write!(
                    f,
                    " @ key(t={},class={},a={},b={},c={})",
                    k.at, k.class, k.a, k.b, k.c
                )?;
            }
            writeln!(f)
        };
        side(f, "left ", &self.left, &self.left_key)?;
        side(f, "right", &self.right, &self.right_key)?;
        writeln!(f, "  left context:")?;
        for e in &self.context_left {
            writeln!(f, "    {}", e.to_json())?;
        }
        writeln!(f, "  right context:")?;
        for e in &self.context_right {
            writeln!(f, "    {}", e.to_json())?;
        }
        Ok(())
    }
}

fn context_window(stream: &[TraceEvent], index: usize, context: usize) -> Vec<TraceEvent> {
    let lo = index.saturating_sub(context);
    let hi = index.saturating_add(context + 1).min(stream.len());
    if lo >= hi {
        Vec::new()
    } else {
        stream[lo..hi].to_vec()
    }
}

/// Finds the first index where two plain event streams disagree
/// (`None` if identical), with `context` events of surrounding context
/// per side.
pub fn first_divergence(a: &[TraceEvent], b: &[TraceEvent], context: usize) -> Option<Divergence> {
    let shorter = a.len().min(b.len());
    let index = (0..shorter)
        .find(|&i| a[i] != b[i])
        .or_else(|| (a.len() != b.len()).then_some(shorter))?;
    Some(Divergence {
        index,
        left: a.get(index).cloned(),
        right: b.get(index).cloned(),
        left_key: None,
        right_key: None,
        context_left: context_window(a, index, context),
        context_right: context_window(b, index, context),
    })
}

/// Keyed variant of [`first_divergence`]: compares `(OrderKey, emit
/// index, event)` triples, so a reordering is reported even when the
/// same events appear in both streams.
pub fn first_keyed_divergence(
    a: &[KeyedTraceEvent],
    b: &[KeyedTraceEvent],
    context: usize,
) -> Option<Divergence> {
    let shorter = a.len().min(b.len());
    let index = (0..shorter)
        .find(|&i| a[i] != b[i])
        .or_else(|| (a.len() != b.len()).then_some(shorter))?;
    let events = |s: &[KeyedTraceEvent]| -> Vec<TraceEvent> {
        s.iter().map(|(_, _, e)| e.clone()).collect()
    };
    let a_events = events(a);
    let b_events = events(b);
    Some(Divergence {
        index,
        left: a_events.get(index).cloned(),
        right: b_events.get(index).cloned(),
        left_key: a.get(index).map(|(k, _, _)| *k),
        right_key: b.get(index).map(|(k, _, _)| *k),
        context_left: context_window(&a_events, index, context),
        context_right: context_window(&b_events, index, context),
    })
}

/// Events of context reported on each side of a divergence.
const BISECT_CONTEXT: usize = 5;

/// Replays `capsule` at two shard counts and reports the first
/// diverging `OrderKey` (`None` means the runs were lockstep-identical,
/// the invariant the sharded engine promises).
pub fn bisect_shard_counts<P, F>(
    capsule: &Capsule,
    shards_a: usize,
    shards_b: usize,
    make_node: F,
) -> Option<Divergence>
where
    P: Protocol,
    F: Fn(NodeId) -> P + Sync,
{
    let a = replay_sharded(capsule, shards_a, &make_node);
    let b = replay_sharded(capsule, shards_b, &make_node);
    first_keyed_divergence(
        a.keyed.as_deref().unwrap_or(&[]),
        b.keyed.as_deref().unwrap_or(&[]),
        BISECT_CONTEXT,
    )
}

/// Replays `capsule` on both engines and reports their first trace
/// difference. The engines order concurrent events differently by
/// design, so a divergence here is expected — this locates *where* the
/// orders part ways, which is the starting point when only one engine
/// reproduces a failure.
pub fn bisect_engines<P, F>(capsule: &Capsule, make_node: F) -> Option<Divergence>
where
    P: Protocol + 'static,
    F: Fn(NodeId) -> P + Sync,
{
    let sequential = replay_sequential(capsule, &make_node);
    let sharded = replay_sharded(capsule, 1, &make_node);
    first_divergence(&sequential.trace, &sharded.trace, BISECT_CONTEXT)
}

//! The shared broadcast medium.
//!
//! Models the radio behaviour that matters for dissemination protocols:
//!
//! * **Airtime** — a packet of `b` bytes occupies the channel for
//!   `overhead + b · us_per_byte` microseconds (defaults sized to a
//!   mica2-class 19.2 kbps CC1000 radio).
//! * **CSMA deferral** — a sender whose neighborhood is busy defers to the
//!   end of the ongoing transmission plus a random backoff.
//! * **Half-duplex** — a node transmitting during a packet's airtime
//!   cannot receive it.
//! * **Collisions** — a reception fails if any other in-range transmission
//!   overlaps it in time.
//! * **Losses** — per-link PRR (topology), optional bursty noise, and the
//!   paper's application-layer i.i.d. drop probability `p`.

use crate::node::NodeId;
use crate::noise::{NoiseModel, NoiseState};
use crate::time::{Duration, SimTime};
use crate::topology::Topology;
use lrs_rng::DetRng;

/// Radio and loss-process parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MediumConfig {
    /// Microseconds of airtime per payload byte (19.2 kbps ≈ 416 µs/B).
    pub us_per_byte: u64,
    /// Fixed per-packet overhead in µs (preamble, MAC header).
    pub per_packet_overhead_us: u64,
    /// Maximum random CSMA backoff in µs (uniform in [0, max]).
    pub max_backoff_us: u64,
    /// Whether carrier sensing defers transmissions.
    pub csma: bool,
    /// Whether overlapping in-range transmissions destroy receptions.
    pub collisions: bool,
    /// Application-layer drop probability `p` (the paper's loss knob).
    pub app_loss: f64,
    /// Environmental noise model.
    pub noise: NoiseModel,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            us_per_byte: 416,
            per_packet_overhead_us: 2_000,
            max_backoff_us: 12_000,
            csma: true,
            collisions: true,
            app_loss: 0.0,
            noise: NoiseModel::None,
        }
    }
}

impl MediumConfig {
    /// Airtime of a `bytes`-byte packet.
    pub fn airtime(&self, bytes: usize) -> Duration {
        Duration::from_micros(self.per_packet_overhead_us + self.us_per_byte * bytes as u64)
    }

    /// Conservative lookahead for the sharded engine (µs): a lower bound
    /// on the delay between a broadcast's decision time and any resulting
    /// delivery. Every packet spends at least the per-packet overhead on
    /// the air, so a transmission started in one lookahead window cannot
    /// be heard before the next window begins.
    pub fn lookahead_us(&self) -> u64 {
        self.per_packet_overhead_us.max(1)
    }
}

/// Outcome of a reception attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Packet received and handed to the application.
    Received,
    /// Destroyed by an overlapping transmission.
    Collision,
    /// Lost to link quality or noise.
    PhyLoss,
    /// Dropped by the application-layer loss process.
    AppDrop,
    /// The transmission record was pruned before the delivery event
    /// fired (e.g. a fault handler cleared the air while the delivery
    /// was in flight); the packet silently never arrives.
    Pruned,
}

#[derive(Clone, Debug)]
struct Transmission {
    id: u64,
    from: NodeId,
    start: SimTime,
    end: SimTime,
}

/// A started broadcast, as observed by the caller (and any trace sink):
/// the correlation id plus the post-CSMA on-air window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxInfo {
    /// Transmission id correlating delivery outcomes with this send.
    pub id: u64,
    /// On-air start (after CSMA deferral and random backoff).
    pub start: SimTime,
    /// Reception-complete time; the caller schedules deliveries here.
    pub end: SimTime,
}

/// The shared channel state.
#[derive(Debug)]
pub struct Medium {
    config: MediumConfig,
    /// End of the latest transmission audible at each node.
    busy_until: Vec<SimTime>,
    /// Recent transmissions, pruned as time advances.
    transmissions: Vec<Transmission>,
    noise_states: Vec<NoiseState>,
    rng: DetRng,
    next_tx_id: u64,
}

impl Medium {
    /// Creates the medium for `n` nodes.
    pub fn new(config: MediumConfig, n: usize, seed: u64) -> Self {
        Medium {
            config,
            busy_until: vec![SimTime::ZERO; n],
            transmissions: Vec::new(),
            noise_states: vec![NoiseState::new(config.noise); n],
            rng: DetRng::seed_from_u64(seed ^ 0x4d45_4449),
            next_tx_id: 0,
        }
    }

    /// Configuration accessor.
    pub fn config(&self) -> &MediumConfig {
        &self.config
    }

    /// Starts a broadcast of `bytes` bytes from `from` at `now`.
    ///
    /// Returns the transmission's [`TxInfo`] (id plus the post-CSMA
    /// on-air window). The caller schedules delivery events at
    /// [`TxInfo::end`].
    pub fn begin_broadcast(
        &mut self,
        now: SimTime,
        from: NodeId,
        bytes: usize,
        topo: &Topology,
    ) -> TxInfo {
        let mut start = now;
        if self.config.csma {
            start = start.max(self.busy_until[from.index()]);
            if self.config.max_backoff_us > 0 {
                start += Duration::from_micros(self.rng.gen_range(0..=self.config.max_backoff_us));
            }
        }
        let end = start + self.config.airtime(bytes);
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        self.transmissions.push(Transmission {
            id,
            from,
            start,
            end,
        });
        // Everyone who can hear `from` (and `from` itself) sees the
        // channel busy until `end`.
        self.busy_until[from.index()] = self.busy_until[from.index()].max(end);
        for link in topo.links_from(from) {
            let b = &mut self.busy_until[link.to.index()];
            *b = (*b).max(end);
        }
        self.prune(now);
        TxInfo { id, start, end }
    }

    /// Decides the fate of transmission `tx_id` at receiver `to`.
    ///
    /// Must be called at the reception-complete time (the simulator's
    /// delivery event).
    pub fn deliver(&mut self, now: SimTime, tx_id: u64, to: NodeId, topo: &Topology) -> Delivery {
        let Some(tx) = self.transmissions.iter().find(|t| t.id == tx_id).cloned() else {
            return Delivery::Pruned;
        };
        // Collision / half-duplex check.
        if self.config.collisions {
            let collided = self.transmissions.iter().any(|other| {
                other.id != tx.id
                    && other.start < tx.end
                    && other.end > tx.start
                    && (other.from == to || topo.in_range(other.from, to))
            });
            if collided {
                return Delivery::Collision;
            }
        }
        // Link PRR and noise.
        let prr = topo
            .links_from(tx.from)
            .iter()
            .find(|l| l.to == to)
            .map(|l| l.prr)
            .unwrap_or(0.0);
        let noise_factor = self.noise_states[to.index()].factor_at(now, &mut self.rng);
        let effective = prr * noise_factor;
        if effective < 1.0 && !self.rng.gen_bool(effective.clamp(0.0, 1.0)) {
            return Delivery::PhyLoss;
        }
        // Application-layer drop (paper §VI-A).
        if self.config.app_loss > 0.0 && self.rng.gen_bool(self.config.app_loss) {
            return Delivery::AppDrop;
        }
        Delivery::Received
    }

    /// Drops transmissions that can no longer affect any delivery.
    fn prune(&mut self, now: SimTime) {
        // A delivery event fires at its transmission's `end`; any other
        // transmission overlapping it satisfies end > start. Keep a
        // window comfortably above the longest plausible packet airtime
        // (a ~200-byte signature packet is ~85 ms at 19.2 kbps).
        let window = Duration::from_millis(400);
        let cutoff = SimTime(now.0.saturating_sub(window.as_micros()));
        self.transmissions.retain(|t| t.end >= cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_loss_config() -> MediumConfig {
        MediumConfig {
            csma: false,
            collisions: true,
            max_backoff_us: 0,
            ..MediumConfig::default()
        }
    }

    #[test]
    fn airtime_scales_with_bytes() {
        let c = MediumConfig::default();
        assert!(c.airtime(100) > c.airtime(10));
        assert_eq!(
            c.airtime(0),
            Duration::from_micros(c.per_packet_overhead_us)
        );
    }

    #[test]
    fn perfect_link_delivers() {
        let topo = Topology::star(3);
        let mut m = Medium::new(no_loss_config(), 3, 1);
        let tx = m.begin_broadcast(SimTime::ZERO, NodeId(0), 10, &topo);
        assert_eq!(
            m.deliver(tx.end, tx.id, NodeId(1), &topo),
            Delivery::Received
        );
    }

    #[test]
    fn overlapping_transmissions_collide() {
        let topo = Topology::star(3);
        let mut m = Medium::new(no_loss_config(), 3, 1);
        // Two simultaneous senders, receiver hears both.
        let tx0 = m.begin_broadcast(SimTime::ZERO, NodeId(0), 10, &topo);
        let _tx1 = m.begin_broadcast(SimTime::ZERO, NodeId(1), 10, &topo);
        assert_eq!(
            m.deliver(tx0.end, tx0.id, NodeId(2), &topo),
            Delivery::Collision
        );
    }

    #[test]
    fn half_duplex_receiver_misses() {
        let topo = Topology::star(2);
        let mut m = Medium::new(no_loss_config(), 2, 1);
        let tx0 = m.begin_broadcast(SimTime::ZERO, NodeId(0), 10, &topo);
        // Node 1 transmits while node 0's packet is in the air.
        let _ = m.begin_broadcast(SimTime::ZERO, NodeId(1), 10, &topo);
        assert_eq!(
            m.deliver(tx0.end, tx0.id, NodeId(1), &topo),
            Delivery::Collision
        );
    }

    #[test]
    fn csma_defers_second_sender() {
        let topo = Topology::star(3);
        let cfg = MediumConfig {
            csma: true,
            max_backoff_us: 0,
            ..MediumConfig::default()
        };
        let mut m = Medium::new(cfg, 3, 1);
        let tx0 = m.begin_broadcast(SimTime::ZERO, NodeId(0), 10, &topo);
        let tx1 = m.begin_broadcast(SimTime::ZERO, NodeId(1), 10, &topo);
        assert!(tx1.end >= tx0.end + cfg.airtime(10), "second tx must defer");
        assert_eq!(
            m.deliver(tx0.end, tx0.id, NodeId(2), &topo),
            Delivery::Received
        );
        assert_eq!(
            m.deliver(tx1.end, tx1.id, NodeId(2), &topo),
            Delivery::Received
        );
    }

    #[test]
    fn app_loss_rate_statistical() {
        let topo = Topology::star(2);
        let cfg = MediumConfig {
            app_loss: 0.3,
            csma: false,
            collisions: false,
            max_backoff_us: 0,
            ..MediumConfig::default()
        };
        let mut m = Medium::new(cfg, 2, 99);
        let mut dropped = 0;
        let trials = 20_000;
        let mut t = SimTime::ZERO;
        for _ in 0..trials {
            let tx = m.begin_broadcast(t, NodeId(0), 10, &topo);
            if m.deliver(tx.end, tx.id, NodeId(1), &topo) == Delivery::AppDrop {
                dropped += 1;
            }
            t = tx.end + Duration::from_millis(10);
        }
        let rate = dropped as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "measured drop rate {rate}");
    }

    #[test]
    fn out_of_range_never_delivers() {
        let topo = Topology::line(3, 1.0);
        let mut m = Medium::new(no_loss_config(), 3, 1);
        let tx = m.begin_broadcast(SimTime::ZERO, NodeId(0), 10, &topo);
        assert_eq!(
            m.deliver(tx.end, tx.id, NodeId(2), &topo),
            Delivery::PhyLoss
        );
    }

    #[test]
    fn lossy_link_statistical() {
        let topo = Topology::line(2, 0.7);
        let cfg = MediumConfig {
            csma: false,
            collisions: false,
            max_backoff_us: 0,
            ..MediumConfig::default()
        };
        let mut m = Medium::new(cfg, 2, 5);
        let mut ok = 0;
        let trials = 20_000;
        let mut t = SimTime::ZERO;
        for _ in 0..trials {
            let tx = m.begin_broadcast(t, NodeId(0), 10, &topo);
            if m.deliver(tx.end, tx.id, NodeId(1), &topo) == Delivery::Received {
                ok += 1;
            }
            t = tx.end + Duration::from_millis(10);
        }
        let rate = ok as f64 / trials as f64;
        assert!((rate - 0.7).abs() < 0.02, "measured PRR {rate}");
    }
}

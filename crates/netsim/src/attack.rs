//! Deterministic, replayable attack schedules.
//!
//! An [`AttackPlan`] is the adversary-side sibling of
//! [`FaultPlan`](crate::fault::FaultPlan): a schedule of
//! [`AttackEntry`]s naming which nodes behave adversarially, what they
//! inject ([`AttackVector`]), at what rate, under which duty cycle, and
//! against which victim. Plans are either hand-built through
//! [`AttackPlan::push`] or generated from an [`AttackConfig`] with
//! [`AttackPlan::generate`], which draws attacker placement from its own
//! `DetRng` stream. Like the fault layer, the attack layer never touches
//! the medium's or the nodes' RNGs, so an empty plan leaves a run
//! bit-identical to one with no attack layer at all, and any plan is
//! reproducible from `(config, topology, seed)`.
//!
//! The netsim crate deliberately knows nothing about *how* a vector is
//! mounted — protocol crates map entries onto concrete adversarial
//! nodes (`lrs-deluge`'s `Attacker::from_plan_entry`). What lives here
//! is the schedule itself and its serial forms: JSONL
//! ([`AttackPlan::to_jsonl`] / [`from_jsonl`](AttackPlan::from_jsonl))
//! for files, and a single-line tag form ([`AttackPlan::to_tag`] /
//! [`from_tag`](AttackPlan::from_tag)) that travels inside a replay
//! capsule's scenario tags, so an attacked failure capsule replays
//! bit-identically and ddmin-shrinks like any other.

use crate::fault::{json_str_field, json_u64_field};
use crate::node::NodeId;
use crate::time::{Duration, SimTime};
use crate::topology::Topology;
use lrs_rng::DetRng;

/// What an adversarial node injects — the five §III/§IV-E attack kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackVector {
    /// Data packets with plausible headers and random payloads.
    BogusData,
    /// Forged signature packets, to force expensive verifications.
    ForgedSignature,
    /// Forged advertisements claiming a huge level.
    ForgedAdv,
    /// Denial-of-receipt: an insider repeatedly SNACKs a victim with an
    /// all-ones bit vector.
    DenialOfReceipt,
    /// Denial-of-receipt with source spoofing, rotating forged sender
    /// ids to evade per-neighbor budgets.
    SpoofedDenialOfReceipt,
}

impl AttackVector {
    /// Every vector, in stable declaration order.
    pub const ALL: [AttackVector; 5] = [
        AttackVector::BogusData,
        AttackVector::ForgedSignature,
        AttackVector::ForgedAdv,
        AttackVector::DenialOfReceipt,
        AttackVector::SpoofedDenialOfReceipt,
    ];

    /// The vector's stable wire/spec label.
    pub fn label(self) -> &'static str {
        match self {
            AttackVector::BogusData => "bogus",
            AttackVector::ForgedSignature => "forgesig",
            AttackVector::ForgedAdv => "forgeadv",
            AttackVector::DenialOfReceipt => "dor",
            AttackVector::SpoofedDenialOfReceipt => "spoofdor",
        }
    }

    /// Parses a [`label`](Self::label) back to its vector.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|v| v.label() == label)
    }

    /// Whether the vector needs the cluster key (a compromised insider):
    /// denial-of-receipt SNACKs must carry a valid cluster MAC to be
    /// served at all.
    pub fn requires_insider(self) -> bool {
        matches!(
            self,
            AttackVector::DenialOfReceipt | AttackVector::SpoofedDenialOfReceipt
        )
    }
}

/// One adversarial node's schedule: where it sits, what it injects, how
/// fast, and under which duty cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttackEntry {
    /// The node that behaves adversarially.
    pub node: NodeId,
    /// What it injects.
    pub vector: AttackVector,
    /// When injection may begin.
    pub at: SimTime,
    /// Injection period.
    pub interval: Duration,
    /// Optional packet-storm duty cycle `(on, off)`.
    pub burst: Option<(Duration, Duration)>,
    /// Victim of targeted vectors (denial-of-receipt); ignored by
    /// broadcast vectors.
    pub target: NodeId,
    /// Pool of honest ids a spoofing attacker rotates through.
    pub spoof_pool: u32,
}

impl AttackEntry {
    /// Renders the entry as one JSON object in trace-event shape
    /// (`"t"` in microseconds of virtual time).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            r#"{{"t":{},"ev":"attack_{}","node":{},"interval_us":{},"target":{},"pool":{}"#,
            self.at.as_micros(),
            self.vector.label(),
            self.node.0,
            self.interval.as_micros(),
            self.target.0,
            self.spoof_pool,
        );
        if let Some((on, off)) = self.burst {
            out.push_str(&format!(
                r#","on_us":{},"off_us":{}"#,
                on.as_micros(),
                off.as_micros()
            ));
        }
        out.push('}');
        out
    }

    /// Parses one entry from its [`to_json`](Self::to_json) form.
    /// Returns `None` on any malformed or unknown input.
    pub fn from_json(line: &str) -> Option<Self> {
        let ev = json_str_field(line, "ev")?;
        let vector = AttackVector::from_label(ev.strip_prefix("attack_")?)?;
        let burst = match (
            json_u64_field(line, "on_us"),
            json_u64_field(line, "off_us"),
        ) {
            (Some(on), Some(off)) => Some((Duration::from_micros(on), Duration::from_micros(off))),
            (None, None) => None,
            _ => return None,
        };
        Some(AttackEntry {
            node: NodeId(json_u64_field(line, "node")? as u32),
            vector,
            at: SimTime(json_u64_field(line, "t")?),
            interval: Duration::from_micros(json_u64_field(line, "interval_us")?),
            burst,
            target: NodeId(json_u64_field(line, "target")? as u32),
            spoof_pool: json_u64_field(line, "pool")? as u32,
        })
    }
}

/// Knobs for [`AttackPlan::generate`]. Placement is drawn from the seed
/// passed to `generate`, never from wall-clock state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttackConfig {
    /// What the attackers inject.
    pub vector: AttackVector,
    /// How many attackers to place (capped at the eligible node count).
    pub attackers: u32,
    /// Injection period.
    pub interval: Duration,
    /// Optional packet-storm duty cycle `(on, off)`.
    pub burst: Option<(Duration, Duration)>,
    /// Victim of targeted vectors (default: the base station).
    pub target: NodeId,
    /// Spoof-pool size; `0` resolves to the topology size at generation.
    pub spoof_pool: u32,
    /// Node ids below this are never attackers (protects the base
    /// station and the victim's role as an honest node).
    pub protect_first: u32,
}

impl Default for AttackConfig {
    /// One bogus-data attacker at 4 packets/s, no duty cycle, targeting
    /// the base, placed anywhere but node 0.
    fn default() -> Self {
        AttackConfig {
            vector: AttackVector::BogusData,
            attackers: 1,
            interval: Duration::from_millis(250),
            burst: None,
            target: NodeId(0),
            spoof_pool: 0,
            protect_first: 1,
        }
    }
}

/// A deterministic attack schedule, sorted by `(start time, node)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttackPlan {
    entries: Vec<AttackEntry>,
}

impl AttackPlan {
    /// An empty plan: every node honest.
    pub fn new() -> Self {
        AttackPlan::default()
    }

    /// Appends one entry (kept sorted by start time then node id).
    pub fn push(&mut self, entry: AttackEntry) {
        self.entries.push(entry);
        self.entries.sort_by_key(|e| (e.at, e.node.0));
    }

    /// The scheduled entries, sorted.
    pub fn entries(&self) -> &[AttackEntry] {
        &self.entries
    }

    /// The entry for `node`, if it is an attacker.
    pub fn entry_for(&self, node: NodeId) -> Option<&AttackEntry> {
        self.entries.iter().find(|e| e.node == node)
    }

    /// Number of scheduled attackers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Generates a plan from `config` for `topology`, drawing attacker
    /// placement from a `DetRng` seeded with `seed` (a stream distinct
    /// from the fault generator's). Same inputs, same plan — byte for
    /// byte. Placement is a partial Fisher–Yates draw over the
    /// unprotected ids; the chosen set is emitted in ascending node
    /// order so the plan is canonical.
    pub fn generate(config: &AttackConfig, topology: &Topology, seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed ^ 0x00AD_7E55_A21E_u64);
        let mut plan = AttackPlan::new();
        let n = topology.len() as u32;
        let mut eligible: Vec<u32> = (config.protect_first.min(n)..n).collect();
        let count = (config.attackers as usize).min(eligible.len());
        for k in 0..count {
            let j = rng.gen_range(k as u64..eligible.len() as u64) as usize;
            eligible.swap(k, j);
        }
        let mut chosen = eligible[..count].to_vec();
        chosen.sort_unstable();
        let spoof_pool = if config.spoof_pool == 0 {
            n
        } else {
            config.spoof_pool
        };
        for id in chosen {
            plan.push(AttackEntry {
                node: NodeId(id),
                vector: config.vector,
                at: SimTime::ZERO,
                interval: config.interval,
                burst: config.burst,
                target: config.target,
                spoof_pool,
            });
        }
        plan
    }

    /// Serializes the plan to JSON Lines (one entry per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&entry.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a plan back from [`to_jsonl`](Self::to_jsonl) output.
    /// Returns `None` if any non-blank line fails to parse.
    pub fn from_jsonl(text: &str) -> Option<Self> {
        let mut plan = AttackPlan::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            plan.push(AttackEntry::from_json(line)?);
        }
        Some(plan)
    }

    /// The plan as a single line — entry JSON objects joined by `;`
    /// (which never occurs inside them) — the form that travels in a
    /// capsule scenario tag.
    pub fn to_tag(&self) -> String {
        self.entries
            .iter()
            .map(AttackEntry::to_json)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses a plan back from [`to_tag`](Self::to_tag) output.
    pub fn from_tag(tag: &str) -> Option<Self> {
        let mut plan = AttackPlan::new();
        for part in tag.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            plan.push(AttackEntry::from_json(part)?);
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(vector: AttackVector) -> AttackEntry {
        AttackEntry {
            node: NodeId(5),
            vector,
            at: SimTime(17),
            interval: Duration::from_millis(250),
            burst: Some((Duration::from_secs(5), Duration::from_secs(15))),
            target: NodeId(0),
            spoof_pool: 12,
        }
    }

    #[test]
    fn every_vector_round_trips_through_json() {
        for vector in AttackVector::ALL {
            for burst in [None, Some((Duration::from_secs(2), Duration::from_secs(7)))] {
                let entry = AttackEntry {
                    burst,
                    ..sample_entry(vector)
                };
                let json = entry.to_json();
                assert_eq!(AttackEntry::from_json(&json), Some(entry), "{json}");
            }
        }
    }

    #[test]
    fn labels_round_trip_and_insider_set_is_exact() {
        for vector in AttackVector::ALL {
            assert_eq!(AttackVector::from_label(vector.label()), Some(vector));
        }
        assert_eq!(AttackVector::from_label("melt"), None);
        let insiders: Vec<&str> = AttackVector::ALL
            .into_iter()
            .filter(|v| v.requires_insider())
            .map(|v| v.label())
            .collect();
        assert_eq!(insiders, ["dor", "spoofdor"]);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert_eq!(
            AttackEntry::from_json(r#"{"t":5,"ev":"fault_crash","node":1}"#),
            None
        );
        assert_eq!(
            AttackEntry::from_json(r#"{"t":5,"ev":"attack_melt","node":1}"#),
            None
        );
        // A burst needs both halves of the duty cycle.
        assert_eq!(
            AttackEntry::from_json(
                r#"{"t":0,"ev":"attack_bogus","node":2,"interval_us":100,"target":0,"pool":4,"on_us":7}"#
            ),
            None
        );
        assert_eq!(AttackEntry::from_json("not json"), None);
        assert!(AttackPlan::from_jsonl("{}\n").is_none());
        assert!(AttackPlan::from_tag("{}").is_none());
    }

    #[test]
    fn generate_is_deterministic_and_respects_protection() {
        let topo = Topology::star(8);
        let config = AttackConfig {
            attackers: 3,
            protect_first: 2,
            ..AttackConfig::default()
        };
        let a = AttackPlan::generate(&config, &topo, 42);
        let b = AttackPlan::generate(&config, &topo, 42);
        let c = AttackPlan::generate(&config, &topo, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should place differently");
        assert_eq!(a.len(), 3);
        let mut nodes: Vec<u32> = a.entries().iter().map(|e| e.node.0).collect();
        assert!(nodes.iter().all(|&id| id >= 2));
        let sorted = {
            nodes.sort_unstable();
            nodes.clone()
        };
        assert_eq!(
            a.entries().iter().map(|e| e.node.0).collect::<Vec<_>>(),
            sorted,
            "canonical plans list attackers in ascending node order"
        );
        nodes.dedup();
        assert_eq!(nodes.len(), 3, "attacker placement must be distinct");
    }

    #[test]
    fn generate_caps_attackers_and_resolves_spoof_pool() {
        let topo = Topology::star(4);
        let config = AttackConfig {
            vector: AttackVector::SpoofedDenialOfReceipt,
            attackers: 99,
            spoof_pool: 0,
            ..AttackConfig::default()
        };
        let plan = AttackPlan::generate(&config, &topo, 1);
        assert_eq!(plan.len(), 3, "only unprotected nodes can attack");
        assert!(plan.entries().iter().all(|e| e.spoof_pool == 4));
    }

    #[test]
    fn plan_jsonl_and_tag_round_trips_are_exact() {
        let topo = Topology::star(9);
        let config = AttackConfig {
            vector: AttackVector::DenialOfReceipt,
            attackers: 4,
            burst: Some((Duration::from_secs(5), Duration::from_secs(15))),
            ..AttackConfig::default()
        };
        let plan = AttackPlan::generate(&config, &topo, 5);
        assert!(!plan.is_empty());
        let jsonl = plan.to_jsonl();
        assert_eq!(AttackPlan::from_jsonl(&jsonl), Some(plan.clone()));
        let tag = plan.to_tag();
        assert!(!tag.contains('\n'));
        assert_eq!(AttackPlan::from_tag(&tag), Some(plan.clone()));
        assert_eq!(AttackPlan::from_tag(&tag).unwrap().to_tag(), tag);
        assert_eq!(AttackPlan::from_tag(""), Some(AttackPlan::new()));
    }

    #[test]
    fn push_keeps_entries_sorted_and_lookup_works() {
        let mut plan = AttackPlan::new();
        plan.push(AttackEntry {
            at: SimTime(500),
            node: NodeId(9),
            ..sample_entry(AttackVector::BogusData)
        });
        plan.push(AttackEntry {
            at: SimTime(100),
            node: NodeId(3),
            ..sample_entry(AttackVector::ForgedAdv)
        });
        let times: Vec<u64> = plan.entries().iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![100, 500]);
        assert_eq!(
            plan.entry_for(NodeId(9)).map(|e| e.vector),
            Some(AttackVector::BogusData)
        );
        assert!(plan.entry_for(NodeId(1)).is_none());
    }
}

//! Fluent simulation construction.
//!
//! [`SimBuilder`] replaced the retired positional `Simulator::new`
//! constructor plus the post-hoc `set_trace` / `set_invariant_checker` /
//! `inject_faults` mutation dance with one chainable entry point:
//!
//! ```
//! use lrs_netsim::{SimBuilder, Topology, FaultPlan};
//! # use lrs_netsim::{node::*, time::*};
//! # struct Quiet;
//! # impl Protocol for Quiet {
//! #     fn on_init(&mut self, _: &mut Context<'_>) {}
//! #     fn on_packet(&mut self, _: &mut Context<'_>, _: NodeId, _: &[u8]) {}
//! #     fn on_timer(&mut self, _: &mut Context<'_>, _: TimerId) {}
//! #     fn is_complete(&self) -> bool { true }
//! # }
//! let mut sim = SimBuilder::new(Topology::star(4), 42, |_| Quiet)
//!     .faults(FaultPlan::new())
//!     .build();
//! let report = sim.run(Duration::from_secs(60));
//! assert!(report.all_complete);
//! ```
//!
//! Two terminal operations exist:
//!
//! * [`SimBuilder::build`] constructs the classic sequential
//!   [`Simulator`]. This is the bit-compatibility anchor: its event
//!   ordering (and therefore every golden file) is exactly the
//!   pre-builder engine's.
//! * [`SimBuilder::run_sharded`] runs the conservatively-synchronized
//!   parallel engine in [`crate::shard`] with the configured
//!   [`shards`](SimBuilder::shards) worker threads. Its results are
//!   identical at every shard count for a fixed seed (including 1), but
//!   intentionally *not* bit-identical to the sequential engine, whose
//!   single global RNG cannot be partitioned — see `DESIGN.md` §9.

use crate::capsule::CapsuleSpec;
use crate::fault::FaultPlan;
use crate::node::{NodeId, Protocol};
use crate::shard::{self, ShardedRun};
use crate::sim::{SimConfig, Simulator};
use crate::time::Duration;
use crate::topology::Topology;
use crate::trace::TraceSink;
use crate::violation::InvariantViolation;
use std::path::PathBuf;
use std::sync::Arc;

/// A shareable per-delivery invariant check, callable from any shard.
pub type SharedInvariant<P> =
    Arc<dyn Fn(&P, NodeId) -> Result<(), InvariantViolation> + Send + Sync>;

/// Fluent constructor for sequential and sharded simulations.
pub struct SimBuilder<P, F> {
    pub(crate) topology: Topology,
    pub(crate) seed: u64,
    pub(crate) make_node: F,
    pub(crate) config: SimConfig,
    pub(crate) trace: Option<Box<dyn TraceSink>>,
    pub(crate) invariant: Option<SharedInvariant<P>>,
    pub(crate) faults: FaultPlan,
    pub(crate) shards: usize,
    pub(crate) collect_trace: bool,
    pub(crate) capsule_path: Option<PathBuf>,
    pub(crate) scenario: Vec<(String, String)>,
}

impl<P, F> SimBuilder<P, F> {
    /// Starts a builder over `topology`; `make_node` constructs the
    /// protocol instance for each node id.
    pub fn new(topology: Topology, seed: u64, make_node: F) -> Self {
        SimBuilder {
            topology,
            seed,
            make_node,
            config: SimConfig::default(),
            trace: None,
            invariant: None,
            faults: FaultPlan::new(),
            shards: 1,
            collect_trace: false,
            capsule_path: None,
            scenario: Vec::new(),
        }
    }

    /// Replaces the whole [`SimConfig`] (medium, watchdog, time limits).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a structured-event sink. Sinks observe the run; they
    /// can never alter it. Under [`run_sharded`](Self::run_sharded) the
    /// sink receives the merged event stream, in deterministic global
    /// order, after the run finishes.
    pub fn trace(mut self, sink: impl TraceSink + 'static) -> Self {
        self.trace = Some(Box::new(sink));
        self
    }

    /// Attaches a per-delivery invariant check: called with the
    /// receiving node's state after every accepted packet; the first
    /// `Err` aborts the run with
    /// [`Outcome::InvariantViolated`](crate::sim::Outcome::InvariantViolated).
    pub fn invariants(
        mut self,
        check: impl Fn(&P, NodeId) -> Result<(), InvariantViolation> + Send + Sync + 'static,
    ) -> Self {
        self.invariant = Some(Arc::new(check));
        self
    }

    /// Injects a fault plan, applied as virtual time passes.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the shard count for [`run_sharded`](Self::run_sharded)
    /// (1–64 spatial shards, each with its own worker thread).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds 64.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(
            (1..=64).contains(&shards),
            "shard count must be in 1..=64, got {shards}"
        );
        self.shards = shards;
        self
    }

    /// Makes [`run_sharded`](Self::run_sharded) return the full merged
    /// trace in [`ShardedRun::trace`] even without a sink attached.
    pub fn collect_trace(mut self, collect: bool) -> Self {
        self.collect_trace = collect;
        self
    }

    /// Arms the flight recorder: if the run ends in a diagnostic
    /// outcome (stall, invariant violation, worker panic), a replay
    /// [`Capsule`](crate::capsule::Capsule) is written to `path` —
    /// framed binary when the extension is `lrsc`/`bin`, JSONL
    /// otherwise. See `crate::replay` for loading and re-running it.
    pub fn capsule_on_failure(mut self, path: impl Into<PathBuf>) -> Self {
        self.capsule_path = Some(path.into());
        self
    }

    /// Tags the capsule with a free-form scenario key/value pair (for
    /// example the scheme name and image length a replay harness needs
    /// to reconstruct `make_node`). No effect unless
    /// [`capsule_on_failure`](Self::capsule_on_failure) is also set.
    pub fn scenario(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.scenario.push((key.into(), value.to_string()));
        self
    }

    /// Snapshots the configured (not yet run) simulation as a replay
    /// [`Capsule`](crate::capsule::Capsule) with the given deadline: the
    /// exact seed, config, topology, fault schedule, and scenario tags
    /// this builder would execute, with no digests recorded. The engine
    /// field follows the shard count — [`SHARDED_ENGINE`] above one
    /// shard, [`SEQUENTIAL_ENGINE`] otherwise.
    ///
    /// This is how a job queue turns *any* pending job into a bit-exact
    /// reproducer before it runs, not only after it fails.
    ///
    /// [`SEQUENTIAL_ENGINE`]: crate::capsule::SEQUENTIAL_ENGINE
    /// [`SHARDED_ENGINE`]: crate::capsule::SHARDED_ENGINE
    pub fn capsule(&self, deadline: Duration) -> crate::capsule::Capsule {
        let engine = if self.shards > 1 {
            crate::capsule::SHARDED_ENGINE
        } else {
            crate::capsule::SEQUENTIAL_ENGINE
        };
        crate::capsule::Capsule {
            seed: self.seed,
            engine: engine.to_string(),
            shards: self.shards,
            deadline,
            config: self.config,
            topology: self.topology.clone(),
            faults: self.faults.clone(),
            scenario: self.scenario.clone(),
            digests: Vec::new(),
        }
    }
}

impl<P: Protocol + 'static, F: FnMut(NodeId) -> P> SimBuilder<P, F> {
    /// Builds the classic sequential [`Simulator`] — bit-identical to
    /// the pre-builder engine; all golden files pin this path.
    ///
    /// # Panics
    ///
    /// Panics if [`shards`](Self::shards) was set above 1: the
    /// sequential engine cannot honor a shard count, use
    /// [`run_sharded`](Self::run_sharded) instead.
    pub fn build(self) -> Simulator<P> {
        assert!(
            self.shards <= 1,
            "SimBuilder::build constructs the sequential engine; \
             use run_sharded for shard counts above 1"
        );
        let mut sim = Simulator::from_parts(self.topology, self.config, self.seed, self.make_node);
        if let Some(sink) = self.trace {
            sim.set_trace(sink);
        }
        if let Some(check) = self.invariant {
            sim.set_invariant_checker(Box::new(move |p, id| check(p, id)));
        }
        if !self.faults.is_empty() {
            sim.inject_faults(&self.faults);
        }
        if let Some(path) = self.capsule_path {
            sim.set_capsule_on_failure(CapsuleSpec {
                path,
                scenario: self.scenario,
            });
        }
        sim
    }
}

impl<P, F> SimBuilder<P, F>
where
    P: Protocol,
    F: Fn(NodeId) -> P + Sync,
{
    /// Runs the sharded parallel engine to completion and returns the
    /// merged results. `harvest` extracts whatever per-node state the
    /// caller needs (final image bytes, counters, …) before the
    /// protocol instances are dropped inside their worker threads.
    ///
    /// For a fixed seed the outcome, metrics, energy, trace order, and
    /// harvest are identical at every shard count.
    pub fn run_sharded<R, H>(self, deadline: Duration, harvest: H) -> ShardedRun<R>
    where
        R: Send,
        H: Fn(NodeId, &P) -> R + Sync,
    {
        shard::run(self, deadline, harvest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Context, PacketKind, TimerId};
    use crate::time::SimTime;

    struct Beacon {
        heard: bool,
    }
    impl Protocol for Beacon {
        fn on_init(&mut self, ctx: &mut Context<'_>) {
            if ctx.id == NodeId(0) {
                self.heard = true;
                ctx.broadcast(PacketKind::Adv, vec![1, 2, 3]);
            }
        }
        fn on_packet(&mut self, _: &mut Context<'_>, _: NodeId, _: &[u8]) {
            self.heard = true;
        }
        fn on_timer(&mut self, _: &mut Context<'_>, _: TimerId) {}
        fn is_complete(&self) -> bool {
            self.heard
        }
    }

    #[test]
    fn builder_wires_faults_and_invariants() {
        let mut plan = FaultPlan::new();
        plan.crash(NodeId(2), SimTime(1));
        let mut sim = SimBuilder::new(Topology::star(3), 5, |_| Beacon { heard: false })
            .faults(plan)
            .invariants(|_, _| Ok(()))
            .build();
        let report = sim.run(Duration::from_secs(10));
        // Node 2 crashed before the beacon arrived; a permanent casualty
        // does not gate completion.
        assert!(report.all_complete);
        assert!(sim.is_failed(NodeId(2)));
        assert!(sim.invariant_violation().is_none());
    }

    #[test]
    fn capsule_snapshots_the_configured_run() {
        let mut plan = FaultPlan::new();
        plan.crash(NodeId(1), SimTime(7));
        let builder: SimBuilder<Beacon, _> =
            SimBuilder::new(Topology::star(3), 99, |_: NodeId| Beacon { heard: false })
                .faults(plan.clone())
                .scenario("scheme", "lr-seluge");
        let capsule = builder.capsule(Duration::from_secs(30));
        assert_eq!(capsule.seed, 99);
        assert_eq!(capsule.engine, crate::capsule::SEQUENTIAL_ENGINE);
        assert_eq!(capsule.shards, 1);
        assert_eq!(capsule.deadline, Duration::from_secs(30));
        assert_eq!(capsule.faults, plan);
        assert_eq!(
            capsule.scenario,
            vec![("scheme".to_string(), "lr-seluge".to_string())]
        );
        assert!(capsule.digests.is_empty());
        // The snapshot is engine-aware: above one shard it records the
        // sharded engine.
        let sharded = SimBuilder::<Beacon, _>::new(Topology::star(3), 99, |_: NodeId| Beacon {
            heard: false,
        })
        .shards(4)
        .capsule(Duration::from_secs(30));
        assert_eq!(sharded.engine, crate::capsule::SHARDED_ENGINE);
        assert_eq!(sharded.shards, 4);
    }

    #[test]
    fn default_build_matches_explicit_default_config() {
        // Successor of the retired `Simulator::new` equivalence test:
        // the builder's implicit defaults and an explicitly supplied
        // `SimConfig::default()` must construct identical simulators.
        let implicit = SimBuilder::new(Topology::star(4), 7, |_| Beacon { heard: false })
            .build()
            .run(Duration::from_secs(60));
        let explicit = SimBuilder::new(Topology::star(4), 7, |_| Beacon { heard: false })
            .config(SimConfig::default())
            .build()
            .run(Duration::from_secs(60));
        assert_eq!(implicit.final_time, explicit.final_time);
        assert_eq!(implicit.latency, explicit.latency);
        assert!(implicit.all_complete && explicit.all_complete);
    }

    #[test]
    #[should_panic(expected = "run_sharded")]
    fn build_rejects_multi_shard() {
        let _ = SimBuilder::new(Topology::star(2), 0, |_| Beacon { heard: false })
            .shards(2)
            .build();
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        let _: SimBuilder<Beacon, _> =
            SimBuilder::new(Topology::star(2), 0, |_: NodeId| Beacon { heard: false }).shards(0);
    }
}

//! Shared packet-digest memoization for a simulation run.
//!
//! A broadcast is one transmission heard by many receivers, and every
//! receiver hashes the identical bytes to authenticate the packet. The
//! real deployment cannot avoid that work — each mote owns its CPU — but
//! the *simulator* can: a [`DigestCache`] shared by all nodes of a run
//! computes each distinct `(version, item, index, payload)` digest once
//! and serves the rest from memory. Schemes still count every logical
//! hash in their per-node cost (the paper's §V-B computation counts stay
//! honest); hits are reported separately as *memoized* hashes.
//!
//! The cache is deliberately `Rc`-based: the simulator is single-threaded
//! per run, and keeping the cache out of cross-thread types (it is
//! created per run, never stored in shared deployment state) preserves
//! the harness's thread-count invariance.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Default bound on distinct cached packet digests.
///
/// Keys are `(version, item, index)`, so a run caches at most one entry
/// per protocol packet position; the bound is a safety valve against
/// adversarial payload churn, not a working-set limit.
pub const DEFAULT_DIGEST_CACHE_CAPACITY: usize = 1 << 16;

struct Inner<D> {
    /// (version, item, index) → (payload bytes, digest).
    map: HashMap<(u16, u16, u16), (Vec<u8>, D)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// A per-run, clone-to-share memo of packet digests.
///
/// Generic over the digest type so netsim stays independent of any
/// particular hash implementation.
pub struct DigestCache<D> {
    inner: Rc<RefCell<Inner<D>>>,
}

impl<D> Clone for DigestCache<D> {
    fn clone(&self) -> Self {
        DigestCache {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<D> fmt::Debug for DigestCache<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("DigestCache")
            .field("entries", &inner.map.len())
            .field("hits", &inner.hits)
            .field("misses", &inner.misses)
            .finish()
    }
}

impl<D: Copy> Default for DigestCache<D> {
    fn default() -> Self {
        Self::new(DEFAULT_DIGEST_CACHE_CAPACITY)
    }
}

impl<D: Copy> DigestCache<D> {
    /// Creates a cache bounded to `capacity` distinct packet positions.
    pub fn new(capacity: usize) -> Self {
        DigestCache {
            inner: Rc::new(RefCell::new(Inner {
                map: HashMap::new(),
                capacity,
                hits: 0,
                misses: 0,
            })),
        }
    }

    /// Returns the memoized digest for this packet position if — and
    /// only if — the cached payload is byte-identical to `payload`.
    ///
    /// A byte comparison is far cheaper than recomputing a cryptographic
    /// digest, and insisting on it means a spoofed packet reusing a
    /// genuine packet's position can never be served a genuine digest.
    pub fn lookup(&self, version: u16, item: u16, index: u16, payload: &[u8]) -> Option<D> {
        let mut inner = self.inner.borrow_mut();
        match inner.map.get(&(version, item, index)) {
            Some((bytes, digest)) if bytes == payload => {
                let d = *digest;
                inner.hits += 1;
                Some(d)
            }
            _ => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Records `digest` for this packet position. First writer wins: an
    /// existing entry (even for different bytes) is kept, so adversarial
    /// payload churn cannot evict genuine packets.
    pub fn insert(&self, version: u16, item: u16, index: u16, payload: &[u8], digest: D) {
        let mut inner = self.inner.borrow_mut();
        if inner.map.len() >= inner.capacity {
            return;
        }
        inner
            .map
            .entry((version, item, index))
            .or_insert_with(|| (payload.to_vec(), digest));
    }

    /// Pre-fills the cache from an iterator of
    /// `((version, item, index), payload, digest)` entries — the
    /// batch-hash fill path. A run that knows its packets up front
    /// (the base-station artifacts enumerate every predetermined
    /// packet) can compute all digests in one multi-buffer batch and
    /// warm the cache once instead of hashing packet-by-packet on
    /// first reception.
    ///
    /// Uses the same first-writer-wins and capacity rules as
    /// [`DigestCache::insert`] and, like it, never touches the
    /// hit/miss counters — warming changes where digests come from,
    /// never how many logical hashes the schemes count.
    pub fn warm<'a, I>(&self, entries: I)
    where
        D: 'a,
        I: IntoIterator<Item = ((u16, u16, u16), &'a [u8], D)>,
    {
        let mut inner = self.inner.borrow_mut();
        for ((version, item, index), payload, digest) in entries {
            if inner.map.len() >= inner.capacity {
                return;
            }
            inner
                .map
                .entry((version, item, index))
                .or_insert_with(|| (payload.to_vec(), digest));
        }
    }

    /// `(hits, misses)` counters since creation.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.hits, inner.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_requires_identical_bytes() {
        let cache: DigestCache<u64> = DigestCache::new(8);
        assert_eq!(cache.lookup(1, 2, 3, b"payload"), None);
        cache.insert(1, 2, 3, b"payload", 42);
        assert_eq!(cache.lookup(1, 2, 3, b"payload"), Some(42));
        // Same position, different bytes: miss, and the entry survives.
        assert_eq!(cache.lookup(1, 2, 3, b"tampered"), None);
        assert_eq!(cache.lookup(1, 2, 3, b"payload"), Some(42));
    }

    #[test]
    fn first_writer_wins() {
        let cache: DigestCache<u64> = DigestCache::new(8);
        cache.insert(0, 0, 0, b"aaa", 1);
        cache.insert(0, 0, 0, b"bbb", 2);
        assert_eq!(cache.lookup(0, 0, 0, b"aaa"), Some(1));
        assert_eq!(cache.lookup(0, 0, 0, b"bbb"), None);
    }

    #[test]
    fn capacity_bounds_insertions() {
        let cache: DigestCache<u64> = DigestCache::new(2);
        cache.insert(0, 0, 0, b"a", 1);
        cache.insert(0, 0, 1, b"b", 2);
        cache.insert(0, 0, 2, b"c", 3);
        assert_eq!(cache.lookup(0, 0, 2, b"c"), None);
        assert_eq!(cache.lookup(0, 0, 0, b"a"), Some(1));
    }

    #[test]
    fn clones_share_state() {
        let cache: DigestCache<u64> = DigestCache::new(8);
        let other = cache.clone();
        cache.insert(7, 1, 0, b"x", 9);
        assert_eq!(other.lookup(7, 1, 0, b"x"), Some(9));
        let (hits, misses) = cache.counters();
        assert_eq!((hits, misses), (1, 0));
    }
}
